//! Failure injection across the whole stack: flaky search engines must
//! fail queries *cleanly* (error surfaced, nothing leaked, instance still
//! usable) in every execution mode, and a retry decorator must restore
//! availability.

use std::sync::Arc;
use std::time::{Duration, Instant};
use wsqdsq::prelude::*;
use wsqdsq::websim::{FlakyService, RetryService};

const QUERY: &str = "SELECT Name, Count FROM States, WebCount_Shaky \
                     WHERE Name = T1 ORDER BY Count DESC, Name";

fn wsq_with_flaky(permille: u32, retries: Option<u32>) -> (Wsq, Arc<FlakyService>) {
    let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
    wsq.load_reference_data().unwrap();
    let inner = wsq.web().engine(EngineKind::AltaVista);
    let flaky = FlakyService::new(inner, permille, 1234);
    let service: Arc<dyn wsq_pump::SearchService> = match retries {
        Some(n) => RetryService::new(flaky.clone(), n),
        None => flaky.clone(),
    };
    wsq.register_engine("Shaky", service, true);
    (wsq, flaky)
}

#[test]
fn flaky_engine_fails_queries_cleanly_in_all_modes() {
    // 100% failure: the query must error in every mode, leak nothing, and
    // leave the instance usable.
    let (mut wsq, flaky) = wsq_with_flaky(1000, None);
    for mode in [
        ExecutionMode::Synchronous,
        ExecutionMode::Asynchronous,
        ExecutionMode::ParallelJoins,
    ] {
        let err = wsq
            .query_with(
                QUERY,
                QueryOptions {
                    mode,
                    ..Default::default()
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("503"), "{mode:?}: {err}");
        // Released-in-flight registrations clear after delivery.
        let deadline = Instant::now() + Duration::from_secs(2);
        while wsq.pump().live_calls() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(wsq.pump().live_calls(), 0, "{mode:?} leaked calls");
    }
    assert!(flaky.stats().failures >= 3);
    // The instance still answers healthy queries.
    let r = wsq.query("SELECT COUNT(*) FROM States").unwrap();
    assert_eq!(r.rows[0].get(0).as_int().unwrap(), 50);
    // And the healthy default engine still works.
    let r = wsq
        .query("SELECT Count FROM WebCount WHERE T1 = 'Utah'")
        .unwrap();
    assert!(r.rows[0].get(0).as_int().unwrap() > 0);
}

#[test]
fn partial_flakiness_fails_the_query_not_the_process() {
    // 30% failure: 50 calls virtually guarantee at least one failure; the
    // query errors deterministically (same seed → same flakes).
    let (mut wsq, _flaky) = wsq_with_flaky(300, None);
    let e1 = wsq.query(QUERY).unwrap_err().to_string();
    let e2 = wsq.query(QUERY).unwrap_err().to_string();
    // The injected flakes are deterministic, so the query fails every
    // time — but asynchronous completion order decides *which* failed
    // call surfaces first, so only the error class is stable.
    assert!(e1.contains("503"), "{e1}");
    assert!(e2.contains("503"), "{e2}");
}

#[test]
fn capped_query_failure_releases_every_buffer_slot() {
    // A retry decorator that still exhausts its retries (100% failure
    // under it) while a ReqSync cap is active: the error path must
    // release every admitted buffer slot and every pump registration —
    // a stuck stall here would hang this test, a missed release would
    // leave the gauges non-zero.
    let (mut wsq, flaky) = wsq_with_flaky(1000, Some(2));
    let err = wsq
        .query_with(
            QUERY,
            QueryOptions {
                reqsync_cap: Some(4),
                ..Default::default()
            },
        )
        .unwrap_err();
    assert!(err.to_string().contains("503"), "{err}");
    assert!(flaky.stats().failures >= 3, "retries never ran");

    let m = wsq.obs().metrics().unwrap();
    assert!(
        m.reqsync_buffered.high_water() <= 4,
        "cap=4 exceeded: high-water {}",
        m.reqsync_buffered.high_water()
    );
    assert_eq!(
        m.reqsync_buffered.get(),
        0,
        "failed query left buffer slots occupied"
    );
    // In-flight registrations drain once completions are delivered.
    let deadline = Instant::now() + Duration::from_secs(2);
    while (wsq.pump().live_calls() > 0 || m.in_flight.get() > 0) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(wsq.pump().live_calls(), 0, "leaked pump registrations");
    assert_eq!(m.in_flight.get(), 0, "in-flight gauge did not drain");
    // The instance is still usable afterwards.
    let r = wsq.query("SELECT COUNT(*) FROM States").unwrap();
    assert_eq!(r.rows[0].get(0).as_int().unwrap(), 50);
}

#[test]
fn flaky_backend_mid_window_releases_every_prefetched_slot() {
    // Ahead-of-need prefetch registers calls for outer tuples nobody has
    // demanded yet, and a submission window of 8 dispatches them in
    // batches. When the backend exhausts its retries mid-window the
    // query errors with most of the lookahead still unconsumed — every
    // prefetched registration must be released (counted as wasted) and
    // the gauges must drain to zero.
    let mut wsq = Wsq::open_in_memory(WsqConfig {
        pump: PumpConfig {
            submission_window: 8,
            ..PumpConfig::default()
        },
        ..WsqConfig::fast()
    })
    .unwrap();
    wsq.load_reference_data().unwrap();
    let inner = wsq.web().engine(EngineKind::AltaVista);
    let flaky = FlakyService::new(inner, 1000, 1234);
    let service: Arc<dyn wsq_pump::SearchService> = RetryService::new(flaky.clone(), 2);
    wsq.register_engine("Shaky", service, true);

    let err = wsq
        .query_with(
            QUERY,
            QueryOptions {
                reqsync_cap: Some(4),
                prefetch_depth: 8, // planner clamps the lookahead to the cap
                prefetch_window: 8,
                ..Default::default()
            },
        )
        .unwrap_err();
    assert!(err.to_string().contains("503"), "{err}");
    assert!(flaky.stats().failures >= 3, "retries never ran");

    let m = wsq.obs().metrics().unwrap();
    assert!(m.prefetch_issued.get() > 0, "prefetch never engaged");
    let deadline = Instant::now() + Duration::from_secs(2);
    while (wsq.pump().live_calls() > 0 || m.in_flight.get() > 0) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(wsq.pump().live_calls(), 0, "prefetched slots leaked");
    assert_eq!(m.in_flight.get(), 0, "in-flight gauge did not drain");
    assert_eq!(m.reqsync_buffered.get(), 0, "buffer slots leaked");
    assert!(
        m.prefetch_wasted.get() > 0,
        "error path never released its unconsumed prefetches"
    );
    // The instance is still usable afterwards.
    let r = wsq.query("SELECT COUNT(*) FROM States").unwrap();
    assert_eq!(r.rows[0].get(0).as_int().unwrap(), 50);
}

#[test]
fn retries_restore_availability() {
    let (mut wsq, flaky) = wsq_with_flaky(300, Some(6));
    let r = wsq.query(QUERY).unwrap();
    assert_eq!(r.rows.len(), 50);
    let stats = flaky.stats();
    assert!(stats.failures > 0, "flakes should have occurred");
    assert!(stats.successes >= 50);
    assert_eq!(wsq.pump().live_calls(), 0);
}

#[test]
fn dsq_over_flaky_engine_with_retries() {
    let (mut wsq, _) = wsq_with_flaky(200, Some(6));
    let dsq = DsqExplorer::new(&wsq, "Shaky").unwrap();
    let states = wsq.column_values("States", "Name").unwrap();
    let corr = dsq.correlate("scuba diving", &states).unwrap();
    assert_eq!(corr[0].term, "Florida");
}
