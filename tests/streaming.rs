//! Time-to-first-row: with the streaming ReqSync (§4.1's
//! non-materializing variant) and a constrained pump, a cursor delivers
//! early rows while later external calls are still queued.

use std::time::{Duration, Instant};
use wsqdsq::prelude::*;

fn slow_wsq(max_concurrent: usize, buffer: BufferMode) -> Wsq {
    let config = WsqConfig {
        corpus: CorpusConfig::small(),
        latency: LatencyModel::Fixed(Duration::from_millis(20)),
        pump: PumpConfig {
            max_concurrent,
            ..PumpConfig::default()
        },
        query: QueryOptions {
            mode: ExecutionMode::Asynchronous,
            buffer,
            ..Default::default()
        },
        ..WsqConfig::default()
    };
    let mut wsq = Wsq::open_in_memory(config).unwrap();
    wsq.load_reference_data().unwrap();
    wsq
}

const QUERY: &str = "SELECT Name, Count FROM States, WebCount WHERE Name = T1";

#[test]
fn streaming_cursor_yields_first_row_early() {
    // Pump capacity 1 → 50 calls strictly sequential at 20 ms each:
    // the full result takes ≥ 1 s, but the first streamed row needs only
    // about one call.
    let mut wsq = slow_wsq(1, BufferMode::Streaming);
    let t0 = Instant::now();
    let mut cursor = wsq.query_cursor(QUERY).unwrap();
    let first = cursor.next_row().unwrap().expect("at least one row");
    let first_at = t0.elapsed();
    assert!(!first.get(0).as_str().unwrap().is_empty());
    assert!(
        first_at < Duration::from_millis(300),
        "first row took {first_at:?}"
    );
    // Drain the rest; the total is dominated by the serialized calls.
    let mut rows = 1;
    while cursor.next_row().unwrap().is_some() {
        rows += 1;
    }
    let total = t0.elapsed();
    assert_eq!(rows, 50);
    assert!(total >= Duration::from_millis(900), "total only {total:?}");
    assert!(first_at < total / 3, "first row was not early");
    assert_eq!(wsq.pump().live_calls(), 0);
}

#[test]
fn full_buffering_also_patches_incrementally() {
    // Full buffering buffers the child's *incomplete tuples* up front, but
    // completed tuples still flow out as their calls finish (the
    // producer/consumer protocol of §4.1) — it does NOT wait for every
    // call before emitting the first row. The mode difference is the
    // pass-through of already-complete tuples, covered by executor unit
    // tests.
    let mut wsq = slow_wsq(1, BufferMode::Full);
    let t0 = Instant::now();
    let mut cursor = wsq.query_cursor(QUERY).unwrap();
    let _first = cursor.next_row().unwrap().expect("row");
    let first_at = t0.elapsed();
    let mut rows = 1;
    while cursor.next_row().unwrap().is_some() {
        rows += 1;
    }
    let total = t0.elapsed();
    assert_eq!(rows, 50);
    assert!(total >= Duration::from_millis(900));
    assert!(
        first_at < total / 3,
        "full-buffering ReqSync should still emit incrementally: {first_at:?} of {total:?}"
    );
    assert_eq!(wsq.pump().live_calls(), 0);
}

#[test]
fn abandoned_cursor_releases_pump_registrations() {
    let mut wsq = slow_wsq(4, BufferMode::Streaming);
    let mut cursor = wsq.query_cursor(QUERY).unwrap();
    // Read a couple of rows, then abandon.
    cursor.next_row().unwrap().unwrap();
    cursor.next_row().unwrap().unwrap();
    cursor.finish().unwrap();
    // Released registrations may take one in-flight delivery to clear.
    let deadline = Instant::now() + Duration::from_secs(2);
    while wsq.pump().live_calls() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(wsq.pump().live_calls(), 0);
}

#[test]
fn cursor_schema_and_exhaustion() {
    let mut wsq = slow_wsq(64, BufferMode::Streaming);
    let mut cursor = wsq
        .query_cursor("SELECT Name FROM States WHERE Population > 30000000")
        .unwrap();
    assert_eq!(cursor.schema().len(), 1);
    assert_eq!(
        cursor.next_row().unwrap().unwrap().get(0).as_str().unwrap(),
        "California"
    );
    assert!(cursor.next_row().unwrap().is_none());
    // Idempotent after exhaustion.
    assert!(cursor.next_row().unwrap().is_none());
}
