//! Golden test pinning the `Wsq::analyze` report grammar documented in
//! DESIGN.md §10.4:
//!
//! ```text
//! report      := op_line+ pump_line [trace_line] cache_line* [verify_line]
//! op_line     := indent label "  [rows=" n " nexts=" n " opens=" n " time=" ms "ms]"
//! pump_line   := "-- pump: registered=.. launched=.. completed=.. coalesced=..
//!                 peak_in_flight=.. peak_queued=.."
//! trace_line  := "-- trace: calls=.. call_p50=.. call_p95=.. call_max=..
//!                 queue_p95=.. patch_p95=.. max_concurrent=.. stalls=..
//!                 stall_p95=.. buffered_hw=.. events=.. dropped=.."
//! cache_line  := "-- cache[ENGINE]: hits=.. misses=.. coalesced=.. evictions=..
//!                 expirations=.."
//! verify_line := "-- verify: ok (verified .. nodes: .., peak buffered B,
//!                 prefetch refs B, peak in-flight B)" | "-- verify: FAILED: .."
//! bound       := n | "inf"
//! ```
//!
//! Tools (and the README transcript) parse these lines; a change to the
//! shape is an API break and must update DESIGN.md §10.4 with it.

use wsqdsq::prelude::*;

/// `k=v` keys of a `-- section: k=v k=v …` footer line, in order.
fn footer_keys(line: &str) -> Vec<&str> {
    let body = line.split_once(": ").expect("footer has ': '").1;
    body.split_whitespace()
        .map(|kv| kv.split_once('=').expect("footer item is k=v").0)
        .collect()
}

/// Assert every `k=v` value of a footer line is a bare unsigned integer.
fn assert_integer_values(line: &str) {
    let body = line.split_once(": ").unwrap().1;
    for kv in body.split_whitespace() {
        let v = kv.split_once('=').unwrap().1;
        assert!(
            v.parse::<u64>().is_ok(),
            "non-integer value {v:?} in {line:?}"
        );
    }
}

/// A duration cell of the trace footer: `12.3ms` or `-` (no samples).
fn assert_dur(v: &str, line: &str) {
    if v == "-" {
        return;
    }
    let num = v
        .strip_suffix("ms")
        .unwrap_or_else(|| panic!("duration {v:?} lacks ms suffix in {line:?}"));
    assert!(
        num.parse::<f64>().is_ok(),
        "unparsable duration {v:?} in {line:?}"
    );
}

/// Validate one operator line: two-space indentation steps, the
/// double-space separator, and the exact counter bracket.
fn assert_op_line(line: &str) {
    let depth_spaces = line.len() - line.trim_start_matches(' ').len();
    assert_eq!(depth_spaces % 2, 0, "odd indentation in {line:?}");
    let (label, bracket) = line
        .trim_start()
        .rsplit_once("  [")
        .unwrap_or_else(|| panic!("operator line lacks counter bracket: {line:?}"));
    assert!(!label.is_empty(), "empty operator label in {line:?}");
    let body = bracket
        .strip_suffix(']')
        .unwrap_or_else(|| panic!("unterminated counter bracket: {line:?}"));
    let parts: Vec<&str> = body.split(' ').collect();
    assert_eq!(parts.len(), 4, "expected 4 counters in {line:?}");
    for (part, key) in parts.iter().zip(["rows=", "nexts=", "opens=", "time="]) {
        let v = part
            .strip_prefix(key)
            .unwrap_or_else(|| panic!("expected {key} in {line:?}, got {part:?}"));
        if key == "time=" {
            let num = v.strip_suffix("ms").expect("time is in ms");
            assert!(num.parse::<f64>().is_ok(), "bad time {v:?} in {line:?}");
            // Three decimal places, as documented.
            assert_eq!(num.split('.').nth(1).map(str::len), Some(3), "{line:?}");
        } else {
            assert!(v.parse::<u64>().is_ok(), "bad counter {v:?} in {line:?}");
        }
    }
}

#[test]
fn analyze_report_matches_the_documented_grammar() {
    let mut wsq = Wsq::open_in_memory(WsqConfig {
        cache: true,
        ..WsqConfig::fast()
    })
    .unwrap();
    wsq.load_reference_data().unwrap();
    let (_, report) = wsq
        .analyze(
            "SELECT Name, Count FROM States, WebCount WHERE Name = T1 \
             ORDER BY Count DESC, Name LIMIT 5",
        )
        .unwrap();
    let lines: Vec<&str> = report.lines().collect();

    // Partition: operator tree first, then footers, nothing interleaved.
    let first_footer = lines
        .iter()
        .position(|l| l.starts_with("-- "))
        .unwrap_or_else(|| panic!("no footer lines in:\n{report}"));
    assert!(first_footer > 0, "report must start with operator lines");
    for line in &lines[..first_footer] {
        assert_op_line(line);
    }
    for line in &lines[first_footer..] {
        assert!(
            line.starts_with("-- "),
            "operator line after footers began: {line:?}\nin:\n{report}"
        );
    }

    // Footer order and multiplicity: pump, trace, cache*, verify.
    let footers = &lines[first_footer..];
    let sections: Vec<&str> = footers
        .iter()
        .map(|l| {
            l.strip_prefix("-- ")
                .and_then(|r| r.split_once(':'))
                .map(|(s, _)| s)
                .unwrap_or_else(|| panic!("malformed footer {l:?}"))
        })
        .collect();
    assert_eq!(
        sections[0], "pump",
        "pump footer must come first: {sections:?}"
    );
    assert_eq!(sections[1], "trace", "trace follows pump when obs is on");
    assert_eq!(
        *sections.last().unwrap(),
        "verify",
        "verify footer must be last: {sections:?}"
    );
    for s in &sections[2..sections.len() - 1] {
        assert!(
            s.starts_with("cache[") && s.ends_with(']'),
            "only cache lines between trace and verify: {s:?}"
        );
    }
    assert_eq!(sections.iter().filter(|s| **s == "pump").count(), 1);
    assert_eq!(sections.iter().filter(|s| **s == "trace").count(), 1);

    // Exact key sequences.
    assert_eq!(
        footer_keys(footers[0]),
        [
            "registered",
            "launched",
            "completed",
            "coalesced",
            "peak_in_flight",
            "peak_queued"
        ]
    );
    assert_integer_values(footers[0]);
    assert_eq!(
        footer_keys(footers[1]),
        [
            "calls",
            "call_p50",
            "call_p95",
            "call_max",
            "queue_p95",
            "patch_p95",
            "max_concurrent",
            "stalls",
            "stall_p95",
            "buffered_hw",
            "events",
            "dropped",
            "prefetch_issued",
            "prefetch_wasted",
            "batches"
        ]
    );
    for kv in footers[1].split_once(": ").unwrap().1.split_whitespace() {
        let (k, v) = kv.split_once('=').unwrap();
        if k.ends_with("p50") || k.ends_with("p95") || k.ends_with("max") {
            assert_dur(v, footers[1]);
        } else {
            assert!(v.parse::<i64>().is_ok(), "bad {k}={v} in {:?}", footers[1]);
        }
    }
    let cache_lines: Vec<&&str> = footers
        .iter()
        .filter(|l| l.starts_with("-- cache["))
        .collect();
    assert!(
        !cache_lines.is_empty(),
        "caching was on, expected cache lines"
    );
    for line in &cache_lines {
        assert_eq!(
            footer_keys(line),
            ["hits", "misses", "coalesced", "evictions", "expirations"]
        );
        assert_integer_values(line);
    }
    // Engines are listed in sorted order.
    let engines: Vec<&str> = cache_lines
        .iter()
        .map(|l| {
            l.strip_prefix("-- cache[")
                .unwrap()
                .split_once(']')
                .unwrap()
                .0
        })
        .collect();
    let mut sorted = engines.clone();
    sorted.sort();
    assert_eq!(engines, sorted, "cache engines must be sorted");

    let verify = footers.last().unwrap();
    assert!(
        verify.starts_with("-- verify: ok (verified ") && verify.ends_with(')'),
        "verify footer shape: {verify:?}"
    );
    // The static resource bounds ride inside the parens, in order, each
    // a bound (`n` or `inf`).
    let body = verify
        .strip_prefix("-- verify: ok (")
        .unwrap()
        .strip_suffix(')')
        .unwrap();
    for key in ["peak buffered ", "prefetch refs ", "peak in-flight "] {
        let (_, rest) = body
            .split_once(key)
            .unwrap_or_else(|| panic!("verify footer lacks `{key}`: {verify:?}"));
        let bound = rest.split([',', ')']).next().unwrap();
        assert!(
            bound == "inf" || bound.parse::<u64>().is_ok(),
            "bad bound {bound:?} for `{key}` in {verify:?}"
        );
    }
}

#[test]
fn optional_footers_disappear_with_their_features() {
    // Obs off, cache off: the report is operator lines + pump + verify.
    let mut wsq = Wsq::open_in_memory(WsqConfig {
        obs: false,
        ..WsqConfig::fast()
    })
    .unwrap();
    wsq.load_reference_data().unwrap();
    let (_, report) = wsq
        .analyze("SELECT Count FROM WebCount WHERE T1 = 'Texas'")
        .unwrap();
    let sections: Vec<&str> = report
        .lines()
        .filter_map(|l| l.strip_prefix("-- "))
        .map(|r| r.split_once(':').unwrap().0)
        .collect();
    assert_eq!(sections, ["pump", "verify"], "in:\n{report}");
}
