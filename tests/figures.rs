//! Plan-shape tests for the paper's figures (2–8): the EXPLAIN output of
//! each figure's query must exhibit the documented operator structure.

use wsqdsq::prelude::*;

fn wsq() -> Wsq {
    let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
    wsq.load_reference_data().unwrap();
    wsq
}

fn sync_opts() -> QueryOptions {
    QueryOptions {
        mode: ExecutionMode::Synchronous,
        ..Default::default()
    }
}

fn count_occurrences(text: &str, needle: &str) -> usize {
    text.matches(needle).count()
}

/// Figure 2: sequential plan for Sigs ⋈ WebCount under a Sort.
#[test]
fn figure_2_sequential_plan() {
    let w = wsq();
    let plan = w
        .explain_with(
            "SELECT Name, Count FROM Sigs, WebCount WHERE Name = T1 AND T2 = 'Knuth' \
             ORDER BY Count DESC",
            sync_opts(),
        )
        .unwrap();
    assert!(plan.contains("Sort: Count DESC"));
    assert!(plan.contains("Dependent Join"));
    assert!(plan.contains("EVScan: WebCount@AV"));
    assert!(plan.contains("T2 = 'Knuth'"));
    assert!(!plan.contains("ReqSync"));
    assert!(!plan.contains("AEVScan"));
}

/// Figure 3: the asynchronous version — AEVScan + ReqSync below the Sort.
#[test]
fn figure_3_asynchronous_plan() {
    let w = wsq();
    let plan = w
        .explain(
            "SELECT Name, Count FROM Sigs, WebCount WHERE Name = T1 AND T2 = 'Knuth' \
             ORDER BY Count DESC",
        )
        .unwrap();
    let sort = plan.find("Sort:").unwrap();
    let sync = plan.find("ReqSync").unwrap();
    let dj = plan.find("Dependent Join").unwrap();
    let aev = plan.find("AEVScan").unwrap();
    assert!(sort < sync && sync < dj && dj < aev, "plan:\n{plan}");
    assert_eq!(count_occurrences(&plan, "ReqSync"), 1);
}

/// Figure 4: Sigs ⋈ WebPages with a rank bound.
#[test]
fn figure_4_webpages_plan() {
    let w = wsq();
    let plan = w
        .explain("SELECT Name, URL FROM Sigs, WebPages WHERE Name = T1 AND Rank <= 3")
        .unwrap();
    assert!(plan.contains("AEVScan: WebPages@AV"));
    assert!(plan.contains("Rank <= 3"));
    assert_eq!(count_occurrences(&plan, "ReqSync"), 1);
}

/// Figure 5 / 6(d): two dependent joins (AV + Google), ONE consolidated
/// ReqSync above both.
#[test]
fn figure_5_consolidated_reqsync() {
    let w = wsq();
    let plan = w
        .explain(
            "SELECT Name, AV.URL, G.URL FROM Sigs, WebPages_AV AV, WebPages_Google G \
             WHERE Name = AV.T1 AND Name = G.T1 AND AV.Rank <= 3 AND G.Rank <= 3",
        )
        .unwrap();
    assert_eq!(count_occurrences(&plan, "ReqSync"), 1, "plan:\n{plan}");
    assert_eq!(count_occurrences(&plan, "AEVScan"), 2);
    assert_eq!(count_occurrences(&plan, "Dependent Join"), 2);
    // The consolidated ReqSync covers both engines' attributes.
    let line = plan.lines().find(|l| l.contains("ReqSync")).unwrap();
    assert!(line.contains("AV.URL") && line.contains("G.URL"), "{line}");
}

/// Figure 6(a): the synchronous input plan for the same query.
#[test]
fn figure_6a_input_plan() {
    let w = wsq();
    let plan = w
        .explain_with(
            "SELECT Name, AV.URL, G.URL FROM Sigs, WebPages_AV AV, WebPages_Google G \
             WHERE Name = AV.T1 AND Name = G.T1 AND AV.Rank <= 3 AND G.Rank <= 3",
            sync_opts(),
        )
        .unwrap();
    assert_eq!(count_occurrences(&plan, "EVScan"), 2);
    assert_eq!(count_occurrences(&plan, "ReqSync"), 0);
}

/// Figure 7: the cross-product-with-R plan; with the InsertionOnly
/// strategy (7(b)) each dependent join gets its own pinned ReqSync.
#[test]
fn figure_7_placement_strategies() {
    let mut w = wsq();
    w.execute("CREATE TABLE R (N INT)").unwrap();
    w.execute("INSERT INTO R VALUES (1), (2)").unwrap();
    let sql = "SELECT Name, AV.Count, N, G.Count \
               FROM Sigs, WebCount_AV AV, R, WebCount_Google G \
               WHERE Name = AV.T1 AND Name = G.T1";
    // 7(a): full percolation → single ReqSync at the top.
    let full = w.explain(sql).unwrap();
    assert_eq!(count_occurrences(&full, "ReqSync"), 1, "plan:\n{full}");
    assert!(full.contains("Cross-Product"));
    // 7(b): insertion-only → one ReqSync pinned above each dependent join.
    let pinned = w
        .explain_with(
            sql,
            QueryOptions {
                mode: ExecutionMode::Asynchronous,
                strategy: PlacementStrategy::InsertionOnly,
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(count_occurrences(&pinned, "ReqSync"), 2, "plan:\n{pinned}");
}

/// Figure 8: the Sigs/CSFields URL-intersection query; the URL equi-join
/// reads placeholder attributes, so it ends up as a selection *above* the
/// consolidated ReqSync with a cross-product below.
#[test]
fn figure_8_select_over_cross_product() {
    let w = wsq();
    let sql = "SELECT S.URL FROM Sigs, WebPages S, CSFields, WebPages_AV C \
               WHERE Sigs.Name = S.T1 AND CSFields.Name = C.T1 \
               AND S.Rank <= 5 AND C.Rank <= 5 AND S.URL = C.URL";
    let plan = w.explain(sql).unwrap();
    let select = plan.find("Select: (S.URL = C.URL)").expect(&plan);
    let sync = plan.find("ReqSync").unwrap();
    let cross = plan.find("Cross-Product").unwrap();
    assert!(select < sync && sync < cross, "plan:\n{plan}");
    assert_eq!(count_occurrences(&plan, "ReqSync"), 1);
}
