//! Cross-crate integration tests through the top-level facade.

use wsqdsq::prelude::*;

fn wsq() -> Wsq {
    let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
    wsq.load_reference_data().unwrap();
    wsq
}

#[test]
fn the_six_paper_queries_run_through_the_facade() {
    let mut w = wsq();
    let queries = [
        "SELECT Name, Count FROM States, WebCount WHERE Name = T1 ORDER BY Count DESC, Name",
        "SELECT Name, Count * 1000000 / Population AS C FROM States, WebCount \
         WHERE Name = T1 ORDER BY C DESC, Name",
        "SELECT Name, Count FROM States, WebCount WHERE Name = T1 AND T2 = 'four corners' \
         ORDER BY Count DESC, Name",
        "SELECT Capital, C.Count, Name, S.Count FROM States, WebCount C, WebCount S \
         WHERE Capital = C.T1 AND Name = S.T1 AND C.Count > S.Count",
        "SELECT Name, URL, Rank FROM States, WebPages WHERE Name = T1 AND Rank <= 2 \
         ORDER BY Name, Rank",
        "SELECT Name, AV.URL FROM States, WebPages_AV AV, WebPages_Google G \
         WHERE Name = AV.T1 AND Name = G.T1 AND AV.Rank <= 5 AND G.Rank <= 5 \
         AND AV.URL = G.URL",
    ];
    for q in queries {
        let r = w.query(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        assert!(!r.schema.is_empty());
    }
    assert_eq!(w.pump().live_calls(), 0);
}

#[test]
fn disk_backed_wsq_persists_tables() {
    let dir = tempfile::tempdir().unwrap();
    {
        let mut w = Wsq::open(dir.path(), WsqConfig::fast()).unwrap();
        w.execute("CREATE TABLE Trips (Place VARCHAR(32), Year INT)")
            .unwrap();
        w.execute("INSERT INTO Trips VALUES ('Moab', 1998), ('Tahoe', 1999)")
            .unwrap();
        w.db().flush().unwrap();
    }
    let mut w = Wsq::open(dir.path(), WsqConfig::fast()).unwrap();
    let r = w
        .query("SELECT Place FROM Trips WHERE Year = 1999")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0].get(0).as_str().unwrap(), "Tahoe");
    // And the virtual tables still work against the stored data.
    let r = w
        .query(
            "SELECT Place, Count FROM Trips, WebCount WHERE Place = T1 ORDER BY Count DESC, Place",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn user_tables_join_reference_tables_and_web() {
    let mut w = wsq();
    // A user table of visited states joined against States + the Web.
    w.execute("CREATE TABLE Visited (StateName VARCHAR(32))")
        .unwrap();
    w.execute("INSERT INTO Visited VALUES ('Colorado'), ('Utah'), ('Maine')")
        .unwrap();
    let r = w
        .query(
            "SELECT StateName, Population, Count \
             FROM Visited, States, WebCount \
             WHERE StateName = States.Name AND StateName = T1 \
             ORDER BY Count DESC, StateName",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    // Colorado outranks Maine on the Web.
    let names: Vec<&str> = r.rows.iter().map(|t| t.get(0).as_str().unwrap()).collect();
    let co = names.iter().position(|n| *n == "Colorado").unwrap();
    let me = names.iter().position(|n| *n == "Maine").unwrap();
    assert!(co < me);
}

#[test]
fn mixed_topics_template_2_style() {
    let mut w = wsq();
    // Template 2 from the evaluation: one WebCount + one WebPages per state.
    let r = w
        .query(
            "SELECT Name, Count, URL, Rank FROM States, WebCount, WebPages \
             WHERE Name = WebCount.T1 AND WebCount.T2 = 'computer' \
             AND Name = WebPages.T1 AND WebPages.T2 = 'computer' \
             AND WebPages.Rank <= 2 ORDER BY Name, Rank",
        )
        .unwrap();
    assert!(!r.rows.is_empty());
    for row in &r.rows {
        assert!(row.get(3).as_int().unwrap() <= 2);
    }
    assert_eq!(w.pump().live_calls(), 0);
}

#[test]
fn figure7_cross_product_with_meaningless_table() {
    let mut w = wsq();
    // §4.5 Example 2: a cross-product with a meaningless table R between
    // two virtual-table joins. Coalescing + consolidation keep this sane.
    w.execute("CREATE TABLE R (N INT)").unwrap();
    w.execute("INSERT INTO R VALUES (1), (2), (3)").unwrap();
    let r = w
        .query(
            "SELECT Name, AV.Count, N, G.Count \
             FROM States, WebCount_AV AV, R, WebCount_Google G \
             WHERE Name = AV.T1 AND Name = G.T1 AND Population > 15000000",
        )
        .unwrap();
    // 3 states over 15M (CA, TX, NY) × |R| = 9 rows.
    assert_eq!(r.rows.len(), 9);
    let stats = w.pump().stats();
    // Coalescing collapses the |R| duplicate Google calls per state.
    assert!(
        stats.launched <= 6,
        "expected ≤ 2 calls per big state, launched {}",
        stats.launched
    );
}

#[test]
fn error_paths_via_facade() {
    let mut w = wsq();
    assert!(w.query("SELECT Count FROM WebCount").is_err()); // unbound
    assert!(w.query("SELECT * FROM Missing").is_err());
    assert!(w.execute("CREATE TABLE WebPages_X (a INT)").is_err()); // reserved
    assert!(w.query("SELECT Name FROM States ORDER BY Missing").is_err());
    // The instance still works after errors.
    assert!(w.query("SELECT COUNT(*) FROM States").is_ok());
}

#[test]
fn to_table_renders() {
    let mut w = wsq();
    let r = w
        .query("SELECT Name, Population FROM States WHERE Name = 'Utah'")
        .unwrap();
    let text = r.to_table();
    assert!(text.contains("Name"));
    assert!(text.contains("Utah"));
    assert!(text.lines().count() >= 3);
}
