//! The workspace's central correctness property: **asynchronous iteration
//! is semantically transparent**. For any WSQ query, every combination of
//! execution mode, ReqSync placement strategy, buffering discipline, and
//! pump concurrency limit must produce the same bag of rows as plain
//! sequential execution.
//!
//! Queries are generated from a grammar covering the paper's shapes:
//! WebCount and WebPages scans, one or two engines, constant and column
//! bindings, predicates over placeholder attributes (carried filters),
//! rank limits, aggregation, DISTINCT, ORDER BY and LIMIT.

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use wsqdsq::engine::db::Database;
use wsqdsq::engine::engines::EngineRegistry;
use wsqdsq::engine::QueryOptions as EngineOpts;
use wsqdsq::prelude::*;

/// One shared corpus for the whole test binary (generation is the
/// expensive part; databases and pumps are cheap per-case).
fn web() -> &'static SimWeb {
    static WEB: OnceLock<SimWeb> = OnceLock::new();
    WEB.get_or_init(|| SimWeb::build(CorpusConfig::small()))
}

fn fresh_db() -> Database {
    let mut db = Database::open_in_memory().unwrap();
    let engines = EngineRegistry::new();
    let pump = ReqPump::new(PumpConfig::default());
    db.run_sql(
        "CREATE TABLE States (Name VARCHAR(32), Population INT, Capital VARCHAR(32))",
        &engines,
        &pump,
        EngineOpts::default(),
    )
    .unwrap();
    let rows: Vec<Tuple> = wsqdsq::websim::data::STATES
        .iter()
        .map(|s| {
            Tuple::new(vec![
                Value::from(s.name),
                Value::Int(s.population),
                Value::from(s.capital),
            ])
        })
        .collect();
    db.insert("States", &rows).unwrap();
    db
}

fn registry() -> EngineRegistry {
    let mut engines = EngineRegistry::new();
    engines.register("AV", web().engine(EngineKind::AltaVista), true);
    engines.register("Google", web().engine(EngineKind::Google), false);
    engines
}

fn pump_with(max_concurrent: usize, coalesce: bool) -> Arc<ReqPump> {
    let pump = ReqPump::new(PumpConfig {
        max_concurrent,
        coalesce,
        ..PumpConfig::default()
    });
    pump.register_service("AV", web().engine(EngineKind::AltaVista));
    pump.register_service("Google", web().engine(EngineKind::Google));
    pump
}

/// A randomly generated WSQ query.
#[derive(Debug, Clone)]
struct GenQuery {
    sql: String,
    ordered: bool,
}

fn topics() -> Vec<&'static str> {
    vec![
        "computer",
        "beaches",
        "four corners",
        "skiing",
        "Knuth",
        "zzznope",
    ]
}

fn arb_query() -> impl Strategy<Value = GenQuery> {
    let pop_filter = prop_oneof![
        Just(String::new()),
        (1u32..20).prop_map(|m| format!(" AND Population > {}", m as u64 * 1_000_000)),
    ];
    let shapes = 0..6usize;
    (
        shapes,
        pop_filter,
        0..topics().len(),
        1u32..6,
        prop::option::of(1u64..20),
        any::<bool>(),
    )
        .prop_map(|(shape, pop, topic_i, rank, limit, count_filter)| {
            let topic = topics()[topic_i];
            let (mut sql, mut ordered) = match shape {
                // WebCount, default template, optional topic binding.
                0 => (
                    format!(
                        "SELECT Name, Count FROM States, WebCount \
                         WHERE Name = T1 AND T2 = '{topic}'{pop}{}",
                        if count_filter { " AND Count > 1" } else { "" },
                    ),
                    false,
                ),
                // Simple one-binding WebCount with ordering.
                1 => (
                    format!(
                        "SELECT Name, Count FROM States, WebCount WHERE Name = T1{pop} \
                         ORDER BY Count DESC, Name"
                    ),
                    true,
                ),
                // WebPages with a rank limit.
                2 => (
                    format!(
                        "SELECT Name, URL, Rank FROM States, WebPages \
                         WHERE Name = T1 AND Rank <= {rank}{pop} ORDER BY Name, Rank"
                    ),
                    true,
                ),
                // Two engines, URL agreement (carried filter over CP).
                3 => (
                    format!(
                        "SELECT Name, AV.URL FROM States, WebPages_AV AV, WebPages_Google G \
                         WHERE Name = AV.T1 AND Name = G.T1 AND AV.Rank <= {rank} \
                         AND G.Rank <= {rank} AND AV.URL = G.URL{pop}"
                    ),
                    false,
                ),
                // Capital-vs-state self-join of WebCount.
                4 => (
                    format!(
                        "SELECT Capital, C.Count, Name, S.Count \
                         FROM States, WebCount C, WebCount S \
                         WHERE Capital = C.T1 AND Name = S.T1 AND C.Count > S.Count{pop}"
                    ),
                    false,
                ),
                // Aggregation over web counts (clash case 3).
                _ => (
                    format!(
                        "SELECT SUM(Count), COUNT(*), MAX(Count) FROM States, WebCount \
                         WHERE Name = T1 AND T2 = '{topic}'{pop}"
                    ),
                    false,
                ),
            };
            if let Some(n) = limit {
                if ordered {
                    sql.push_str(&format!(" LIMIT {n}"));
                } else {
                    // LIMIT without total order is nondeterministic; skip.
                    let _ = n;
                }
            }
            ordered &= true;
            GenQuery { sql, ordered }
        })
}

fn run(db: &Database, pump: &Arc<ReqPump>, sql: &str, opts: EngineOpts) -> Vec<String> {
    let engines = registry();
    let stmt = wsqdsq::sql::parse_one(sql).unwrap();
    let sel = match stmt {
        wsqdsq::sql::Statement::Select(s) => s,
        _ => unreachable!(),
    };
    let result = db
        .run_query(&sel, &engines, pump, opts)
        .unwrap_or_else(|e| panic!("query failed ({e}): {sql}"));
    result.rows.iter().map(|t| t.to_string()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn async_iteration_is_transparent(
        q in arb_query(),
        max_concurrent in prop_oneof![Just(1usize), Just(3), Just(64)],
        coalesce in any::<bool>(),
        strategy in prop_oneof![
            Just(PlacementStrategy::Full),
            Just(PlacementStrategy::InsertionOnly)
        ],
        buffer in prop_oneof![Just(BufferMode::Full), Just(BufferMode::Streaming)],
    ) {
        let db = fresh_db();
        let pump = pump_with(max_concurrent, coalesce);

        let baseline = {
            let mut rows = run(&db, &pump, &q.sql, EngineOpts {
                mode: ExecutionMode::Synchronous,
                ..Default::default()
            });
            if !q.ordered { rows.sort(); }
            rows
        };

        let mut got = run(&db, &pump, &q.sql, EngineOpts {
            mode: ExecutionMode::Asynchronous,
            strategy,
            buffer,
            ..Default::default()
        });
        if !q.ordered { got.sort(); }

        prop_assert_eq!(&got, &baseline,
            "config ({:?},{:?},mc={},co={}) diverged on: {}",
            strategy, buffer, max_concurrent, coalesce, q.sql);
        // No leaked pump registrations.
        prop_assert_eq!(pump.live_calls(), 0);
    }
}
