//! The workspace's central correctness property: **asynchronous iteration
//! is semantically transparent**. For any WSQ query, every combination of
//! execution mode, ReqSync placement strategy, buffering discipline, and
//! pump concurrency limit must produce the same bag of rows as plain
//! sequential execution.
//!
//! Queries are generated from a grammar covering the paper's shapes:
//! WebCount and WebPages scans, one or two engines, constant and column
//! bindings, predicates over placeholder attributes (carried filters),
//! rank limits, aggregation, DISTINCT, ORDER BY and LIMIT.

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use wsqdsq::engine::db::Database;
use wsqdsq::engine::engines::EngineRegistry;
use wsqdsq::engine::QueryOptions as EngineOpts;
use wsqdsq::prelude::*;

/// One shared corpus for the whole test binary (generation is the
/// expensive part; databases and pumps are cheap per-case).
fn web() -> &'static SimWeb {
    static WEB: OnceLock<SimWeb> = OnceLock::new();
    WEB.get_or_init(|| SimWeb::build(CorpusConfig::small()))
}

fn fresh_db() -> Database {
    let mut db = Database::open_in_memory().unwrap();
    let engines = EngineRegistry::new();
    let pump = ReqPump::new(PumpConfig::default());
    db.run_sql(
        "CREATE TABLE States (Name VARCHAR(32), Population INT, Capital VARCHAR(32))",
        &engines,
        &pump,
        EngineOpts::default(),
    )
    .unwrap();
    let rows: Vec<Tuple> = wsqdsq::websim::data::STATES
        .iter()
        .map(|s| {
            Tuple::new(vec![
                Value::from(s.name),
                Value::Int(s.population),
                Value::from(s.capital),
            ])
        })
        .collect();
    db.insert("States", &rows).unwrap();
    db
}

fn registry() -> EngineRegistry {
    let mut engines = EngineRegistry::new();
    engines.register("AV", web().engine(EngineKind::AltaVista), true);
    engines.register("Google", web().engine(EngineKind::Google), false);
    engines
}

fn pump_with(max_concurrent: usize, coalesce: bool, jitter: bool) -> Arc<ReqPump> {
    pump_with_window(max_concurrent, coalesce, jitter, 1)
}

fn pump_with_window(
    max_concurrent: usize,
    coalesce: bool,
    jitter: bool,
    submission_window: usize,
) -> Arc<ReqPump> {
    let pump = ReqPump::new(PumpConfig {
        max_concurrent,
        coalesce,
        submission_window,
        ..PumpConfig::default()
    });
    // Jittered latency makes completion *order* adversarial: calls
    // finish in an order unrelated to registration order, which is what
    // exercises the capped stall/drain loop's reordering tolerance.
    let latency = if jitter {
        LatencyModel::Jitter {
            base: std::time::Duration::ZERO,
            jitter: std::time::Duration::from_millis(1),
        }
    } else {
        LatencyModel::Zero
    };
    pump.register_service(
        "AV",
        web().engine_with_latency(EngineKind::AltaVista, latency),
    );
    pump.register_service(
        "Google",
        web().engine_with_latency(EngineKind::Google, latency),
    );
    pump
}

/// A randomly generated WSQ query.
#[derive(Debug, Clone)]
struct GenQuery {
    sql: String,
    ordered: bool,
}

fn topics() -> Vec<&'static str> {
    vec![
        "computer",
        "beaches",
        "four corners",
        "skiing",
        "Knuth",
        "zzznope",
    ]
}

fn arb_query() -> impl Strategy<Value = GenQuery> {
    let pop_filter = prop_oneof![
        Just(String::new()),
        (1u32..20).prop_map(|m| format!(" AND Population > {}", m as u64 * 1_000_000)),
    ];
    let shapes = 0..6usize;
    (
        shapes,
        pop_filter,
        0..topics().len(),
        1u32..6,
        prop::option::of(1u64..20),
        any::<bool>(),
    )
        .prop_map(|(shape, pop, topic_i, rank, limit, count_filter)| {
            let topic = topics()[topic_i];
            let (mut sql, mut ordered) = match shape {
                // WebCount, default template, optional topic binding.
                0 => (
                    format!(
                        "SELECT Name, Count FROM States, WebCount \
                         WHERE Name = T1 AND T2 = '{topic}'{pop}{}",
                        if count_filter { " AND Count > 1" } else { "" },
                    ),
                    false,
                ),
                // Simple one-binding WebCount with ordering.
                1 => (
                    format!(
                        "SELECT Name, Count FROM States, WebCount WHERE Name = T1{pop} \
                         ORDER BY Count DESC, Name"
                    ),
                    true,
                ),
                // WebPages with a rank limit.
                2 => (
                    format!(
                        "SELECT Name, URL, Rank FROM States, WebPages \
                         WHERE Name = T1 AND Rank <= {rank}{pop} ORDER BY Name, Rank"
                    ),
                    true,
                ),
                // Two engines, URL agreement (carried filter over CP).
                3 => (
                    format!(
                        "SELECT Name, AV.URL FROM States, WebPages_AV AV, WebPages_Google G \
                         WHERE Name = AV.T1 AND Name = G.T1 AND AV.Rank <= {rank} \
                         AND G.Rank <= {rank} AND AV.URL = G.URL{pop}"
                    ),
                    false,
                ),
                // Capital-vs-state self-join of WebCount.
                4 => (
                    format!(
                        "SELECT Capital, C.Count, Name, S.Count \
                         FROM States, WebCount C, WebCount S \
                         WHERE Capital = C.T1 AND Name = S.T1 AND C.Count > S.Count{pop}"
                    ),
                    false,
                ),
                // Aggregation over web counts (clash case 3).
                _ => (
                    format!(
                        "SELECT SUM(Count), COUNT(*), MAX(Count) FROM States, WebCount \
                         WHERE Name = T1 AND T2 = '{topic}'{pop}"
                    ),
                    false,
                ),
            };
            if let Some(n) = limit {
                if ordered {
                    sql.push_str(&format!(" LIMIT {n}"));
                } else {
                    // LIMIT without total order is nondeterministic; skip.
                    let _ = n;
                }
            }
            ordered &= true;
            GenQuery { sql, ordered }
        })
}

fn run(db: &Database, pump: &Arc<ReqPump>, sql: &str, opts: EngineOpts) -> Vec<String> {
    let engines = registry();
    let stmt = wsqdsq::sql::parse_one(sql).unwrap();
    let sel = match stmt {
        wsqdsq::sql::Statement::Select(s) => s,
        _ => unreachable!(),
    };
    let result = db
        .run_query(&sel, &engines, pump, opts)
        .unwrap_or_else(|e| panic!("query failed ({e}): {sql}"));
    result.rows.iter().map(|t| t.to_string()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn async_iteration_is_transparent(
        q in arb_query(),
        max_concurrent in prop_oneof![Just(1usize), Just(3), Just(64)],
        coalesce in any::<bool>(),
        strategy in prop_oneof![
            Just(PlacementStrategy::Full),
            Just(PlacementStrategy::InsertionOnly)
        ],
        buffer in prop_oneof![Just(BufferMode::Full), Just(BufferMode::Streaming)],
        cap in prop_oneof![Just(None), (1usize..12).prop_map(Some)],
        jitter in any::<bool>(),
    ) {
        let db = fresh_db();
        let pump = pump_with(max_concurrent, coalesce, jitter);

        let baseline = {
            let mut rows = run(&db, &pump, &q.sql, EngineOpts {
                mode: ExecutionMode::Synchronous,
                ..Default::default()
            });
            if !q.ordered { rows.sort(); }
            rows
        };

        let mut got = run(&db, &pump, &q.sql, EngineOpts {
            mode: ExecutionMode::Asynchronous,
            strategy,
            buffer,
            ..Default::default()
        });
        if !q.ordered { got.sort(); }

        prop_assert_eq!(&got, &baseline,
            "config ({:?},{:?},mc={},co={}) diverged on: {}",
            strategy, buffer, max_concurrent, coalesce, q.sql);
        // No leaked pump registrations.
        prop_assert_eq!(pump.live_calls(), 0);

        // Admission control is invisible in the results: the capped run
        // returns the exact multiset the unbounded run did, for every
        // cap >= 1, under both buffer modes.
        let mut capped = run(&db, &pump, &q.sql, EngineOpts {
            mode: ExecutionMode::Asynchronous,
            strategy,
            buffer,
            reqsync_cap: cap,
            ..Default::default()
        });
        if !q.ordered { capped.sort(); }
        prop_assert_eq!(&capped, &got,
            "cap={:?} changed results under ({:?},{:?},mc={},co={}): {}",
            cap, strategy, buffer, max_concurrent, coalesce, q.sql);
        prop_assert_eq!(pump.live_calls(), 0);

        // Ahead-of-need prefetch and windowed submission are invisible
        // too: every depth × window combination returns the demand-driven
        // multiset byte-for-byte, and drains the pump completely. The
        // prefetching pump coalesces (prefetch is disabled otherwise) and
        // runs under the same admission cap, so the depth-to-cap clamp is
        // exercised whenever cap < depth.
        for depth in [1usize, 4, 16] {
            for window in [1usize, 8] {
                let ppump = pump_with_window(max_concurrent, true, jitter, window);
                let mut pre = run(&db, &ppump, &q.sql, EngineOpts {
                    mode: ExecutionMode::Asynchronous,
                    strategy,
                    buffer,
                    reqsync_cap: cap,
                    prefetch_depth: depth,
                    prefetch_window: window,
                    ..Default::default()
                });
                if !q.ordered { pre.sort(); }
                prop_assert_eq!(&pre, &baseline,
                    "prefetch depth={} window={} diverged under ({:?},{:?},cap={:?}): {}",
                    depth, window, strategy, buffer, cap, q.sql);
                prop_assert_eq!(ppump.live_calls(), 0,
                    "prefetch depth={} window={} leaked calls", depth, window);

                // Static resource bounds hold for the exact plan that
                // just ran: every stamped ReqSync cap honours the
                // session cap, no AEVScan's prefetch depth exceeds its
                // enclosing cap, and the symbolic peak of buffered
                // tuples is provably <= the cap.
                let stmt = wsqdsq::sql::parse_one(&q.sql).unwrap();
                let sel = match stmt {
                    wsqdsq::sql::Statement::Select(s) => s,
                    _ => unreachable!(),
                };
                let plan = db.plan_query(&sel, &registry(), EngineOpts {
                    mode: ExecutionMode::Asynchronous,
                    strategy,
                    buffer,
                    reqsync_cap: cap,
                    prefetch_depth: depth,
                    prefetch_window: window,
                    ..Default::default()
                }).unwrap();
                let bounds = wsq_analyze::verify_bounds(&plan, cap)
                    .unwrap_or_else(|e| panic!(
                        "bounds rejected (cap={cap:?} depth={depth}): {e}\nplan: {plan:?}"));
                if let Some(cap) = cap {
                    prop_assert!(
                        bounds.peak_buffered.le(wsq_analyze::Bound::Finite(cap as u64)),
                        "peak buffered {} above cap {} for: {}",
                        bounds.peak_buffered, cap, q.sql);
                }
            }
        }
    }
}

/// The acceptance workload: the 50-state WebCount fan-out under latency
/// high enough that the unbounded run buffers the whole fan-out, while
/// `cap = 8` provably keeps occupancy at or below 8 — with byte-identical
/// output and the buffer fully drained afterwards.
#[test]
fn cap_eight_bounds_the_fifty_state_fan_out() {
    let query = "SELECT Name, Count FROM States, WebCount WHERE Name = T1 \
                 ORDER BY Count DESC, Name";
    let latency = LatencyModel::Jitter {
        base: std::time::Duration::from_millis(1),
        jitter: std::time::Duration::from_millis(2),
    };
    let mut unbounded = Wsq::open_in_memory(WsqConfig {
        latency,
        ..WsqConfig::fast()
    })
    .unwrap();
    unbounded.load_reference_data().unwrap();
    let baseline = unbounded.query(query).unwrap().to_table();
    let um = unbounded.obs().metrics().unwrap();
    assert!(
        um.reqsync_buffered.high_water() > 8,
        "workload too tame to exercise the cap (high-water {})",
        um.reqsync_buffered.high_water()
    );

    let mut capped = Wsq::open_in_memory(WsqConfig {
        latency,
        reqsync_buffer_cap: Some(8),
        ..WsqConfig::fast()
    })
    .unwrap();
    capped.load_reference_data().unwrap();
    let got = capped.query(query).unwrap().to_table();
    assert_eq!(got, baseline, "cap=8 changed the result");

    let m = capped.obs().metrics().unwrap();
    assert!(
        m.reqsync_buffered.high_water() <= 8,
        "cap=8 exceeded: high-water {}",
        m.reqsync_buffered.high_water()
    );
    assert!(m.reqsync_stalls.get() > 0, "fan-out of 50 never stalled");
    assert_eq!(m.reqsync_buffered.get(), 0, "buffer not drained");
    assert_eq!(capped.pump().live_calls(), 0);
}
