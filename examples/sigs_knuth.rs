//! Section 4's running examples: the Sigs/"Knuth" ranking (§4.1, whose
//! results the paper reports in footnote 3) and the bushy Sigs/CSFields
//! URL-intersection query of §4.5 Example 3 (Figure 8), with EXPLAIN
//! output showing the plan transformation.
//!
//! ```sh
//! cargo run --release --example sigs_knuth
//! ```

use wsqdsq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut wsq = Wsq::open_in_memory(WsqConfig::default())?;
    wsq.load_reference_data()?;

    // --- §4.1: rank the ACM Sigs by co-occurrence with "Knuth".
    let sql = "SELECT Name, Count FROM Sigs, WebCount \
               WHERE Name = T1 AND T2 = 'Knuth' AND Count > 0 \
               ORDER BY Count DESC";
    println!("=== Sigs near 'Knuth' (paper footnote 3)\n{sql}\n");

    let sync_opts = QueryOptions {
        mode: ExecutionMode::Synchronous,
        ..Default::default()
    };
    println!("--- sequential plan (Figure 2):");
    println!("{}", wsq.explain_with(sql, sync_opts)?);
    println!("--- asynchronous plan (Figure 3):");
    println!("{}", wsq.explain(sql)?);

    let result = wsq.query(sql)?;
    println!("{}", result.to_table());
    println!(
        "(paper order: SIGACT, SIGPLAN, SIGGRAPH, SIGMOD, SIGCOMM, SIGSAM; \
         Count = 0 for all other Sigs)\n"
    );

    // --- §4.3 / Figure 4: top-3 URLs per Sig (tuple generation).
    let sql = "SELECT Name, URL, Rank FROM Sigs, WebPages \
               WHERE Name = T1 AND Rank <= 3 ORDER BY Name, Rank";
    println!("=== Top 3 URLs per Sig (Figure 4 plan)\n{sql}\n");
    println!("{}", wsq.explain(sql)?);
    let result = wsq.query(sql)?;
    println!(
        "{} result rows (paper: 111 for 37 Sigs × 3)\n",
        result.rows.len()
    );

    // --- §4.5 Example 3 / Figure 8: URLs in the top 5 of both a Sig and a
    // CS field. The join on URL reads placeholder attributes, so the
    // asyncify pass rewrites it into a selection over a cross-product.
    let sql = "SELECT Sigs.Name, CSFields.Name, S.URL \
               FROM Sigs, WebPages S, CSFields, WebPages C \
               WHERE Sigs.Name = S.T1 AND CSFields.Name = C.T1 \
               AND S.Rank <= 5 AND C.Rank <= 5 AND S.URL = C.URL";
    println!("=== Sig/CSField shared URLs (Figure 8)\n{sql}\n");
    println!("--- input plan (Figure 8a):");
    println!("{}", wsq.explain_with(sql, sync_opts)?);
    println!("--- transformed plan (Figure 8b — join became Select over Cross-Product):");
    println!("{}", wsq.explain(sql)?);
    let result = wsq.query(sql)?;
    println!("{} shared URLs found\n", result.rows.len());

    Ok(())
}
