//! An interactive WSQ shell, in the spirit of the paper's Web demo
//! ("a simple interface that allows users to pose limited queries over our
//! WSQ implementation").
//!
//! ```sh
//! cargo run --release --example repl
//! ```
//!
//! Commands:
//! * any SQL statement (`;`-terminated or single-line)
//! * `.explain <select>` — show the (transformed) physical plan
//! * `.verify <select>`  — show the plan plus the static verifier's verdict
//! * `.analyze <select>` — run it and show per-operator runtime stats
//! * `.trace <select>`   — run it and show every external call's lifecycle
//!   timeline (registered → queued → launched → completed → patched)
//! * `.mode sync|async|parallel` — switch execution mode
//! * `.tables`           — list stored tables
//! * `.stats`            — pump, buffer-pool, and metrics-registry snapshot
//! * `.metrics`          — Prometheus text dump of the metrics registry
//! * `.quit`

use std::io::{self, BufRead, Write};
use wsqdsq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut wsq = Wsq::open_in_memory(WsqConfig::default())?;
    wsq.load_reference_data()?;
    println!(
        "WSQ/DSQ shell — tables: States, Sigs, CSFields, Movies; \
         virtual: WebCount[_AV|_Google], WebPages[_AV|_Google]"
    );
    println!(
        "Try: SELECT Name, Count FROM States, WebCount WHERE Name = T1 ORDER BY Count DESC LIMIT 5"
    );

    let stdin = io::stdin();
    let mut out = io::stdout();
    loop {
        print!("wsq> ");
        out.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ".quit" || line == ".exit" {
            break;
        }
        if line == ".tables" {
            println!("{}", wsq.db().catalog().table_names().join(", "));
            continue;
        }
        if line == ".stats" {
            println!("pump: {:?}", wsq.pump().stats());
            println!("pool: {:?}", wsq.db().pool_stats());
            if let Some(m) = wsq.obs().metrics() {
                let lat = m.call_latency.snapshot();
                let fmt = |d: Option<std::time::Duration>| match d {
                    Some(d) => format!("{:.1}ms", d.as_secs_f64() * 1e3),
                    None => "-".into(),
                };
                println!(
                    "calls: completed={} failed={} coalesced={} cancelled={} in_flight={} (peak {})",
                    m.calls_completed.get(),
                    m.calls_failed.get(),
                    m.calls_coalesced.get(),
                    m.calls_cancelled.get(),
                    m.in_flight.get(),
                    m.in_flight.high_water(),
                );
                println!(
                    "call latency: p50={} p95={} max={} (n={})",
                    fmt(lat.quantile(0.5)),
                    fmt(lat.quantile(0.95)),
                    fmt(Some(std::time::Duration::from_nanos(lat.max_nanos))),
                    lat.count,
                );
                println!(
                    "cache: hits={} misses={} coalesced={}  retries={} flaky_failures={}",
                    m.cache_hits.get(),
                    m.cache_misses.get(),
                    m.cache_coalesced.get(),
                    m.retries.get(),
                    m.flaky_failures.get(),
                );
                println!(
                    "queries: {} (latency p95={})  tuples: patched={} cancelled={}",
                    m.queries.get(),
                    fmt(m.query_latency.snapshot().quantile(0.95)),
                    m.tuples_patched.get(),
                    m.tuples_cancelled.get(),
                );
                println!(
                    "reqsync: buffered={} (peak {})  stalls={} stall_p95={}",
                    m.reqsync_buffered.get(),
                    m.reqsync_buffered.high_water(),
                    m.reqsync_stalls.get(),
                    fmt(m.stall_duration.snapshot().quantile(0.95)),
                );
            }
            continue;
        }
        if line == ".metrics" {
            print!("{}", wsq.metrics_text());
            continue;
        }
        if let Some(sql) = line.strip_prefix(".trace") {
            match wsq.trace_query(sql.trim()) {
                Ok((rows, timeline)) => {
                    print!("{timeline}");
                    println!("({} rows)", rows.rows.len());
                }
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if let Some(mode) = line.strip_prefix(".mode") {
            match mode.trim() {
                "sync" => wsq.options_mut().mode = ExecutionMode::Synchronous,
                "async" => wsq.options_mut().mode = ExecutionMode::Asynchronous,
                "parallel" => wsq.options_mut().mode = ExecutionMode::ParallelJoins,
                other => {
                    println!("unknown mode '{other}' (sync|async|parallel)");
                    continue;
                }
            }
            println!("ok");
            continue;
        }
        if let Some(sql) = line.strip_prefix(".explain") {
            match wsq.explain(sql.trim()) {
                Ok(plan) => println!("{plan}"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if let Some(sql) = line.strip_prefix(".verify") {
            match wsq.explain_verify(sql.trim()) {
                Ok(plan) => println!("{plan}"),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if let Some(sql) = line.strip_prefix(".analyze") {
            match wsq.analyze(sql.trim()) {
                Ok((rows, report)) => {
                    println!("{report}");
                    println!("({} rows)", rows.rows.len());
                }
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        let started = std::time::Instant::now();
        match wsq.execute(line) {
            Ok(results) => {
                for r in results {
                    match r {
                        wsq_core::StatementResult::Rows(rows) => {
                            print!("{}", rows.to_table());
                            println!("({} rows in {:?})", rows.rows.len(), started.elapsed());
                        }
                        wsq_core::StatementResult::Affected(n) => {
                            println!("ok ({n} rows affected)");
                        }
                    }
                }
            }
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}
