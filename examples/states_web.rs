//! The six example queries of paper Section 3.1, reproduced over the
//! synthetic Web corpus.
//!
//! ```sh
//! cargo run --release --example states_web
//! ```

use wsqdsq::prelude::*;

fn run(wsq: &mut Wsq, title: &str, sql: &str, limit: usize) {
    println!("=== {title}");
    println!("{sql}\n");
    match wsq.query(sql) {
        Ok(result) => {
            let shown = QueryResult {
                schema: result.schema.clone(),
                rows: result.rows.iter().take(limit).cloned().collect(),
            };
            println!("{}", shown.to_table());
            if result.rows.len() > limit {
                println!("... ({} rows total)\n", result.rows.len());
            }
        }
        Err(e) => println!("error: {e}\n"),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut wsq = Wsq::open_in_memory(WsqConfig::default())?;
    wsq.load_reference_data()?;

    run(
        &mut wsq,
        "Query 1: Rank all states by how often they appear by name on the Web",
        "SELECT Name, Count FROM States, WebCount \
         WHERE Name = T1 ORDER BY Count DESC, Name",
        5,
    );

    run(
        &mut wsq,
        "Query 2: Rank states by Web mentions, normalized by population",
        "SELECT Name, Count * 1000000 / Population AS C FROM States, WebCount \
         WHERE Name = T1 ORDER BY C DESC, Name",
        5,
    );

    run(
        &mut wsq,
        "Query 3: Rank states by mentions near the phrase 'four corners'",
        "SELECT Name, Count FROM States, WebCount \
         WHERE Name = T1 AND T2 = 'four corners' ORDER BY Count DESC, Name",
        5,
    );

    run(
        &mut wsq,
        "Query 4: Which state capitals appear on the Web more often than the state?",
        "SELECT Capital, C.Count AS CapitalCount, Name, S.Count AS StateCount \
         FROM States, WebCount C, WebCount S \
         WHERE Capital = C.T1 AND Name = S.T1 AND C.Count > S.Count \
         ORDER BY CapitalCount DESC",
        10,
    );

    run(
        &mut wsq,
        "Query 5: Get the top two URLs for each state",
        "SELECT Name, URL, Rank FROM States, WebPages \
         WHERE Name = T1 AND Rank <= 2 ORDER BY Name, Rank",
        6,
    );

    run(
        &mut wsq,
        "Query 6: URLs both AltaVista and Google place in a state's top 5",
        "SELECT Name, AV.URL FROM States, WebPages_AV AV, WebPages_Google G \
         WHERE Name = AV.T1 AND Name = G.T1 AND AV.Rank <= 5 AND G.Rank <= 5 \
         AND AV.URL = G.URL ORDER BY Name",
        20,
    );

    println!(
        "pump stats: {:?}\nleaked calls: {}",
        wsq.pump().stats(),
        wsq.pump().live_calls()
    );
    Ok(())
}
