//! The asynchronous-iteration cost model (the paper's §4.5 future work):
//! predict each query's synchronous and asynchronous wall time, then
//! measure both and compare.
//!
//! ```sh
//! cargo run --release --example cost_advisor
//! ```

use std::time::{Duration, Instant};
use wsq_engine::cost::CostParams;
use wsqdsq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let latency_ms = 20u64;
    let config = WsqConfig {
        latency: LatencyModel::Fixed(Duration::from_millis(latency_ms)),
        ..WsqConfig::default()
    };
    let mut wsq = Wsq::open_in_memory(config)?;
    wsq.load_reference_data()?;

    let params = CostParams {
        latency_secs: latency_ms as f64 / 1000.0,
        max_concurrent: 64,
        ..CostParams::default()
    };

    let queries = [
        (
            "Q1: one WebCount call per state",
            "SELECT Name, Count FROM States, WebCount WHERE Name = T1",
        ),
        (
            "Q2: two calls per state",
            "SELECT Name, Count, URL FROM States, WebCount, WebPages \
             WHERE Name = WebCount.T1 AND Name = WebPages.T1 AND WebPages.Rank <= 2",
        ),
        (
            "chained: WebPages URLs feed a second WebCount (two waves)",
            "SELECT S.URL, WC.Count FROM States, WebPages S, WebCount WC \
             WHERE Name = S.T1 AND S.Rank <= 2 AND WC.T1 = S.URL \
             AND Population > 15000000",
        ),
    ];

    println!(
        "{:<62}{:>10}{:>10}{:>10}{:>10}",
        "query", "est sync", "sync", "est async", "async"
    );
    for (label, sql) in queries {
        let est = wsq
            .db()
            .estimate_query(sql, wsq.engines(), QueryOptions::default(), &params)?;
        let t0 = Instant::now();
        wsq.query_with(
            sql,
            QueryOptions {
                mode: ExecutionMode::Synchronous,
                ..Default::default()
            },
        )?;
        let sync = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        wsq.query(sql)?;
        let asynch = t0.elapsed().as_secs_f64();
        println!(
            "{label:<62}{:>9.2}s{:>9.2}s{:>9.3}s{:>9.3}s",
            est.sync_secs, sync, est.async_secs, asynch
        );
        println!(
            "{:<62}(calls={:.0}, waves={}, predicted improvement {:.1}x)",
            "",
            est.external_calls,
            est.waves,
            est.improvement()
        );
    }
    Ok(())
}
