//! The Redbase substrate beyond SELECT: B+-tree indexes, UPDATE and
//! DELETE — a travel journal whose rows join against the (simulated) Web.
//!
//! ```sh
//! cargo run --release --example indexes_dml
//! ```

use wsqdsq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut wsq = Wsq::open_in_memory(WsqConfig::default())?;
    wsq.load_reference_data()?;

    wsq.execute(
        "CREATE TABLE Journal (Place VARCHAR(32), Year INT, Rating INT);
         INSERT INTO Journal VALUES
           ('Colorado', 1997, 5), ('Utah', 1997, 4), ('Maine', 1998, 3),
           ('Colorado', 1998, 4), ('Hawaii', 1999, 5), ('Texas', 1999, 2),
           ('Colorado', 1999, 5), ('Utah', 1999, 3);
         CREATE INDEX ON Journal (Place)",
    )?;

    // The index turns the Place lookup into a B+-tree probe:
    let sql = "SELECT Place, Year, Rating FROM Journal WHERE Place = 'Colorado' ORDER BY Year";
    println!("{}", wsq.explain(sql)?);
    println!("{}", wsq.query(sql)?.to_table());

    // Fix up some data.
    wsq.execute("UPDATE Journal SET Rating = Rating + 1 WHERE Place = 'Texas'")?;
    wsq.execute("DELETE FROM Journal WHERE Year = 1997")?;
    println!(
        "after UPDATE/DELETE:\n{}",
        wsq.query("SELECT Place, Year, Rating FROM Journal ORDER BY Year, Place")?
            .to_table()
    );

    // Journal places, their Web presence, and our rating — an indexed
    // table joined through a dependent join to the search engine.
    let sql = "SELECT DISTINCT Place, Count FROM Journal, WebCount \
               WHERE Place = T1 ORDER BY Count DESC, Place";
    println!("{}", wsq.query(sql)?.to_table());

    // HAVING + aggregates over the journal.
    let sql = "SELECT Place, COUNT(*) AS visits, AVG(Rating) AS avg_rating \
               FROM Journal GROUP BY Place HAVING COUNT(*) > 1 ORDER BY Place";
    println!("{}", wsq.query(sql)?.to_table());

    // A stored VIEW over the Web-supported join: the paper calls WebCount
    // "an aggregate view over WebPages" — user views compose the same way.
    wsq.execute(
        "CREATE VIEW PlaceBuzz AS \
         SELECT DISTINCT Place, Count AS Hits FROM Journal, WebCount WHERE Place = T1",
    )?;
    println!(
        "{}",
        wsq.query("SELECT Place, Hits FROM PlaceBuzz ORDER BY Hits DESC, Place")?
            .to_table()
    );

    // Subquery: places we rated above our own average.
    let sql = "SELECT DISTINCT Place FROM Journal \
               WHERE Rating > (SELECT AVG(Rating) FROM Journal) ORDER BY Place";
    println!("{}", wsq.query(sql)?.to_table());

    // Materialize the Web counts into a local cache table.
    wsq.execute(
        "CREATE TABLE BuzzCache (Place VARCHAR(32), Hits INT);
         INSERT INTO BuzzCache SELECT Place, Hits FROM PlaceBuzz",
    )?;
    println!(
        "cached {} rows locally; SHOW TABLES:\n{}",
        wsq.query("SELECT COUNT(*) FROM BuzzCache")?.rows[0]
            .get(0)
            .as_int()?,
        wsq.query("SHOW TABLES")?.to_table()
    );
    Ok(())
}
