//! Quickstart: open a WSQ instance, load the reference tables, and run a
//! Web-supported SQL query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wsqdsq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An in-memory database over a freshly generated synthetic Web.
    // `WsqConfig::default()` uses the full 20k-page corpus with zero
    // simulated latency; see `paper_like()` for latency experiments.
    let mut wsq = Wsq::open_in_memory(WsqConfig::default())?;

    // `States(Name, Population, Capital)` + Sigs/CSFields/Movies.
    wsq.load_reference_data()?;

    // Paper Section 3.1, Query 1: rank states by how often they are
    // mentioned by name on the Web. `WebCount` is a *virtual table* —
    // every row is a live search-engine call.
    let sql = "SELECT Name, Count FROM States, WebCount \
               WHERE Name = T1 ORDER BY Count DESC, Name LIMIT 10";

    println!("Query:\n  {sql}\n");
    println!("Plan (asynchronous iteration):\n{}", wsq.explain(sql)?);

    let result = wsq.query(sql)?;
    println!("{}", result.to_table());

    // The same query can run the conventional way — every search blocks
    // the query processor. Same answer, radically different latency when
    // the engine is slow (see the `table1` benchmark).
    let sync = QueryOptions {
        mode: ExecutionMode::Synchronous,
        ..Default::default()
    };
    let sync_result = wsq.query_with(sql, sync)?;
    assert_eq!(result.rows, sync_result.rows);
    println!("Synchronous execution returned identical rows. ✓");

    Ok(())
}
