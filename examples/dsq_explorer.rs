//! DSQ — Database-Supported Web Queries (paper §1).
//!
//! The user searches the Web for "scuba diving"; DSQ uses the database to
//! *explain* the search: which states, which movies — and which
//! state/movie pairs — co-occur with the phrase on the Web.
//!
//! ```sh
//! cargo run --release --example dsq_explorer
//! ```

use wsqdsq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut wsq = Wsq::open_in_memory(WsqConfig::default())?;
    wsq.load_reference_data()?;
    let dsq = DsqExplorer::new(&wsq, "AV")?;

    let phrase = "scuba diving";
    println!("DSQ probe phrase: {phrase:?}\n");

    let states = wsq.column_values("States", "Name")?;
    let corr = dsq.correlate(phrase, &states)?;
    println!("States most correlated with {phrase:?}:");
    for c in corr.iter().take(5) {
        println!("  {:<16} {}", c.term, c.count);
    }

    let movies = wsq.column_values("Movies", "Title")?;
    let corr = dsq.correlate(phrase, &movies)?;
    println!("\nMovies most correlated with {phrase:?}:");
    for c in corr.iter().take(5) {
        println!("  {:<16} {}", c.term, c.count);
    }

    let pairs = dsq.correlate_pairs(phrase, &states, &movies, 3)?;
    println!(
        "\nState/movie/{phrase:?} triples (the paper's 'underwater thriller filmed in Florida'):"
    );
    for p in pairs.iter().take(5) {
        println!("  {:<12} × {:<14} {}", p.a, p.b, p.count);
    }

    println!(
        "\n{} concurrent searches issued, peak in-flight {}",
        wsq.pump().stats().launched,
        wsq.pump().stats().peak_in_flight
    );
    Ok(())
}
