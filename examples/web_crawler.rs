//! The paper's §4.2 second use case for asynchronous iteration: a Web
//! crawler. "Given a table of thousands of URLs, a query over that table
//! could be used to fetch the HTML for each URL."
//!
//! A custom `SearchService` plays the role of an HTTP fetcher: its
//! "engine" is registered as `Fetcher`, so `WebCount_Fetcher(T1 = url)`
//! "fetches" the page and reports its outgoing-link count. The fetcher
//! genuinely blocks (sleeps), so this example uses the thread-pool
//! dispatcher rather than the event loop — and demonstrates that both
//! dispatchers plug into the same machinery.
//!
//! ```sh
//! cargo run --release --example web_crawler
//! ```

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wsq_pump::{
    DispatchMode, PumpConfig, SearchRequest, SearchResult, SearchService, ServiceReply,
};
use wsqdsq::prelude::*;

/// A pretend HTTP fetcher: blocks ~15ms per page, "parses" a link count.
struct PageFetcher {
    fetches: AtomicU64,
}

impl SearchService for PageFetcher {
    fn execute(&self, req: &SearchRequest) -> ServiceReply {
        self.fetches.fetch_add(1, Ordering::Relaxed);
        // Genuinely blocking work (network + parse).
        std::thread::sleep(Duration::from_millis(15));
        let mut h = DefaultHasher::new();
        req.expr.hash(&mut h);
        let links = h.finish() % 40;
        ServiceReply {
            result: Ok(SearchResult::Count(links)),
            latency: Duration::ZERO, // already elapsed inside execute
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Thread-pool dispatch: 16 workers crawl concurrently.
    let mut config = WsqConfig::fast();
    config.pump = PumpConfig {
        dispatch: DispatchMode::ThreadPool(16),
        ..PumpConfig::default()
    };
    let mut wsq = Wsq::open_in_memory(config)?;

    let fetcher = Arc::new(PageFetcher {
        fetches: AtomicU64::new(0),
    });
    wsq.register_engine("Fetcher", fetcher.clone(), false);

    // Seed the frontier.
    wsq.execute("CREATE TABLE Frontier (Url VARCHAR(64))")?;
    let mut inserts = Vec::new();
    for i in 0..64 {
        inserts.push(format!("('www.site{i}.example.com/index.html')"));
    }
    wsq.execute(&format!(
        "INSERT INTO Frontier VALUES {}",
        inserts.join(", ")
    ))?;

    let sql = "SELECT Url, Count AS Links FROM Frontier, WebCount_Fetcher \
               WHERE Url = T1 ORDER BY Links DESC, Url LIMIT 10";
    println!("Crawl query:\n  {sql}\n");

    // Sequential crawl: one blocking fetch at a time.
    let t0 = Instant::now();
    let sync = wsq.query_with(
        sql,
        QueryOptions {
            mode: ExecutionMode::Synchronous,
            ..Default::default()
        },
    )?;
    let sync_time = t0.elapsed();

    // Asynchronous iteration: all 64 fetches in flight across the pool.
    let t0 = Instant::now();
    let async_r = wsq.query(sql)?;
    let async_time = t0.elapsed();

    assert_eq!(sync.rows, async_r.rows);
    println!("{}", async_r.to_table());
    println!("sequential crawl : {sync_time:?}");
    println!("async iteration  : {async_time:?}");
    println!(
        "speedup          : {:.1}x over {} fetches",
        sync_time.as_secs_f64() / async_time.as_secs_f64().max(1e-9),
        fetcher.fetches.load(Ordering::Relaxed) / 2,
    );
    Ok(())
}
