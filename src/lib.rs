//! # WSQ/DSQ
//!
//! A Rust implementation of *WSQ/DSQ: A Practical Approach for Combined
//! Querying of Databases and the Web* (Goldman & Widom, SIGMOD 2000).
//!
//! This umbrella crate re-exports the whole workspace. Most users want
//! [`wsq_core::Wsq`]:
//!
//! ```no_run
//! use wsqdsq::prelude::*;
//!
//! let mut wsq = Wsq::open_in_memory(WsqConfig::default()).unwrap();
//! wsq.execute("CREATE TABLE States (Name VARCHAR(32), Population INT, Capital VARCHAR(32))").unwrap();
//! ```

pub use wsq_common as common;
pub use wsq_core as core;
pub use wsq_engine as engine;
pub use wsq_pump as pump;
pub use wsq_sql as sql;
pub use wsq_storage as storage;
pub use wsq_websim as websim;

/// Convenience re-exports covering the common entry points.
pub mod prelude {
    pub use wsq_common::{DataType, Schema, Tuple, Value};
    pub use wsq_core::{
        BufferMode, DsqExplorer, ExecutionMode, PlacementStrategy, QueryOptions, QueryResult,
        StatementResult, Wsq, WsqConfig,
    };
    pub use wsq_pump::{PumpConfig, ReqPump};
    pub use wsq_websim::{CacheConfig, CacheStats, CorpusConfig, EngineKind, LatencyModel, SimWeb};
}
