//! Minimal `tempfile` stand-in for offline builds: `tempdir()` and
//! [`TempDir`] only. Uniqueness comes from the process id plus an atomic
//! counter; `create_dir` collisions retry with the next counter value.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::{fs, io};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory deleted (recursively) on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh directory under the system temp dir.
    pub fn new() -> io::Result<TempDir> {
        let base = std::env::temp_dir();
        let pid = std::process::id();
        loop {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = base.join(format!("wsq-shimtmp-{pid}-{n}"));
            match fs::create_dir(&path) {
                Ok(()) => return Ok(TempDir { path }),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Create a [`TempDir`] (free-function form used by the workspace).
pub fn tempdir() -> io::Result<TempDir> {
    TempDir::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tempdir_creates_and_cleans_up() {
        let kept_path;
        {
            let d = tempdir().unwrap();
            kept_path = d.path().to_path_buf();
            assert!(kept_path.is_dir());
            fs::write(kept_path.join("f.txt"), b"x").unwrap();
        }
        assert!(!kept_path.exists());
    }

    #[test]
    fn tempdirs_are_distinct() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
