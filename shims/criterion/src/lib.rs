//! Minimal `criterion` stand-in for offline builds.
//!
//! Implements the API subset the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! warmup-then-sample timing loop. Results print as
//! `name ... time: [median mean p95]` lines; there is no HTML report,
//! statistical regression testing, or plotting.
//!
//! Environment knobs:
//! * `WSQ_BENCH_SAMPLE_MS` — per-benchmark measurement budget in
//!   milliseconds (default 300).

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Measurement budget per benchmark.
fn sample_budget() -> Duration {
    std::env::var("WSQ_BENCH_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(300))
}

/// Identifies one benchmark within a group (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` repeatedly until the sample budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: find an iteration count that takes ~1ms.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_nanos() as u64 / calib_iters.max(1);
        let batch = (1_000_000 / per_iter.max(1)).clamp(1, 1_000_000);

        let budget = sample_budget();
        let run_start = Instant::now();
        while run_start.elapsed() < budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / batch as u32);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} time: [no samples]");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let p95 = sorted[(sorted.len() * 95 / 100).min(sorted.len() - 1)];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{name:<50} time: [median {median:?}  mean {mean:?}  p95 {p95:?}]  samples: {}",
            sorted.len()
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Ignored (sampling is time-budgeted in the shim); kept for API parity.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, |b| f(b));
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_one(&name, |b| f(b, input));
        self
    }

    /// End the group (no-op beyond API parity).
    pub fn finish(self) {}
}

fn run_one(name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
    };
    f(&mut b);
    b.report(name);
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Begin a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, |b| f(b));
        self
    }
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        std::env::set_var("WSQ_BENCH_SAMPLE_MS", "30");
        let mut b = Bencher {
            samples: Vec::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(!b.samples.is_empty());
    }

    #[test]
    fn group_api_compiles_and_runs() {
        std::env::set_var("WSQ_BENCH_SAMPLE_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("f", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("p", 3), &3, |b, &n| b.iter(|| n * 2));
        g.finish();
    }
}
