//! Deterministic-schedule model checking for small concurrent protocols,
//! in the style of `loom` / `shuttle` but self-contained (this build
//! environment has no crates.io access — see `shims/README.md`).
//!
//! A model is a closure using [`thread::spawn`], [`sync::Mutex`] and
//! [`sync::Condvar`] from this crate instead of `std`. [`check`] runs the
//! closure repeatedly, each time forcing a different thread interleaving,
//! until every schedule reachable from the model's synchronization points
//! has been explored (depth-first with replay). Real OS threads execute
//! the model, but a central kernel serializes them so exactly one runs at
//! a time; every lock acquisition and condvar wait is a scheduling point.
//!
//! What the checker proves, within its bounds:
//!
//! - **No lost wakeup / deadlock**: if under some schedule every live
//!   thread is blocked, the run panics with the offending schedule.
//! - **No assertion failure**: any `assert!` in the model holds under
//!   every explored schedule (a panic aborts exploration and reports the
//!   decision trace that reached it).
//! - **No livelock**: a run exceeding `max_steps` scheduling decisions
//!   fails.
//!
//! Models must be deterministic apart from scheduling: no time, no
//! randomness, no I/O. Scheduling points are: the start of a spawned
//! thread, every `Mutex::lock` (a preemption opportunity *before*
//! acquiring), every `Condvar::wait` (block + reacquire) and every
//! `JoinHandle::join`. For protocols whose shared state is entirely
//! mutex-protected — the only kind modelled here — context switches at
//! these points reach every observably distinct interleaving.

use std::cell::RefCell;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Upper bound on distinct schedules to explore. If reached, the
    /// returned [`Stats::complete`] is `false`.
    pub max_schedules: usize,
    /// Upper bound on scheduling decisions in a single run (livelock
    /// guard).
    pub max_steps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_schedules: 50_000,
            max_steps: 10_000,
        }
    }
}

/// Outcome of an exploration.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Number of distinct schedules executed.
    pub schedules: usize,
    /// `true` if the schedule tree was exhausted (rather than the
    /// `max_schedules` cap being hit).
    pub complete: bool,
    /// Deepest decision sequence seen.
    pub max_depth: usize,
}

/// Explore every schedule of `model` under the default [`Config`].
/// Panics (with the decision trace) on any assertion failure, deadlock,
/// lost wakeup or livelock.
pub fn check<F>(model: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    check_with(Config::default(), model)
}

/// [`check`] with explicit bounds.
pub fn check_with<F>(config: Config, model: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    let model = Arc::new(model);
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    let mut max_depth = 0usize;
    loop {
        schedules += 1;
        let (mut decisions, failure) = run_once(config, model.clone(), &prefix);
        max_depth = max_depth.max(decisions.len());
        if let Some(msg) = failure {
            panic!(
                "schedcheck failure after {schedules} schedule(s): {msg}\n\
                 decision trace: {:?}",
                decisions.iter().map(|d| d.chosen).collect::<Vec<_>>()
            );
        }
        // Depth-first backtrack: drop exhausted trailing decisions, then
        // advance the deepest one that still has unexplored branches.
        while decisions.last().is_some_and(|d| d.chosen + 1 >= d.options) {
            decisions.pop();
        }
        match decisions.last_mut() {
            None => {
                return Stats {
                    schedules,
                    complete: true,
                    max_depth,
                }
            }
            Some(last) => last.chosen += 1,
        }
        prefix = decisions.iter().map(|d| d.chosen).collect();
        if schedules >= config.max_schedules {
            return Stats {
                schedules,
                complete: false,
                max_depth,
            };
        }
    }
}

/// One scheduling decision: which of `options` runnable threads ran.
#[derive(Debug, Clone, Copy)]
struct Decision {
    chosen: usize,
    options: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    BlockedMutex(usize),
    BlockedCv(usize),
    BlockedJoin(usize),
    Finished,
}

#[derive(Default)]
struct MutexState {
    held_by: Option<usize>,
    waiters: Vec<usize>,
}

#[derive(Default)]
struct CondvarState {
    waiters: VecDeque<usize>,
}

struct KernelState {
    threads: Vec<ThreadState>,
    current: usize,
    steps: usize,
    prefix: Vec<usize>,
    depth: usize,
    decisions: Vec<Decision>,
    mutexes: Vec<MutexState>,
    condvars: Vec<CondvarState>,
    aborting: bool,
    failure: Option<String>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

struct Kernel {
    state: StdMutex<KernelState>,
    cv: StdCondvar,
    max_steps: usize,
}

/// Panic payload used to unwind threads when a run aborts early.
struct AbortToken;

thread_local! {
    static CTX: RefCell<Option<(Arc<Kernel>, usize)>> = const { RefCell::new(None) };
}

fn current_ctx() -> (Arc<Kernel>, usize) {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("schedcheck primitive used outside check()")
    })
}

impl Kernel {
    fn new(prefix: &[usize], max_steps: usize) -> Kernel {
        Kernel {
            state: StdMutex::new(KernelState {
                threads: vec![ThreadState::Runnable],
                current: 0,
                steps: 0,
                prefix: prefix.to_vec(),
                depth: 0,
                decisions: Vec::new(),
                mutexes: Vec::new(),
                condvars: Vec::new(),
                aborting: false,
                failure: None,
                os_handles: Vec::new(),
            }),
            cv: StdCondvar::new(),
            max_steps,
        }
    }

    fn lock_state(&self) -> StdMutexGuard<'_, KernelState> {
        match self.state.lock() {
            Ok(g) => g,
            // A model thread panicked while holding the kernel lock only
            // if the kernel itself is buggy; keep going so the trace
            // surfaces.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Record a scheduling decision among the runnable threads and hand
    /// the turn to the chosen one. Caller must currently hold the state
    /// lock. A run with no runnable thread is either done (all finished)
    /// or a deadlock / lost wakeup.
    fn choose_next(&self, st: &mut KernelState) {
        if st.aborting {
            self.cv.notify_all();
            return;
        }
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == ThreadState::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|s| *s == ThreadState::Finished) {
                self.cv.notify_all();
                return;
            }
            let blocked: Vec<(usize, ThreadState)> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, s)| **s != ThreadState::Finished)
                .map(|(i, s)| (i, *s))
                .collect();
            self.fail(
                st,
                format!("deadlock / lost wakeup: all live threads blocked: {blocked:?}"),
            );
            return;
        }
        let idx = if runnable.len() == 1 {
            0
        } else {
            let d = st.depth;
            st.depth += 1;
            let chosen = if d < st.prefix.len() {
                st.prefix[d].min(runnable.len() - 1)
            } else {
                0
            };
            st.decisions.push(Decision {
                chosen,
                options: runnable.len(),
            });
            chosen
        };
        st.current = runnable[idx];
        st.steps += 1;
        if st.steps > self.max_steps {
            self.fail(
                st,
                format!("step limit {} exceeded (livelock?)", self.max_steps),
            );
        }
        self.cv.notify_all();
    }

    fn fail(&self, st: &mut KernelState, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    /// Block until it is `tid`'s turn (or the run is aborting, in which
    /// case the thread unwinds with [`AbortToken`]).
    fn wait_turn(&self, tid: usize) {
        let mut st = self.lock_state();
        loop {
            if st.aborting {
                st.threads[tid] = ThreadState::Finished;
                self.cv.notify_all();
                drop(st);
                panic::panic_any(AbortToken);
            }
            if st.current == tid && st.threads[tid] == ThreadState::Runnable {
                return;
            }
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// A preemption opportunity: let the scheduler pick any runnable
    /// thread (possibly the caller) before the caller proceeds.
    fn schedule_point(&self, tid: usize) {
        {
            let mut st = self.lock_state();
            if st.aborting {
                st.threads[tid] = ThreadState::Finished;
                self.cv.notify_all();
                drop(st);
                panic::panic_any(AbortToken);
            }
            self.choose_next(&mut st);
        }
        self.wait_turn(tid);
    }

    fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        st.threads.push(ThreadState::Runnable);
        st.threads.len() - 1
    }

    fn register_mutex(&self) -> usize {
        let mut st = self.lock_state();
        st.mutexes.push(MutexState::default());
        st.mutexes.len() - 1
    }

    fn register_condvar(&self) -> usize {
        let mut st = self.lock_state();
        st.condvars.push(CondvarState::default());
        st.condvars.len() - 1
    }

    /// Acquire mutex `mid`, blocking (and yielding the turn) while held.
    fn mutex_lock(&self, tid: usize, mid: usize) {
        self.schedule_point(tid);
        loop {
            {
                let mut st = self.lock_state();
                if st.mutexes[mid].held_by.is_none() {
                    st.mutexes[mid].held_by = Some(tid);
                    return;
                }
                st.mutexes[mid].waiters.push(tid);
                st.threads[tid] = ThreadState::BlockedMutex(mid);
                self.choose_next(&mut st);
            }
            self.wait_turn(tid);
        }
    }

    fn mutex_unlock(&self, tid: usize, mid: usize) {
        let mut st = self.lock_state();
        debug_assert_eq!(st.mutexes[mid].held_by, Some(tid));
        st.mutexes[mid].held_by = None;
        let waiters = std::mem::take(&mut st.mutexes[mid].waiters);
        for w in waiters {
            st.threads[w] = ThreadState::Runnable;
        }
        // Not a decision point: the next lock/wait/join/exit of the
        // caller is, and all shared state is mutex-protected.
        self.cv.notify_all();
    }

    /// Atomically release `mid` and wait on condvar `cid`; reacquire
    /// `mid` after being notified.
    fn condvar_wait(&self, tid: usize, cid: usize, mid: usize) {
        {
            let mut st = self.lock_state();
            st.mutexes[mid].held_by = None;
            let waiters = std::mem::take(&mut st.mutexes[mid].waiters);
            for w in waiters {
                st.threads[w] = ThreadState::Runnable;
            }
            st.condvars[cid].waiters.push_back(tid);
            st.threads[tid] = ThreadState::BlockedCv(cid);
            self.choose_next(&mut st);
        }
        self.wait_turn(tid);
        // Reacquire without the extra pre-acquire preemption point: the
        // wakeup itself was one.
        loop {
            {
                let mut st = self.lock_state();
                if st.mutexes[mid].held_by.is_none() {
                    st.mutexes[mid].held_by = Some(tid);
                    return;
                }
                st.mutexes[mid].waiters.push(tid);
                st.threads[tid] = ThreadState::BlockedMutex(mid);
                self.choose_next(&mut st);
            }
            self.wait_turn(tid);
        }
    }

    /// Wake the longest-waiting thread (deterministic FIFO, mirroring a
    /// fair OS wakeup; the woken thread still contends for the mutex).
    fn notify_one(&self, cid: usize) {
        let mut st = self.lock_state();
        if let Some(w) = st.condvars[cid].waiters.pop_front() {
            st.threads[w] = ThreadState::Runnable;
        }
        self.cv.notify_all();
    }

    fn notify_all(&self, cid: usize) {
        let mut st = self.lock_state();
        while let Some(w) = st.condvars[cid].waiters.pop_front() {
            st.threads[w] = ThreadState::Runnable;
        }
        self.cv.notify_all();
    }

    /// Block until thread `target` finishes.
    fn join_wait(&self, tid: usize, target: usize) {
        loop {
            {
                let mut st = self.lock_state();
                if st.threads[target] == ThreadState::Finished {
                    return;
                }
                st.threads[tid] = ThreadState::BlockedJoin(target);
                self.choose_next(&mut st);
            }
            self.wait_turn(tid);
        }
    }

    /// Mark `tid` finished; wake joiners; pass the turn on (or record the
    /// panic and abort the run).
    fn exit(&self, tid: usize, panic_msg: Option<String>) {
        let mut st = self.lock_state();
        st.threads[tid] = ThreadState::Finished;
        for i in 0..st.threads.len() {
            if st.threads[i] == ThreadState::BlockedJoin(tid) {
                st.threads[i] = ThreadState::Runnable;
            }
        }
        if let Some(msg) = panic_msg {
            self.fail(&mut st, format!("model thread {tid} panicked: {msg}"));
            return;
        }
        self.choose_next(&mut st);
    }

    /// Quiet exit on [`AbortToken`] unwind.
    fn finish_quiet(&self, tid: usize) {
        let mut st = self.lock_state();
        st.threads[tid] = ThreadState::Finished;
        self.cv.notify_all();
    }

    /// Checker side: wait until every model thread has finished.
    fn wait_done(&self) {
        let mut st = self.lock_state();
        while !st.threads.iter().all(|s| *s == ThreadState::Finished) {
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }
}

fn payload_to_string(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run a model thread body under the kernel: wait for the first turn,
/// run, and route the exit (normal, model panic, abort unwind).
fn run_thread_body<T: Send + 'static>(
    kernel: &Arc<Kernel>,
    tid: usize,
    out: &Arc<StdMutex<Option<T>>>,
    body: impl FnOnce() -> T,
) {
    CTX.with(|c| *c.borrow_mut() = Some((kernel.clone(), tid)));
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        kernel.wait_turn(tid);
        body()
    }));
    CTX.with(|c| *c.borrow_mut() = None);
    match result {
        Ok(v) => {
            if let Ok(mut slot) = out.lock() {
                *slot = Some(v);
            }
            kernel.exit(tid, None);
        }
        Err(p) if p.is::<AbortToken>() => kernel.finish_quiet(tid),
        Err(p) => kernel.exit(tid, Some(payload_to_string(p))),
    }
}

fn run_once<F>(config: Config, model: Arc<F>, prefix: &[usize]) -> (Vec<Decision>, Option<String>)
where
    F: Fn() + Send + Sync + 'static,
{
    let kernel = Arc::new(Kernel::new(prefix, config.max_steps));
    let k = kernel.clone();
    let out: Arc<StdMutex<Option<()>>> = Arc::new(StdMutex::new(None));
    let o = out.clone();
    let root = std::thread::spawn(move || run_thread_body(&k, 0, &o, move || model()));
    kernel.wait_done();
    let _ = root.join();
    let handles = {
        let mut st = kernel.lock_state();
        std::mem::take(&mut st.os_handles)
    };
    for h in handles {
        let _ = h.join();
    }
    let st = kernel.lock_state();
    (st.decisions.clone(), st.failure.clone())
}

/// Explicit preemption point (rarely needed; locks already preempt).
pub fn yield_now() {
    let (kernel, tid) = current_ctx();
    kernel.schedule_point(tid);
}

/// Threads under the checker.
pub mod thread {
    use super::*;

    /// Handle to a model thread; [`join`](JoinHandle::join) is a
    /// scheduling point.
    pub struct JoinHandle<T> {
        tid: usize,
        kernel: Arc<Kernel>,
        result: Arc<StdMutex<Option<T>>>,
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread and return its value. A panic in the
        /// target aborts the whole run, so this always yields the value.
        pub fn join(self) -> T {
            let (_, tid) = current_ctx();
            self.kernel.join_wait(tid, self.tid);
            let v = match self.result.lock() {
                Ok(mut g) => g.take(),
                Err(p) => p.into_inner().take(),
            };
            match v {
                Some(v) => v,
                // Target finished without a value: the run is aborting.
                None => panic::panic_any(AbortToken),
            }
        }
    }

    /// Spawn a model thread. It starts runnable but only executes when
    /// the scheduler picks it.
    pub fn spawn<T, F>(f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (kernel, _) = current_ctx();
        let tid = kernel.register_thread();
        let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
        let k = kernel.clone();
        let r = result.clone();
        let os = std::thread::spawn(move || run_thread_body(&k, tid, &r, f));
        kernel.lock_state().os_handles.push(os);
        JoinHandle {
            tid,
            kernel,
            result,
        }
    }
}

/// Synchronization primitives under the checker.
pub mod sync {
    use super::*;
    use std::ops::{Deref, DerefMut};

    /// A mutex whose acquisition order the checker controls.
    pub struct Mutex<T> {
        mid: usize,
        kernel: Arc<Kernel>,
        cell: UnsafeCell<T>,
    }

    // Exactly one model thread runs at a time and the kernel enforces
    // mutual exclusion on `cell`, so cross-thread access is serialized.
    unsafe impl<T: Send> Send for Mutex<T> {}
    unsafe impl<T: Send> Sync for Mutex<T> {}

    /// RAII guard; dropping releases the lock (not a scheduling point).
    pub struct MutexGuard<'a, T> {
        mx: &'a Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Create a mutex registered with the current run's kernel; only
        /// valid inside [`check`](super::check()).
        #[allow(clippy::new_without_default)]
        pub fn new(value: T) -> Mutex<T> {
            let (kernel, _) = current_ctx();
            let mid = kernel.register_mutex();
            Mutex {
                mid,
                kernel,
                cell: UnsafeCell::new(value),
            }
        }

        /// Acquire (a scheduling point: the checker may run any other
        /// thread first).
        pub fn lock(&self) -> MutexGuard<'_, T> {
            let (_, tid) = current_ctx();
            self.kernel.mutex_lock(tid, self.mid);
            MutexGuard { mx: self }
        }
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            unsafe { &*self.mx.cell.get() }
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            unsafe { &mut *self.mx.cell.get() }
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            let (_, tid) = current_ctx();
            self.mx.kernel.mutex_unlock(tid, self.mx.mid);
        }
    }

    /// A condition variable with deterministic FIFO wakeup.
    pub struct Condvar {
        cid: usize,
        kernel: Arc<Kernel>,
    }

    impl Condvar {
        /// Create a condvar registered with the current run's kernel.
        #[allow(clippy::new_without_default)]
        pub fn new() -> Condvar {
            let (kernel, _) = current_ctx();
            let cid = kernel.register_condvar();
            Condvar { cid, kernel }
        }

        /// Release the guard's mutex, block until notified, reacquire.
        /// No spurious wakeups; callers should still loop on their
        /// condition as with `std`.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            let (_, tid) = current_ctx();
            let mx = guard.mx;
            // The kernel releases the mutex itself; skip the guard's
            // Drop-unlock.
            std::mem::forget(guard);
            self.kernel.condvar_wait(tid, self.cid, mx.mid);
            MutexGuard { mx }
        }

        /// Wake the longest-waiting thread, if any.
        pub fn notify_one(&self) {
            self.kernel.notify_one(self.cid);
        }

        /// Wake all waiting threads.
        pub fn notify_all(&self) {
            self.kernel.notify_all(self.cid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::{Condvar, Mutex};
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc as StdArc;

    #[test]
    fn explores_multiple_schedules_and_preserves_mutex_atomicity() {
        let stats = check(|| {
            let counter = StdArc::new(Mutex::new(0u32));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let c = counter.clone();
                handles.push(thread::spawn(move || {
                    let mut g = c.lock();
                    let v = *g;
                    // The guard is held across the read-modify-write, so
                    // every schedule must still total 2.
                    *g = v + 1;
                }));
            }
            for h in handles {
                h.join();
            }
            assert_eq!(*counter.lock(), 2);
        });
        assert!(stats.complete, "exploration hit the schedule cap");
        assert!(stats.schedules >= 2, "expected >1 interleaving");
    }

    #[test]
    fn covers_both_orders_of_two_racing_threads() {
        // Record which thread got the lock first across all schedules;
        // a real exploration must see both orders.
        let first_a = StdArc::new(AtomicUsize::new(0));
        let first_b = StdArc::new(AtomicUsize::new(0));
        let (fa, fb) = (first_a.clone(), first_b.clone());
        let stats = check(move || {
            let slot = StdArc::new(Mutex::new(None::<&'static str>));
            let s1 = slot.clone();
            let s2 = slot.clone();
            let t1 = thread::spawn(move || {
                let mut g = s1.lock();
                if g.is_none() {
                    *g = Some("a");
                }
            });
            let t2 = thread::spawn(move || {
                let mut g = s2.lock();
                if g.is_none() {
                    *g = Some("b");
                }
            });
            t1.join();
            t2.join();
            match *slot.lock() {
                Some("a") => fa.fetch_add(1, Ordering::Relaxed),
                Some("b") => fb.fetch_add(1, Ordering::Relaxed),
                _ => panic!("slot never filled"),
            };
        });
        assert!(stats.complete);
        assert!(first_a.load(Ordering::Relaxed) > 0, "never saw a-first");
        assert!(first_b.load(Ordering::Relaxed) > 0, "never saw b-first");
    }

    #[test]
    fn condvar_handshake_completes_under_all_schedules() {
        let stats = check(|| {
            let flag = StdArc::new((Mutex::new(false), Condvar::new()));
            let f = flag.clone();
            let producer = thread::spawn(move || {
                let (m, cv) = &*f;
                *m.lock() = true;
                cv.notify_one();
            });
            let (m, cv) = &*flag;
            let mut g = m.lock();
            while !*g {
                g = cv.wait(g);
            }
            drop(g);
            producer.join();
        });
        assert!(stats.complete);
    }

    #[test]
    #[should_panic(expected = "deadlock / lost wakeup")]
    fn detects_a_seeded_lost_wakeup() {
        // Classic bug: test-then-wait without holding the lock across
        // the test. If the producer's notify lands between the consumer's
        // check and its wait, the wakeup is lost. Some schedule must
        // trigger it, and the checker must report it.
        check(|| {
            let flag = StdArc::new((Mutex::new(false), Condvar::new()));
            let f = flag.clone();
            let _producer = thread::spawn(move || {
                let (m, cv) = &*f;
                *m.lock() = true;
                cv.notify_one();
            });
            let (m, cv) = &*flag;
            let ready = *m.lock(); // guard dropped: race window opens
            if !ready {
                let g = m.lock();
                let _g = cv.wait(g); // may wait forever
            }
        });
    }

    #[test]
    #[should_panic(expected = "model thread")]
    fn reports_assertion_failures_with_a_trace() {
        check(|| {
            let v = StdArc::new(Mutex::new(0u32));
            let v2 = v.clone();
            let t = thread::spawn(move || {
                *v2.lock() += 1;
            });
            // Racy read: under the child-first schedule this sees 1 and
            // the assert below fires.
            let seen = *v.lock();
            t.join();
            assert_eq!(seen, 0, "child ran before parent read");
        });
    }
}
