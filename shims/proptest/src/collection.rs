//! Collection strategies (subset: `vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with length drawn from a range.
#[derive(Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.start < self.size.end, "empty vec size range");
        let span = (self.size.end - self.size.start) as u64;
        let n = self.size.start + rng.below(span) as usize;
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// `prop::collection::vec(elem, len_range)`.
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, size }
}
