//! Minimal `proptest` stand-in for offline builds.
//!
//! Implements the API subset the workspace's property tests use:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_flat_map` / `boxed`, range and regex-subset string strategies,
//! tuple composition, `Just`, `any::<T>()`, `prop::collection::vec`,
//! the `proptest!` / `prop_oneof!` / `prop_assert!` / `prop_assert_eq!`
//! macros, and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed, there is **no shrinking**, and
//! `*.proptest-regressions` files are ignored. A failing case panics with
//! its case number; re-running reproduces it (generation is a pure
//! function of the test name and case index).

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Re-export hub mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Mirrors `proptest::prop` (module-style access used by the tests).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Define property tests. Each function runs `config.cases` times with
/// inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest '{}' case {} failed: {}",
                            stringify!($name), case, e
                        );
                    }
                }
            }
        )*
    };
}

/// Choose among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Assert inside a property body; failure reports the case, not a panic
/// backtrace into generated code.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)+)
        );
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}
