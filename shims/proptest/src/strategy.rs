//! The `Strategy` trait and the combinators/primitives the workspace uses.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a pure generator over a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Reject values failing `pred` (regenerating; gives up after 1000
    /// consecutive rejections).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Generate an intermediate value, then generate from the strategy it
    /// maps to.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase into a cloneable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe generation, for [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Weighted choice among boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for OneOf<T> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> OneOf<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        OneOf { arms, total }
    }
}

impl<T: 'static> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.below(self.total);
        for (w, s) in &self.arms {
            if roll < *w as u64 {
                return s.generate(rng);
            }
            roll -= *w as u64;
        }
        unreachable!("roll exceeded total weight")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Random bit patterns: exercises negatives, subnormals, infinities
        // and NaN (tests filter what they cannot accept).
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly printable ASCII, occasionally any scalar value.
        if rng.below(8) == 0 {
            char::from_u32(rng.next_u64() as u32 % 0xD800).unwrap_or('\u{FFFD}')
        } else {
            (0x20u8 + rng.below(0x5F) as u8) as char
        }
    }
}

/// The canonical strategy for `A` (`any::<A>()`).
pub struct Any<A>(PhantomData<A>);

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// Canonical strategy constructor.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------
// Regex-subset string strategies: `"[a-z ]{0,12}"` etc.
// ---------------------------------------------------------------------

/// One parsed regex atom.
#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any printable ASCII character.
    AnyChar,
    /// A literal character.
    Literal(char),
    /// `[...]` — choice over the listed characters.
    Class(Vec<char>),
}

/// An atom plus its repetition range.
#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Parse the supported regex subset: literals, `.`, `[...]` classes with
/// ranges, and `{m,n}` / `{n}` / `*` / `+` / `?` quantifiers.
fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::AnyChar
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in {pattern:?}");
                i += 1; // consume ']'
                Atom::Class(set)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in {pattern:?}");
                let c = chars[i];
                i += 1;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Quantifier?
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated quantifier")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad quantifier"),
                            hi.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n: u32 = body.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn generate_string(pieces: &[Piece], rng: &mut TestRng) -> String {
    let mut out = String::new();
    for p in pieces {
        let n = p.min + rng.below((p.max - p.min + 1) as u64) as u32;
        for _ in 0..n {
            match &p.atom {
                Atom::AnyChar => out.push((0x20u8 + rng.below(0x5F) as u8) as char),
                Atom::Literal(c) => out.push(*c),
                Atom::Class(set) => {
                    assert!(!set.is_empty(), "empty character class");
                    out.push(set[rng.below(set.len() as u64) as usize]);
                }
            }
        }
    }
    out
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_string(&parse_pattern(self), rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_string(&parse_pattern(self), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (0..10usize).generate(&mut r);
            assert!(v < 10);
            let (a, b) = ((0i32..5), (10u64..20)).generate(&mut r);
            assert!((0..5).contains(&a) && (10..20).contains(&b));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,6}".generate(&mut r);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
            let t = ".{0,12}".generate(&mut r);
            assert!(t.len() <= 12);
        }
    }

    #[test]
    fn oneof_respects_weights_roughly() {
        let s = crate::prop_oneof![
            9 => Just(1u32),
            1 => Just(2u32),
        ];
        let mut r = rng();
        let ones = (0..1000).filter(|_| s.generate(&mut r) == 1).count();
        assert!(ones > 800, "ones={ones}");
    }

    #[test]
    fn filter_and_flat_map_compose() {
        let mut r = rng();
        let s = (0..100u32).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
        let f = (1..4usize).prop_flat_map(|n| crate::collection::vec(0..10u8, n..n + 1));
        for _ in 0..50 {
            let v = f.generate(&mut r);
            assert!((1..4).contains(&v.len()));
        }
    }
}
