//! Deterministic RNG, config, and failure type for the shim runner.

use std::fmt;

/// Per-test configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(64),
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases. As in real proptest, the
    /// `PROPTEST_CASES` environment variable overrides the in-source
    /// count — CI's nightly blitz uses it to multiply coverage without
    /// touching the tests.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

/// The `PROPTEST_CASES` override, if set and parseable.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// SplitMix64-based generator; deterministic per test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (stable across runs and platforms).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name: stable, unlike `DefaultHasher`.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proptest_cases_env_overrides_source_counts() {
        // Set/remove within one test: no other test in this shim reads
        // the variable, so there is no cross-test race.
        std::env::set_var("PROPTEST_CASES", "400");
        assert_eq!(ProptestConfig::with_cases(40).cases, 400);
        assert_eq!(ProptestConfig::default().cases, 400);
        std::env::set_var("PROPTEST_CASES", "not-a-number");
        assert_eq!(ProptestConfig::with_cases(40).cases, 40);
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(ProptestConfig::with_cases(40).cases, 40);
        assert_eq!(ProptestConfig::default().cases, 64);
    }
}
