//! Minimal `parking_lot` stand-in backed by `std::sync`.
//!
//! The build container has no crates.io access, so the workspace patches
//! `parking_lot` to this shim (see the root `Cargo.toml`). Only the API
//! surface the workspace uses is provided: `Mutex`, `RwLock`, and
//! `Condvar` with non-poisoning guards (a poisoned std lock is recovered
//! transparently, matching parking_lot's no-poisoning semantics).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True iff the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, atomically releasing the guard's lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.0.take().expect("guard present");
        let (g, res) = self
            .0
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter. Returns whether a thread may have been woken
    /// (std does not report this; `true` keeps callers conservative).
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake all waiters. parking_lot returns the count; std cannot, so
    /// this reports 0 — no workspace caller reads it.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut flag = m.lock();
            *flag = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut flag = m.lock();
        while !*flag {
            cv.wait(&mut flag);
        }
        t.join().unwrap();
        assert!(*flag);
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
