//! Minimal `rand` stand-in for offline builds.
//!
//! Provides `StdRng`, `SeedableRng`, and the `Rng` helpers the workspace
//! uses (`gen_range` over integer/float ranges, `gen_bool`). The generator
//! is xoshiro256++ seeded via SplitMix64 — deterministic, fast, and easily
//! good enough for synthetic-corpus generation. It is NOT the same stream
//! as real rand 0.8's `StdRng` (ChaCha12); corpus content differs across
//! the shim/real boundary, but all corpus *shape* guarantees are carried
//! by deterministic apportionment, not the stream (see
//! `wsq-websim::corpus`).

use std::ops::Range;

/// Core entropy source: 64 random bits at a time.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// SplitMix64: seeds the main generator and serves as a fallback stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }
}
