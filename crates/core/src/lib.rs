//! The WSQ/DSQ public facade.
//!
//! [`Wsq`] wires together every subsystem — the Redbase-style database, the
//! simulated Web with its two engine personalities, the ReqPump, and the
//! query engine — behind the interface a user of the paper's system would
//! expect:
//!
//! ```
//! use wsq_core::{Wsq, WsqConfig};
//!
//! let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
//! wsq.load_reference_data().unwrap();
//! let result = wsq
//!     .query("SELECT Name, Count FROM States, WebCount WHERE Name = T1 \
//!             ORDER BY Count DESC, Name LIMIT 3")
//!     .unwrap();
//! assert_eq!(result.rows[0].get(0).as_str().unwrap(), "California");
//! ```
//!
//! [`DsqExplorer`] implements the DSQ direction (database-supported Web
//! queries): correlating a Web phrase with database vocabulary.

pub mod dsq;

pub use dsq::{Correlation, DsqExplorer, PairCorrelation};
pub use wsq_engine::db::{QueryResult, StatementResult};
pub use wsq_engine::plan::{BufferMode, ExecutionMode, PlacementStrategy};
pub use wsq_engine::QueryOptions;

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use wsq_common::{Result, Tuple, Value, WsqError};
use wsq_engine::db::Database;
use wsq_engine::engines::EngineRegistry;
use wsq_pump::{PumpConfig, ReqPump, SearchService};
use wsq_websim::{CacheConfig, CachedService, CorpusConfig, EngineKind, LatencyModel, SimWeb};

/// Configuration for a [`Wsq`] instance.
#[derive(Clone)]
pub struct WsqConfig {
    /// Synthetic Web parameters.
    pub corpus: CorpusConfig,
    /// Latency model applied to both simulated engines.
    pub latency: LatencyModel,
    /// ReqPump configuration (concurrency limits, dispatch mode).
    pub pump: PumpConfig,
    /// Default query execution options.
    pub query: QueryOptions,
    /// Wrap engines in a memoizing result cache (HN96).
    pub cache: bool,
    /// Tuning for the result cache (shard count, LRU capacity, TTL);
    /// only consulted when `cache` is set.
    pub cache_tuning: CacheConfig,
}

impl Default for WsqConfig {
    fn default() -> Self {
        WsqConfig {
            corpus: CorpusConfig::default(),
            latency: LatencyModel::Zero,
            pump: PumpConfig::default(),
            query: QueryOptions::default(),
            cache: false,
            cache_tuning: CacheConfig::default(),
        }
    }
}

impl WsqConfig {
    /// Small corpus, zero latency: for tests and quick experimentation.
    pub fn fast() -> Self {
        WsqConfig {
            corpus: CorpusConfig::small(),
            ..Self::default()
        }
    }

    /// Paper-like conditions: full corpus and noticeable per-request
    /// latency (scaled down from 1999's ~1s so experiments finish).
    pub fn paper_like() -> Self {
        WsqConfig {
            latency: LatencyModel::Jitter {
                base: std::time::Duration::from_millis(25),
                jitter: std::time::Duration::from_millis(10),
            },
            ..Self::default()
        }
    }
}

/// A complete WSQ/DSQ instance: database + engines + pump.
pub struct Wsq {
    db: Database,
    engines: EngineRegistry,
    pump: Arc<ReqPump>,
    opts: QueryOptions,
    web: SimWeb,
    caches: HashMap<String, Arc<CachedService>>,
}

impl Wsq {
    fn build(db: Database, config: WsqConfig) -> Result<Wsq> {
        // Debug builds re-check every asyncified plan against the
        // placeholder-dataflow verifier (see `wsq_engine::verify_gate`).
        wsq_analyze::install_plan_gate();
        let web = SimWeb::build(config.corpus.clone());
        let pump = ReqPump::new(config.pump.clone());
        let mut wsq = Wsq {
            db,
            engines: EngineRegistry::new(),
            pump,
            opts: config.query,
            web,
            caches: HashMap::new(),
        };
        // The paper's two engines: AltaVista (NEAR) and Google (AND).
        let av = wsq
            .web
            .engine_with_latency(EngineKind::AltaVista, config.latency);
        let google = wsq
            .web
            .engine_with_latency(EngineKind::Google, config.latency);
        let tuning = config.cache.then_some(&config.cache_tuning);
        wsq.register_engine_internal("AV", av, true, tuning);
        wsq.register_engine_internal("Google", google, false, tuning);
        Ok(wsq)
    }

    /// An in-memory instance.
    pub fn open_in_memory(config: WsqConfig) -> Result<Wsq> {
        Self::build(Database::open_in_memory()?, config)
    }

    /// A disk-backed instance rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>, config: WsqConfig) -> Result<Wsq> {
        Self::build(Database::open(dir)?, config)
    }

    fn register_engine_internal(
        &mut self,
        name: &str,
        service: Arc<dyn SearchService>,
        supports_near: bool,
        cache: Option<&CacheConfig>,
    ) {
        let service: Arc<dyn SearchService> = if let Some(tuning) = cache {
            let cached = CachedService::with_config(service, tuning.clone());
            self.caches.insert(name.to_string(), cached.clone());
            cached
        } else {
            service
        };
        self.pump.register_service(name, service.clone());
        self.engines.register(name, service, supports_near);
    }

    /// Register an additional (or replacement) search engine. It becomes
    /// addressable as `WebCount_<name>` / `WebPages_<name>`.
    pub fn register_engine(
        &mut self,
        name: &str,
        service: Arc<dyn SearchService>,
        supports_near: bool,
    ) {
        self.register_engine_internal(name, service, supports_near, None);
    }

    /// Execute a `;`-separated SQL script.
    pub fn execute(&mut self, sql: &str) -> Result<Vec<StatementResult>> {
        let opts = self.opts;
        self.db.run_sql(sql, &self.engines, &self.pump, opts)
    }

    /// Execute a single SELECT and return its rows.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult> {
        let mut results = self.execute(sql)?;
        if results.len() != 1 {
            return Err(WsqError::Plan(format!(
                "expected one statement, got {}",
                results.len()
            )));
        }
        match results.remove(0) {
            StatementResult::Rows(r) => Ok(r),
            StatementResult::Affected(_) => {
                Err(WsqError::Plan("statement did not produce rows".to_string()))
            }
        }
    }

    /// Execute a SELECT with explicit options (overriding the defaults).
    pub fn query_with(&mut self, sql: &str, opts: QueryOptions) -> Result<QueryResult> {
        let saved = self.opts;
        self.opts = opts;
        let r = self.query(sql);
        self.opts = saved;
        r
    }

    /// Open a streaming cursor over a SELECT (rows on demand; combine with
    /// [`BufferMode::Streaming`] for early first rows).
    pub fn query_cursor(&mut self, sql: &str) -> Result<wsq_engine::db::Cursor> {
        match wsq_sql::parse_one(sql)? {
            wsq_sql::Statement::Select(sel) => {
                self.db
                    .open_query(&sel, &self.engines, &self.pump, self.opts)
            }
            _ => Err(WsqError::Plan("cursor requires a SELECT".to_string())),
        }
    }

    /// EXPLAIN ANALYZE: run a SELECT and return its rows plus a
    /// per-operator runtime report.
    pub fn analyze(&mut self, sql: &str) -> Result<(QueryResult, String)> {
        match wsq_sql::parse_one(sql)? {
            wsq_sql::Statement::Select(sel) => {
                let before = self.cache_stats();
                let (result, mut report) =
                    self.db
                        .analyze_query(&sel, &self.engines, &self.pump, self.opts)?;
                // Append per-engine cache deltas after the pump footer.
                let mut engines: Vec<&String> = self.caches.keys().collect();
                engines.sort();
                for engine in engines {
                    let now = self.caches[engine].stats();
                    let b = before.get(engine).copied().unwrap_or_default();
                    report.push_str(&wsq_engine::exec::instrument::counters_line(
                        &format!("cache[{engine}]"),
                        &[
                            ("hits", now.hits - b.hits),
                            ("misses", now.misses - b.misses),
                            ("coalesced", now.coalesced - b.coalesced),
                            ("evictions", now.evictions - b.evictions),
                            ("expirations", now.expirations - b.expirations),
                        ],
                    ));
                }
                // Static-verification verdict for the executed plan
                // (skipped when the raw statement cannot be planned
                // stand-alone, e.g. unresolved subqueries).
                if let Ok(plan) = self.db.plan_query(&sel, &self.engines, self.opts) {
                    report.push_str(&verify_line(&plan, self.opts.mode));
                }
                Ok((result, report))
            }
            _ => Err(WsqError::Plan("ANALYZE requires a SELECT".to_string())),
        }
    }

    /// EXPLAIN a SELECT under the current options.
    pub fn explain(&self, sql: &str) -> Result<String> {
        self.db.explain(sql, &self.engines, self.opts)
    }

    /// EXPLAIN under explicit options.
    pub fn explain_with(&self, sql: &str, opts: QueryOptions) -> Result<String> {
        self.db.explain(sql, &self.engines, opts)
    }

    /// EXPLAIN VERIFY: the plan text plus the placeholder-dataflow
    /// verifier's verdict on it (node/scan/ReqSync counts on success, the
    /// full violation list on failure).
    pub fn explain_verify(&self, sql: &str) -> Result<String> {
        match wsq_sql::parse_one(sql)? {
            wsq_sql::Statement::Select(sel) => {
                let plan = self.db.plan_query(&sel, &self.engines, self.opts)?;
                let mut out = plan.display();
                out.push_str(&verify_line(&plan, self.opts.mode));
                Ok(out)
            }
            _ => Err(WsqError::Plan(
                "EXPLAIN VERIFY requires a SELECT".to_string(),
            )),
        }
    }

    /// Default query options (mutable).
    pub fn options_mut(&mut self) -> &mut QueryOptions {
        &mut self.opts
    }

    /// The request pump.
    pub fn pump(&self) -> &Arc<ReqPump> {
        &self.pump
    }

    /// The engine registry.
    pub fn engines(&self) -> &EngineRegistry {
        &self.engines
    }

    /// The simulated Web behind the default engines.
    pub fn web(&self) -> &SimWeb {
        &self.web
    }

    /// Direct database access.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Direct mutable database access.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Result-cache statistics per engine (empty unless `cache` was set).
    pub fn cache_stats(&self) -> HashMap<String, wsq_websim::CacheStats> {
        self.caches
            .iter()
            .map(|(k, v)| (k.clone(), v.stats()))
            .collect()
    }

    /// Drop all cached search results (the paper's two-hour cooldown, in
    /// one call).
    pub fn clear_caches(&self) {
        for c in self.caches.values() {
            c.clear();
        }
    }

    /// Distinct non-null string values of `table.column` (DSQ vocabulary
    /// extraction).
    pub fn column_values(&mut self, table: &str, column: &str) -> Result<Vec<String>> {
        let r = self.query(&format!("SELECT DISTINCT {column} FROM {table}"))?;
        Ok(r.rows
            .iter()
            .filter_map(|t| t.get(0).as_str().ok().map(str::to_string))
            .collect())
    }

    /// Create and populate the paper's reference tables: `States(Name,
    /// Population, Capital)`, `Sigs(Name)`, `CSFields(Name)`, and
    /// `Movies(Title)`.
    pub fn load_reference_data(&mut self) -> Result<()> {
        use wsq_websim::data;
        self.execute(
            "CREATE TABLE States (Name VARCHAR(32), Population INT, Capital VARCHAR(32))",
        )?;
        let rows: Vec<Tuple> = data::STATES
            .iter()
            .map(|s| {
                Tuple::new(vec![
                    Value::from(s.name),
                    Value::Int(s.population),
                    Value::from(s.capital),
                ])
            })
            .collect();
        self.db.insert("States", &rows)?;

        self.execute("CREATE TABLE Sigs (Name VARCHAR(16))")?;
        let rows: Vec<Tuple> = data::SIGS
            .iter()
            .map(|(n, _)| Tuple::new(vec![Value::from(*n)]))
            .collect();
        self.db.insert("Sigs", &rows)?;

        self.execute("CREATE TABLE CSFields (Name VARCHAR(32))")?;
        let rows: Vec<Tuple> = data::CS_FIELDS
            .iter()
            .map(|(n, _)| Tuple::new(vec![Value::from(*n)]))
            .collect();
        self.db.insert("CSFields", &rows)?;

        self.execute("CREATE TABLE Movies (Title VARCHAR(40))")?;
        let rows: Vec<Tuple> = data::MOVIES
            .iter()
            .map(|(n, _)| Tuple::new(vec![Value::from(*n)]))
            .collect();
        self.db.insert("Movies", &rows)?;
        Ok(())
    }
}

/// One report line with the verifier's verdict on `plan` under `mode`
/// (synchronous plans may contain `EVScan`s; asynchronous ones may not).
fn verify_line(plan: &wsq_engine::plan::PhysPlan, mode: ExecutionMode) -> String {
    let verdict = match mode {
        ExecutionMode::Asynchronous => wsq_analyze::verify_async(plan),
        _ => wsq_analyze::verify(plan),
    };
    match verdict {
        Ok(report) => format!("-- verify: ok ({report})\n"),
        Err(e) => format!("-- verify: FAILED: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_end_to_end() {
        let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
        wsq.load_reference_data().unwrap();
        assert_eq!(wsq.db().row_count("States").unwrap(), 50);
        assert_eq!(wsq.db().row_count("Sigs").unwrap(), 37);

        let r = wsq
            .query(
                "SELECT Name, Count FROM States, WebCount WHERE Name = T1 \
                 ORDER BY Count DESC, Name LIMIT 2",
            )
            .unwrap();
        assert_eq!(r.rows[0].get(0).as_str().unwrap(), "California");
        assert_eq!(r.rows[1].get(0).as_str().unwrap(), "Washington");

        // EXPLAIN shows asynchronous operators by default.
        let plan = wsq
            .explain("SELECT Count FROM WebCount WHERE T1 = 'Texas'")
            .unwrap();
        assert!(plan.contains("AEVScan"));
        assert!(plan.contains("ReqSync"));
        assert_eq!(wsq.pump().live_calls(), 0);
    }

    #[test]
    fn query_with_overrides_options_temporarily() {
        let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
        wsq.load_reference_data().unwrap();
        let sync = QueryOptions {
            mode: ExecutionMode::Synchronous,
            ..Default::default()
        };
        let r = wsq
            .query_with("SELECT Count FROM WebCount WHERE T1 = 'Texas'", sync)
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        // Default options restored.
        let plan = wsq
            .explain("SELECT Count FROM WebCount WHERE T1 = 'Texas'")
            .unwrap();
        assert!(plan.contains("AEVScan"));
    }

    #[test]
    fn analyze_reports_cache_counters_when_caching() {
        let config = WsqConfig {
            cache: true,
            ..WsqConfig::fast()
        };
        let mut wsq = Wsq::open_in_memory(config).unwrap();
        wsq.load_reference_data().unwrap();
        let sql = "SELECT Count FROM WebCount WHERE T1 = 'Texas'";
        wsq.query(sql).unwrap();
        let (_, report) = wsq.analyze(sql).unwrap();
        let av_line = report
            .lines()
            .find(|l| l.starts_with("-- cache[AV]:"))
            .unwrap_or_else(|| panic!("no AV cache footer in:\n{report}"));
        // The first query populated the cache; the analyzed run hit it.
        assert!(av_line.contains("hits=1"), "{av_line}");
        assert!(av_line.contains("misses=0"), "{av_line}");
    }

    #[test]
    fn cache_dedupes_repeated_searches() {
        let mut config = WsqConfig::fast();
        config.cache = true;
        let mut wsq = Wsq::open_in_memory(config).unwrap();
        wsq.load_reference_data().unwrap();
        wsq.query("SELECT Count FROM WebCount WHERE T1 = 'Utah'")
            .unwrap();
        wsq.query("SELECT Count FROM WebCount WHERE T1 = 'Utah'")
            .unwrap();
        let stats = wsq.cache_stats();
        let av = stats.get("AV").unwrap();
        assert_eq!(av.misses, 1);
        assert_eq!(av.hits, 1);
        wsq.clear_caches();
        wsq.query("SELECT Count FROM WebCount WHERE T1 = 'Utah'")
            .unwrap();
        assert_eq!(wsq.cache_stats().get("AV").unwrap().misses, 2);
    }

    #[test]
    fn column_values_extracts_vocabulary() {
        let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
        wsq.load_reference_data().unwrap();
        let movies = wsq.column_values("Movies", "Title").unwrap();
        assert_eq!(movies.len(), 20);
        assert!(movies.contains(&"Jaws".to_string()));
    }

    #[test]
    fn analyze_reports_operator_stats() {
        let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
        wsq.load_reference_data().unwrap();
        let (result, report) = wsq
            .analyze(
                "SELECT Name, Count FROM States, WebCount WHERE Name = T1 \
                 ORDER BY Count DESC, Name LIMIT 5",
            )
            .unwrap();
        assert_eq!(result.rows.len(), 5);
        // The report mirrors the plan tree with counters.
        assert!(report.contains("Limit: 5"), "{report}");
        assert!(report.contains("ReqSync"), "{report}");
        assert!(report.contains("Scan: States"), "{report}");
        // The scan produced all 50 states; the limit only 5.
        let scan_line = report.lines().find(|l| l.contains("Scan: States")).unwrap();
        assert!(scan_line.contains("rows=50"), "{scan_line}");
        let limit_line = report.lines().find(|l| l.contains("Limit: 5")).unwrap();
        assert!(limit_line.contains("rows=5"), "{limit_line}");
        // The AEVScan re-opened once per state.
        let aev_line = report.lines().find(|l| l.contains("AEVScan")).unwrap();
        assert!(aev_line.contains("opens=50"), "{aev_line}");
        // Pump counters are appended as a footer.
        let pump_line = report.lines().find(|l| l.starts_with("-- pump:")).unwrap();
        assert!(pump_line.contains("registered=50"), "{pump_line}");
        assert!(pump_line.contains("launched=50"), "{pump_line}");
        assert!(wsq.analyze("CREATE TABLE X (a INT)").is_err());
        assert_eq!(wsq.pump().live_calls(), 0);
    }

    #[test]
    fn explain_verify_reports_verdict() {
        let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
        wsq.load_reference_data().unwrap();
        let out = wsq
            .explain_verify(
                "SELECT Name, Count FROM States, WebCount WHERE Name = T1 \
                 ORDER BY Count DESC LIMIT 3",
            )
            .unwrap();
        assert!(out.contains("AEVScan"), "{out}");
        assert!(out.contains("-- verify: ok"), "{out}");
        assert!(out.contains("ReqSync(s)"), "{out}");

        // Synchronous plans verify too (EVScans are legitimate there).
        wsq.options_mut().mode = ExecutionMode::Synchronous;
        let out = wsq
            .explain_verify("SELECT Count FROM WebCount WHERE T1 = 'Texas'")
            .unwrap();
        assert!(out.contains("EVScan"), "{out}");
        assert!(out.contains("-- verify: ok"), "{out}");

        assert!(wsq.explain_verify("CREATE TABLE X (a INT)").is_err());
    }

    #[test]
    fn analyze_appends_verify_line() {
        let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
        wsq.load_reference_data().unwrap();
        let (_, report) = wsq
            .analyze("SELECT Count FROM WebCount WHERE T1 = 'Texas'")
            .unwrap();
        assert!(report.contains("-- verify: ok"), "{report}");
    }

    #[test]
    fn reserved_names_cannot_be_created() {
        let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
        let err = wsq.execute("CREATE TABLE WebCount (x INT)").unwrap_err();
        assert!(err.to_string().contains("reserved"));
    }
}
