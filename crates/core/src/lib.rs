//! The WSQ/DSQ public facade.
//!
//! [`Wsq`] wires together every subsystem — the Redbase-style database, the
//! simulated Web with its two engine personalities, the ReqPump, and the
//! query engine — behind the interface a user of the paper's system would
//! expect:
//!
//! ```
//! use wsq_core::{Wsq, WsqConfig};
//!
//! let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
//! wsq.load_reference_data().unwrap();
//! let result = wsq
//!     .query("SELECT Name, Count FROM States, WebCount WHERE Name = T1 \
//!             ORDER BY Count DESC, Name LIMIT 3")
//!     .unwrap();
//! assert_eq!(result.rows[0].get(0).as_str().unwrap(), "California");
//! ```
//!
//! [`DsqExplorer`] implements the DSQ direction (database-supported Web
//! queries): correlating a Web phrase with database vocabulary.

pub mod dsq;

pub use dsq::{Correlation, DsqExplorer, PairCorrelation};
pub use wsq_engine::db::{QueryResult, StatementResult};
pub use wsq_engine::plan::{BufferMode, ExecutionMode, PlacementStrategy};
pub use wsq_engine::QueryOptions;

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use wsq_common::{Result, Tuple, Value, WsqError};
use wsq_engine::db::Database;
use wsq_engine::engines::EngineRegistry;
use wsq_obs::Obs;
use wsq_pump::{PumpConfig, ReqPump, SearchService};
use wsq_websim::{CacheConfig, CachedService, CorpusConfig, EngineKind, LatencyModel, SimWeb};

/// Configuration for a [`Wsq`] instance.
#[derive(Clone)]
pub struct WsqConfig {
    /// Synthetic Web parameters.
    pub corpus: CorpusConfig,
    /// Latency model applied to both simulated engines.
    pub latency: LatencyModel,
    /// ReqPump configuration (concurrency limits, dispatch mode).
    pub pump: PumpConfig,
    /// Default query execution options.
    pub query: QueryOptions,
    /// Wrap engines in a memoizing result cache (HN96).
    pub cache: bool,
    /// Tuning for the result cache (shard count, LRU capacity, TTL);
    /// only consulted when `cache` is set.
    pub cache_tuning: CacheConfig,
    /// Collect call-lifecycle traces and metrics (DESIGN.md §10). On by
    /// default: the facade is the interactive surface where `.stats`,
    /// `.trace`, and the ANALYZE trace footer live. Set `false` for a
    /// true no-op sink (verified <2% overhead by the bench ablation).
    pub obs: bool,
    /// Admission-control cap on incomplete tuples buffered per ReqSync
    /// operator (DESIGN.md §11). `None` — the default and the paper's
    /// behaviour — buffers without bound; `Some(n)` stalls the scan side
    /// when `n` tuples are buffered until completions drain the buffer
    /// to the low-water mark (`n / 2`). Results are unaffected; only
    /// peak memory and call-issue pacing change. Shorthand for setting
    /// `query.reqsync_cap` (this field wins when both are set).
    pub reqsync_buffer_cap: Option<usize>,
}

impl Default for WsqConfig {
    fn default() -> Self {
        WsqConfig {
            corpus: CorpusConfig::default(),
            latency: LatencyModel::Zero,
            pump: PumpConfig::default(),
            query: QueryOptions::default(),
            cache: false,
            cache_tuning: CacheConfig::default(),
            obs: true,
            reqsync_buffer_cap: None,
        }
    }
}

impl WsqConfig {
    /// Small corpus, zero latency: for tests and quick experimentation.
    pub fn fast() -> Self {
        WsqConfig {
            corpus: CorpusConfig::small(),
            ..Self::default()
        }
    }

    /// Paper-like conditions: full corpus and noticeable per-request
    /// latency (scaled down from 1999's ~1s so experiments finish).
    pub fn paper_like() -> Self {
        WsqConfig {
            latency: LatencyModel::Jitter {
                base: std::time::Duration::from_millis(25),
                jitter: std::time::Duration::from_millis(10),
            },
            ..Self::default()
        }
    }
}

/// A complete WSQ/DSQ instance: database + engines + pump.
pub struct Wsq {
    db: Database,
    engines: EngineRegistry,
    pump: Arc<ReqPump>,
    opts: QueryOptions,
    web: SimWeb,
    caches: HashMap<String, Arc<CachedService>>,
    obs: Obs,
}

impl Wsq {
    fn build(db: Database, config: WsqConfig) -> Result<Wsq> {
        // Debug builds re-check every asyncified plan against the
        // placeholder-dataflow verifier (see `wsq_engine::verify_gate`).
        wsq_analyze::install_plan_gate();
        let web = SimWeb::build(config.corpus.clone());
        // One obs handle shared by the pump, the engine operators (which
        // reach it through `ReqPump::obs`), and the service decorators.
        let obs = if config.obs {
            Obs::enabled()
        } else {
            Obs::disabled()
        };
        let mut pump_config = config.pump.clone();
        pump_config.obs = obs.clone();
        let pump = ReqPump::new(pump_config);
        let mut opts = config.query;
        if config.reqsync_buffer_cap.is_some() {
            opts.reqsync_cap = config.reqsync_buffer_cap;
        }
        let mut wsq = Wsq {
            db,
            engines: EngineRegistry::new(),
            pump,
            opts,
            web,
            caches: HashMap::new(),
            obs,
        };
        // The paper's two engines: AltaVista (NEAR) and Google (AND).
        let av = wsq
            .web
            .engine_with_latency(EngineKind::AltaVista, config.latency);
        let google = wsq
            .web
            .engine_with_latency(EngineKind::Google, config.latency);
        let tuning = config.cache.then_some(&config.cache_tuning);
        wsq.register_engine_internal("AV", av, true, tuning);
        wsq.register_engine_internal("Google", google, false, tuning);
        Ok(wsq)
    }

    /// An in-memory instance.
    pub fn open_in_memory(config: WsqConfig) -> Result<Wsq> {
        Self::build(Database::open_in_memory()?, config)
    }

    /// A disk-backed instance rooted at `dir`.
    pub fn open(dir: impl AsRef<Path>, config: WsqConfig) -> Result<Wsq> {
        Self::build(Database::open(dir)?, config)
    }

    fn register_engine_internal(
        &mut self,
        name: &str,
        service: Arc<dyn SearchService>,
        supports_near: bool,
        cache: Option<&CacheConfig>,
    ) {
        let service: Arc<dyn SearchService> = if let Some(tuning) = cache {
            let cached = CachedService::with_config_obs(service, tuning.clone(), self.obs.clone());
            self.caches.insert(name.to_string(), cached.clone());
            cached
        } else {
            service
        };
        self.pump.register_service(name, service.clone());
        self.engines.register(name, service, supports_near);
    }

    /// Register an additional (or replacement) search engine. It becomes
    /// addressable as `WebCount_<name>` / `WebPages_<name>`.
    pub fn register_engine(
        &mut self,
        name: &str,
        service: Arc<dyn SearchService>,
        supports_near: bool,
    ) {
        self.register_engine_internal(name, service, supports_near, None);
    }

    /// Execute a `;`-separated SQL script.
    pub fn execute(&mut self, sql: &str) -> Result<Vec<StatementResult>> {
        let opts = self.opts;
        self.db.run_sql(sql, &self.engines, &self.pump, opts)
    }

    /// Execute a single SELECT and return its rows.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult> {
        // Lightweight per-query metrics (no trace-ring snapshot): the
        // full QueryWindow summary is reserved for analyze/trace_query.
        let started = self.obs.is_enabled().then(std::time::Instant::now);
        let result = self.query_inner(sql);
        if let (Some(t0), Some(m)) = (started, self.obs.metrics()) {
            m.queries.inc();
            m.query_latency.observe(t0.elapsed());
        }
        result
    }

    fn query_inner(&mut self, sql: &str) -> Result<QueryResult> {
        let mut results = self.execute(sql)?;
        if results.len() != 1 {
            return Err(WsqError::Plan(format!(
                "expected one statement, got {}",
                results.len()
            )));
        }
        match results.remove(0) {
            StatementResult::Rows(r) => Ok(r),
            StatementResult::Affected(_) => {
                Err(WsqError::Plan("statement did not produce rows".to_string()))
            }
        }
    }

    /// Execute a SELECT with explicit options (overriding the defaults).
    pub fn query_with(&mut self, sql: &str, opts: QueryOptions) -> Result<QueryResult> {
        let saved = self.opts;
        self.opts = opts;
        let r = self.query(sql);
        self.opts = saved;
        r
    }

    /// Open a streaming cursor over a SELECT (rows on demand; combine with
    /// [`BufferMode::Streaming`] for early first rows).
    pub fn query_cursor(&mut self, sql: &str) -> Result<wsq_engine::db::Cursor> {
        match wsq_sql::parse_one(sql)? {
            wsq_sql::Statement::Select(sel) => {
                self.db
                    .open_query(&sel, &self.engines, &self.pump, self.opts)
            }
            _ => Err(WsqError::Plan("cursor requires a SELECT".to_string())),
        }
    }

    /// EXPLAIN ANALYZE: run a SELECT and return its rows plus a
    /// per-operator runtime report.
    pub fn analyze(&mut self, sql: &str) -> Result<(QueryResult, String)> {
        match wsq_sql::parse_one(sql)? {
            wsq_sql::Statement::Select(sel) => {
                let before = self.cache_stats();
                let window = self.obs.begin_query();
                let (result, mut report) =
                    self.db
                        .analyze_query(&sel, &self.engines, &self.pump, self.opts)?;
                // Per-query latency distribution + concurrency high-water
                // from the metrics registry and the trace window.
                if let Some(summary) = window.finish(&self.obs) {
                    report.push_str(&format!("-- trace: {summary}\n"));
                }
                // Append per-engine cache deltas after the pump footer.
                let mut engines: Vec<&String> = self.caches.keys().collect();
                engines.sort();
                for engine in engines {
                    let now = self.caches[engine].stats();
                    let b = before.get(engine).copied().unwrap_or_default();
                    report.push_str(&wsq_engine::exec::instrument::counters_line(
                        &format!("cache[{engine}]"),
                        &[
                            ("hits", now.hits - b.hits),
                            ("misses", now.misses - b.misses),
                            ("coalesced", now.coalesced - b.coalesced),
                            ("evictions", now.evictions - b.evictions),
                            ("expirations", now.expirations - b.expirations),
                        ],
                    ));
                }
                // Static-verification verdict for the executed plan
                // (skipped when the raw statement cannot be planned
                // stand-alone, e.g. unresolved subqueries).
                if let Ok(plan) = self.db.plan_query(&sel, &self.engines, self.opts) {
                    report.push_str(&verify_line(&plan, self.opts.mode, self.opts.reqsync_cap));
                }
                Ok((result, report))
            }
            _ => Err(WsqError::Plan("ANALYZE requires a SELECT".to_string())),
        }
    }

    /// EXPLAIN a SELECT under the current options.
    pub fn explain(&self, sql: &str) -> Result<String> {
        self.db.explain(sql, &self.engines, self.opts)
    }

    /// EXPLAIN under explicit options.
    pub fn explain_with(&self, sql: &str, opts: QueryOptions) -> Result<String> {
        self.db.explain(sql, &self.engines, opts)
    }

    /// EXPLAIN VERIFY: the plan text plus the placeholder-dataflow
    /// verifier's verdict on it (node/scan/ReqSync counts on success, the
    /// full violation list on failure).
    pub fn explain_verify(&self, sql: &str) -> Result<String> {
        match wsq_sql::parse_one(sql)? {
            wsq_sql::Statement::Select(sel) => {
                let plan = self.db.plan_query(&sel, &self.engines, self.opts)?;
                let mut out = plan.display();
                out.push_str(&verify_line(&plan, self.opts.mode, self.opts.reqsync_cap));
                Ok(out)
            }
            _ => Err(WsqError::Plan(
                "EXPLAIN VERIFY requires a SELECT".to_string(),
            )),
        }
    }

    /// Default query options (mutable).
    pub fn options_mut(&mut self) -> &mut QueryOptions {
        &mut self.opts
    }

    /// The request pump.
    pub fn pump(&self) -> &Arc<ReqPump> {
        &self.pump
    }

    /// The observability handle (disabled unless `WsqConfig::obs`).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Prometheus text-format dump of the metrics registry (empty when
    /// observability is off).
    pub fn metrics_text(&self) -> String {
        self.obs.prometheus_text()
    }

    /// JSON snapshot of the metrics registry (`"{}"` when off).
    pub fn metrics_json(&self) -> String {
        self.obs.json_snapshot()
    }

    /// Run a SELECT and return its rows plus the rendered per-call trace
    /// timeline (the REPL's `.trace` command): every call's registered →
    /// queued → launched → completed → delivered → patched lifecycle with
    /// timestamps. The timeline is empty when observability is off.
    pub fn trace_query(&mut self, sql: &str) -> Result<(QueryResult, String)> {
        let pos = self.obs.trace_position();
        let result = self.query(sql)?;
        let events = self.obs.trace_events_since(pos);
        let dropped = self.obs.trace().map_or(0, |t| t.dropped());
        Ok((result, wsq_obs::render_timeline(&events, dropped)))
    }

    /// The engine registry.
    pub fn engines(&self) -> &EngineRegistry {
        &self.engines
    }

    /// The simulated Web behind the default engines.
    pub fn web(&self) -> &SimWeb {
        &self.web
    }

    /// Direct database access.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Direct mutable database access.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Result-cache statistics per engine (empty unless `cache` was set).
    pub fn cache_stats(&self) -> HashMap<String, wsq_websim::CacheStats> {
        self.caches
            .iter()
            .map(|(k, v)| (k.clone(), v.stats()))
            .collect()
    }

    /// Drop all cached search results (the paper's two-hour cooldown, in
    /// one call).
    pub fn clear_caches(&self) {
        for c in self.caches.values() {
            c.clear();
        }
    }

    /// Distinct non-null string values of `table.column` (DSQ vocabulary
    /// extraction).
    pub fn column_values(&mut self, table: &str, column: &str) -> Result<Vec<String>> {
        let r = self.query(&format!("SELECT DISTINCT {column} FROM {table}"))?;
        Ok(r.rows
            .iter()
            .filter_map(|t| t.get(0).as_str().ok().map(str::to_string))
            .collect())
    }

    /// Create and populate the paper's reference tables: `States(Name,
    /// Population, Capital)`, `Sigs(Name)`, `CSFields(Name)`, and
    /// `Movies(Title)`.
    pub fn load_reference_data(&mut self) -> Result<()> {
        use wsq_websim::data;
        self.execute(
            "CREATE TABLE States (Name VARCHAR(32), Population INT, Capital VARCHAR(32))",
        )?;
        let rows: Vec<Tuple> = data::STATES
            .iter()
            .map(|s| {
                Tuple::new(vec![
                    Value::from(s.name),
                    Value::Int(s.population),
                    Value::from(s.capital),
                ])
            })
            .collect();
        self.db.insert("States", &rows)?;

        self.execute("CREATE TABLE Sigs (Name VARCHAR(16))")?;
        let rows: Vec<Tuple> = data::SIGS
            .iter()
            .map(|(n, _)| Tuple::new(vec![Value::from(*n)]))
            .collect();
        self.db.insert("Sigs", &rows)?;

        self.execute("CREATE TABLE CSFields (Name VARCHAR(32))")?;
        let rows: Vec<Tuple> = data::CS_FIELDS
            .iter()
            .map(|(n, _)| Tuple::new(vec![Value::from(*n)]))
            .collect();
        self.db.insert("CSFields", &rows)?;

        self.execute("CREATE TABLE Movies (Title VARCHAR(40))")?;
        let rows: Vec<Tuple> = data::MOVIES
            .iter()
            .map(|(n, _)| Tuple::new(vec![Value::from(*n)]))
            .collect();
        self.db.insert("Movies", &rows)?;
        Ok(())
    }
}

/// One report line with the verifier's verdict on `plan` under `mode`
/// (synchronous plans may contain `EVScan`s; asynchronous ones may
/// not). `declared_cap` is the session's `reqsync_cap`: the
/// resource-bound rules prove the stamped plan honours it.
fn verify_line(
    plan: &wsq_engine::plan::PhysPlan,
    mode: ExecutionMode,
    declared_cap: Option<usize>,
) -> String {
    let verdict = match mode {
        ExecutionMode::Asynchronous => wsq_analyze::verify_async(plan),
        _ => wsq_analyze::verify(plan),
    }
    .and_then(|report| wsq_analyze::verify_bounds(plan, declared_cap).map(|_| report));
    match verdict {
        Ok(report) => format!("-- verify: ok ({report})\n"),
        Err(e) => format!("-- verify: FAILED: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_end_to_end() {
        let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
        wsq.load_reference_data().unwrap();
        assert_eq!(wsq.db().row_count("States").unwrap(), 50);
        assert_eq!(wsq.db().row_count("Sigs").unwrap(), 37);

        let r = wsq
            .query(
                "SELECT Name, Count FROM States, WebCount WHERE Name = T1 \
                 ORDER BY Count DESC, Name LIMIT 2",
            )
            .unwrap();
        assert_eq!(r.rows[0].get(0).as_str().unwrap(), "California");
        assert_eq!(r.rows[1].get(0).as_str().unwrap(), "Washington");

        // EXPLAIN shows asynchronous operators by default.
        let plan = wsq
            .explain("SELECT Count FROM WebCount WHERE T1 = 'Texas'")
            .unwrap();
        assert!(plan.contains("AEVScan"));
        assert!(plan.contains("ReqSync"));
        assert_eq!(wsq.pump().live_calls(), 0);
    }

    #[test]
    fn buffer_cap_threads_through_and_preserves_results() {
        let query = "SELECT Name, Count FROM States, WebCount WHERE Name = T1 \
                     ORDER BY Count DESC, Name";
        let mut unbounded = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
        unbounded.load_reference_data().unwrap();
        let baseline = unbounded.query(query).unwrap();

        let mut capped = Wsq::open_in_memory(WsqConfig {
            reqsync_buffer_cap: Some(4),
            ..WsqConfig::fast()
        })
        .unwrap();
        capped.load_reference_data().unwrap();
        assert_eq!(capped.options_mut().reqsync_cap, Some(4));
        let r = capped.query(query).unwrap();
        assert_eq!(r.to_table(), baseline.to_table());

        let m = capped.obs().metrics().expect("obs on by default");
        assert!(
            m.reqsync_buffered.high_water() <= 4,
            "cap=4 but buffered high-water was {}",
            m.reqsync_buffered.high_water()
        );
        assert_eq!(m.reqsync_buffered.get(), 0, "buffer drained at query end");
        assert_eq!(capped.pump().live_calls(), 0);
    }

    #[test]
    fn query_with_overrides_options_temporarily() {
        let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
        wsq.load_reference_data().unwrap();
        let sync = QueryOptions {
            mode: ExecutionMode::Synchronous,
            ..Default::default()
        };
        let r = wsq
            .query_with("SELECT Count FROM WebCount WHERE T1 = 'Texas'", sync)
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        // Default options restored.
        let plan = wsq
            .explain("SELECT Count FROM WebCount WHERE T1 = 'Texas'")
            .unwrap();
        assert!(plan.contains("AEVScan"));
    }

    #[test]
    fn analyze_reports_cache_counters_when_caching() {
        let config = WsqConfig {
            cache: true,
            ..WsqConfig::fast()
        };
        let mut wsq = Wsq::open_in_memory(config).unwrap();
        wsq.load_reference_data().unwrap();
        let sql = "SELECT Count FROM WebCount WHERE T1 = 'Texas'";
        wsq.query(sql).unwrap();
        let (_, report) = wsq.analyze(sql).unwrap();
        let av_line = report
            .lines()
            .find(|l| l.starts_with("-- cache[AV]:"))
            .unwrap_or_else(|| panic!("no AV cache footer in:\n{report}"));
        // The first query populated the cache; the analyzed run hit it.
        assert!(av_line.contains("hits=1"), "{av_line}");
        assert!(av_line.contains("misses=0"), "{av_line}");
    }

    #[test]
    fn cache_dedupes_repeated_searches() {
        let mut config = WsqConfig::fast();
        config.cache = true;
        let mut wsq = Wsq::open_in_memory(config).unwrap();
        wsq.load_reference_data().unwrap();
        wsq.query("SELECT Count FROM WebCount WHERE T1 = 'Utah'")
            .unwrap();
        wsq.query("SELECT Count FROM WebCount WHERE T1 = 'Utah'")
            .unwrap();
        let stats = wsq.cache_stats();
        let av = stats.get("AV").unwrap();
        assert_eq!(av.misses, 1);
        assert_eq!(av.hits, 1);
        wsq.clear_caches();
        wsq.query("SELECT Count FROM WebCount WHERE T1 = 'Utah'")
            .unwrap();
        assert_eq!(wsq.cache_stats().get("AV").unwrap().misses, 2);
    }

    #[test]
    fn column_values_extracts_vocabulary() {
        let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
        wsq.load_reference_data().unwrap();
        let movies = wsq.column_values("Movies", "Title").unwrap();
        assert_eq!(movies.len(), 20);
        assert!(movies.contains(&"Jaws".to_string()));
    }

    #[test]
    fn analyze_reports_operator_stats() {
        let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
        wsq.load_reference_data().unwrap();
        let (result, report) = wsq
            .analyze(
                "SELECT Name, Count FROM States, WebCount WHERE Name = T1 \
                 ORDER BY Count DESC, Name LIMIT 5",
            )
            .unwrap();
        assert_eq!(result.rows.len(), 5);
        // The report mirrors the plan tree with counters.
        assert!(report.contains("Limit: 5"), "{report}");
        assert!(report.contains("ReqSync"), "{report}");
        assert!(report.contains("Scan: States"), "{report}");
        // The scan produced all 50 states; the limit only 5.
        let scan_line = report.lines().find(|l| l.contains("Scan: States")).unwrap();
        assert!(scan_line.contains("rows=50"), "{scan_line}");
        let limit_line = report.lines().find(|l| l.contains("Limit: 5")).unwrap();
        assert!(limit_line.contains("rows=5"), "{limit_line}");
        // The AEVScan re-opened once per state.
        let aev_line = report.lines().find(|l| l.contains("AEVScan")).unwrap();
        assert!(aev_line.contains("opens=50"), "{aev_line}");
        // Pump counters are appended as a footer.
        let pump_line = report.lines().find(|l| l.starts_with("-- pump:")).unwrap();
        assert!(pump_line.contains("registered=50"), "{pump_line}");
        assert!(pump_line.contains("launched=50"), "{pump_line}");
        assert!(wsq.analyze("CREATE TABLE X (a INT)").is_err());
        assert_eq!(wsq.pump().live_calls(), 0);
    }

    #[test]
    fn explain_verify_reports_verdict() {
        let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
        wsq.load_reference_data().unwrap();
        let out = wsq
            .explain_verify(
                "SELECT Name, Count FROM States, WebCount WHERE Name = T1 \
                 ORDER BY Count DESC LIMIT 3",
            )
            .unwrap();
        assert!(out.contains("AEVScan"), "{out}");
        assert!(out.contains("-- verify: ok"), "{out}");
        assert!(out.contains("ReqSync(s)"), "{out}");

        // Synchronous plans verify too (EVScans are legitimate there).
        wsq.options_mut().mode = ExecutionMode::Synchronous;
        let out = wsq
            .explain_verify("SELECT Count FROM WebCount WHERE T1 = 'Texas'")
            .unwrap();
        assert!(out.contains("EVScan"), "{out}");
        assert!(out.contains("-- verify: ok"), "{out}");

        assert!(wsq.explain_verify("CREATE TABLE X (a INT)").is_err());
    }

    #[test]
    fn analyze_appends_verify_line() {
        let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
        wsq.load_reference_data().unwrap();
        let (_, report) = wsq
            .analyze("SELECT Count FROM WebCount WHERE T1 = 'Texas'")
            .unwrap();
        assert!(report.contains("-- verify: ok"), "{report}");
    }

    #[test]
    fn analyze_appends_trace_summary_from_registry() {
        let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
        wsq.load_reference_data().unwrap();
        let (_, report) = wsq
            .analyze(
                "SELECT Name, Count FROM States, WebCount WHERE Name = T1 \
                 ORDER BY Count DESC, Name LIMIT 5",
            )
            .unwrap();
        let trace_line = report
            .lines()
            .find(|l| l.starts_with("-- trace:"))
            .unwrap_or_else(|| panic!("no trace footer in:\n{report}"));
        // All 50 calls completed within the analyzed window, with the
        // latency quantiles and concurrency high-water filled in.
        assert!(trace_line.contains("calls=50"), "{trace_line}");
        assert!(trace_line.contains("call_p50="), "{trace_line}");
        assert!(trace_line.contains("call_p95="), "{trace_line}");
        assert!(!trace_line.contains("call_p50=-"), "{trace_line}");
        let max_concurrent: i64 = trace_line
            .split("max_concurrent=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .unwrap();
        assert!(max_concurrent >= 1, "{trace_line}");

        // Observability off: no trace footer, and no registry output.
        let mut quiet = Wsq::open_in_memory(WsqConfig {
            obs: false,
            ..WsqConfig::fast()
        })
        .unwrap();
        quiet.load_reference_data().unwrap();
        let (_, report) = quiet
            .analyze("SELECT Count FROM WebCount WHERE T1 = 'Texas'")
            .unwrap();
        assert!(!report.contains("-- trace:"), "{report}");
        assert_eq!(quiet.metrics_text(), "");
        assert_eq!(quiet.metrics_json(), "{}");
    }

    #[test]
    fn trace_query_renders_full_call_timelines() {
        let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
        wsq.load_reference_data().unwrap();
        let (result, timeline) = wsq
            .trace_query(
                "SELECT Name, Count FROM States, WebCount WHERE Name = T1 \
                 ORDER BY Count DESC, Name LIMIT 3",
            )
            .unwrap();
        assert_eq!(result.rows.len(), 3);
        // Every call's lifecycle is visible, labelled with its request.
        for stage in ["registered", "queued", "launched", "completed", "patched"] {
            assert!(timeline.contains(stage), "missing {stage} in:\n{timeline}");
        }
        assert!(timeline.contains("AV:count"), "{timeline}");
        assert!(timeline.contains("50 calls"), "{timeline}");
    }

    #[test]
    fn metrics_exposition_covers_the_query_lifecycle() {
        let mut wsq = Wsq::open_in_memory(WsqConfig {
            cache: true,
            ..WsqConfig::fast()
        })
        .unwrap();
        wsq.load_reference_data().unwrap();
        let sql = "SELECT Count FROM WebCount WHERE T1 = 'Utah'";
        wsq.query(sql).unwrap();
        wsq.query(sql).unwrap();
        let text = wsq.metrics_text();
        for metric in [
            "wsq_calls_registered_total 2",
            "wsq_calls_completed_total 2",
            "wsq_placeholder_tuples_total 2",
            "wsq_tuples_patched_total 2",
            "wsq_cache_hits_total 1",
            "wsq_cache_misses_total 1",
            "wsq_queries_total 2",
            "wsq_calls_in_flight 0",
            "wsq_call_latency_seconds_count 2",
        ] {
            assert!(text.contains(metric), "missing `{metric}` in:\n{text}");
        }
        let json = wsq.metrics_json();
        assert!(json.contains("\"wsq_queries_total\":2"), "{json}");
        assert!(json.contains("\"trace\":{"), "{json}");
    }

    #[test]
    fn reserved_names_cannot_be_created() {
        let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
        let err = wsq.execute("CREATE TABLE WebCount (x INT)").unwrap_err();
        assert!(err.to_string().contains("reserved"));
    }
}
