//! DSQ — Database-Supported (Web) Queries.
//!
//! The converse direction sketched in the paper's introduction: given a
//! keyword phrase, use the Web to *correlate* it with terms the database
//! knows about. For the phrase "scuba diving" and a database of states and
//! movies, DSQ finds the states and the movies that appear on the Web most
//! often near the phrase — and even state/movie/phrase **triples** (the
//! paper's example: an underwater thriller filmed in Florida).
//!
//! Implementation: every candidate term becomes one `WebCount`-style
//! request (`term NEAR phrase`), all issued concurrently through ReqPump —
//! the same asynchronous-iteration machinery WSQ uses, driven from the
//! other direction.

use std::sync::Arc;
use wsq_common::{Result, WsqError};
use wsq_pump::{CallId, ReqPump, RequestKind, SearchRequest};

use crate::Wsq;

/// A term correlated with the probe phrase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Correlation {
    /// The database term.
    pub term: String,
    /// Pages where the term occurs near the phrase.
    pub count: u64,
}

/// A pair of terms jointly correlated with the probe phrase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairCorrelation {
    /// Term from the first vocabulary.
    pub a: String,
    /// Term from the second vocabulary.
    pub b: String,
    /// Pages where both terms occur near the phrase.
    pub count: u64,
}

/// Explores correlations between Web phrases and database vocabulary.
pub struct DsqExplorer {
    pump: Arc<ReqPump>,
    engine: String,
    supports_near: bool,
}

impl DsqExplorer {
    /// Build an explorer over one of `wsq`'s registered engines.
    pub fn new(wsq: &Wsq, engine: &str) -> Result<DsqExplorer> {
        let (name, entry) = wsq.engines().get(engine)?;
        Ok(DsqExplorer {
            pump: wsq.pump().clone(),
            engine: name.to_string(),
            supports_near: entry.supports_near,
        })
    }

    fn quoted(term: &str) -> String {
        if term.contains(char::is_whitespace) {
            format!("\"{}\"", term.replace('"', ""))
        } else {
            term.to_string()
        }
    }

    fn expr(&self, terms: &[&str]) -> String {
        let sep = if self.supports_near { " near " } else { " " };
        terms
            .iter()
            .map(|t| Self::quoted(t))
            .collect::<Vec<_>>()
            .join(sep)
    }

    /// Issue one count request per expression concurrently, returning the
    /// counts in input order.
    fn batch_counts(&self, exprs: &[String]) -> Result<Vec<u64>> {
        let calls: Vec<CallId> = exprs
            .iter()
            .map(|expr| {
                self.pump.register(SearchRequest {
                    engine: self.engine.clone(),
                    expr: expr.clone(),
                    kind: RequestKind::Count,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        let mut counts = Vec::with_capacity(calls.len());
        for call in calls {
            let result = self.pump.wait(call);
            self.pump.release(call);
            let count = result?
                .count()
                .ok_or_else(|| WsqError::Search("count request returned pages".to_string()))?;
            counts.push(count);
        }
        Ok(counts)
    }

    /// The WSQ query equivalent to [`DsqExplorer::correlate`] — DSQ *is*
    /// expressible as a Web-supported SQL query over the vocabulary table
    /// (the two directions share one machinery; §1 of the paper).
    pub fn suggest_sql(&self, phrase: &str, table: &str, column: &str) -> String {
        format!(
            "SELECT {column}, Count FROM {table}, WebCount_{engine} \
             WHERE {column} = T1 AND T2 = '{phrase}' AND Count > 0 \
             ORDER BY Count DESC, {column}",
            engine = self.engine,
            phrase = phrase.replace('\'', "''"),
        )
    }

    /// Correlate `phrase` with each term, strongest first. Terms with zero
    /// co-occurrence are dropped.
    pub fn correlate(&self, phrase: &str, terms: &[String]) -> Result<Vec<Correlation>> {
        let exprs: Vec<String> = terms
            .iter()
            .map(|t| self.expr(&[t.as_str(), phrase]))
            .collect();
        let counts = self.batch_counts(&exprs)?;
        let mut out: Vec<Correlation> = terms
            .iter()
            .zip(counts)
            .filter(|(_, c)| *c > 0)
            .map(|(term, count)| Correlation {
                term: term.clone(),
                count,
            })
            .collect();
        out.sort_by(|x, y| y.count.cmp(&x.count).then(x.term.cmp(&y.term)));
        Ok(out)
    }

    /// Find term pairs (one from each vocabulary) jointly correlated with
    /// `phrase`. To bound fan-out, only the `top_k` strongest singles from
    /// each vocabulary are paired.
    pub fn correlate_pairs(
        &self,
        phrase: &str,
        vocab_a: &[String],
        vocab_b: &[String],
        top_k: usize,
    ) -> Result<Vec<PairCorrelation>> {
        let singles_a = self.correlate(phrase, vocab_a)?;
        let singles_b = self.correlate(phrase, vocab_b)?;
        let a: Vec<&str> = singles_a
            .iter()
            .take(top_k)
            .map(|c| c.term.as_str())
            .collect();
        let b: Vec<&str> = singles_b
            .iter()
            .take(top_k)
            .map(|c| c.term.as_str())
            .collect();

        let mut pairs = Vec::new();
        let mut exprs = Vec::new();
        for ta in &a {
            for tb in &b {
                pairs.push((ta.to_string(), tb.to_string()));
                exprs.push(self.expr(&[ta, tb, phrase]));
            }
        }
        let counts = self.batch_counts(&exprs)?;
        let mut out: Vec<PairCorrelation> = pairs
            .into_iter()
            .zip(counts)
            .filter(|(_, c)| *c > 0)
            .map(|((a, b), count)| PairCorrelation { a, b, count })
            .collect();
        out.sort_by(|x, y| {
            y.count
                .cmp(&x.count)
                .then(x.a.cmp(&y.a))
                .then(x.b.cmp(&y.b))
        });
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WsqConfig;

    fn setup() -> (Wsq, DsqExplorer) {
        let mut wsq = Wsq::open_in_memory(WsqConfig::fast()).unwrap();
        wsq.load_reference_data().unwrap();
        let dsq = DsqExplorer::new(&wsq, "AV").unwrap();
        (wsq, dsq)
    }

    #[test]
    fn scuba_diving_correlates_with_coastal_states() {
        let (mut wsq, dsq) = setup();
        let states = wsq.column_values("States", "Name").unwrap();
        let corr = dsq.correlate("scuba diving", &states).unwrap();
        assert!(!corr.is_empty());
        assert_eq!(corr[0].term, "Florida");
        let top: Vec<&str> = corr.iter().take(3).map(|c| c.term.as_str()).collect();
        assert!(
            top.contains(&"Hawaii") || top.contains(&"California"),
            "{top:?}"
        );
        // Landlocked Wyoming should not lead the list.
        assert!(corr.iter().all(|c| c.count > 0));
        assert_eq!(wsq.pump().live_calls(), 0);
    }

    #[test]
    fn scuba_diving_correlates_with_underwater_movies() {
        let (mut wsq, dsq) = setup();
        let movies = wsq.column_values("Movies", "Title").unwrap();
        let corr = dsq.correlate("scuba diving", &movies).unwrap();
        assert!(!corr.is_empty());
        // The underwater thrillers lead (exact order among the top two is
        // sampling noise on the small test corpus).
        let top2: Vec<&str> = corr.iter().take(2).map(|c| c.term.as_str()).collect();
        assert!(top2.contains(&"The Abyss"), "top2: {top2:?}");
        let titles: Vec<&str> = corr.iter().map(|c| c.term.as_str()).collect();
        assert!(titles.contains(&"Thunderball"));
        assert!(!titles.contains(&"Fargo"), "Fargo is not a diving movie");
    }

    #[test]
    fn triples_find_state_movie_combinations() {
        let (mut wsq, dsq) = setup();
        let states = wsq.column_values("States", "Name").unwrap();
        let movies = wsq.column_values("Movies", "Title").unwrap();
        let pairs = dsq
            .correlate_pairs("scuba diving", &states, &movies, 3)
            .unwrap();
        assert!(!pairs.is_empty(), "no state/movie/scuba triples found");
        for p in &pairs {
            assert!(p.count > 0);
        }
        assert_eq!(wsq.pump().live_calls(), 0);
    }

    #[test]
    fn suggest_sql_is_equivalent_to_correlate() {
        let (mut wsq, dsq) = setup();
        let sql = dsq.suggest_sql("scuba diving", "States", "Name");
        let via_sql = wsq.query(&sql).unwrap();
        let states = wsq.column_values("States", "Name").unwrap();
        let via_api = dsq.correlate("scuba diving", &states).unwrap();
        assert_eq!(via_sql.rows.len(), via_api.len());
        for (row, corr) in via_sql.rows.iter().zip(&via_api) {
            assert_eq!(row.get(0).as_str().unwrap(), corr.term);
            assert_eq!(row.get(1).as_int().unwrap() as u64, corr.count);
        }
    }

    #[test]
    fn unknown_engine_rejected() {
        let (wsq, _) = setup();
        assert!(DsqExplorer::new(&wsq, "Bing").is_err());
    }

    #[test]
    fn empty_vocabulary_is_fine() {
        let (_, dsq) = setup();
        assert_eq!(dsq.correlate("scuba diving", &[]).unwrap().len(), 0);
    }
}
