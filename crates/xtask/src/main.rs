//! Workspace automation. Currently one subcommand:
//!
//! ```text
//! cargo xtask lint
//! ```
//!
//! Runs the `wsq-analyze` static analyses and enforces three gates
//! (all run in CI), then writes a machine-readable `lint_report.json`
//! at the repo root (uploaded as a CI artifact):
//!
//! 1. **Panic-site budget**: `.unwrap()` / `.expect(` in non-test code
//!    of `crates/engine` and `crates/pump` is compared per file against
//!    `crates/xtask/panic-allowlist.txt`. New sites fail; the allowlist
//!    may only shrink (a stale, too-generous entry also fails, so the
//!    burn-down count stays honest).
//! 2. **Concurrency audit** (`wsq_analyze::conc`): blocking calls under
//!    live lock guards, condvar waits outside predicate loops, and
//!    lock-acquisition-order cycles over engine/pump/obs/websim.
//!    Pre-existing findings live in `crates/xtask/conc-allowlist.txt`
//!    with the same shrink-only discipline.
//! 3. **Resource bounds** (`wsq_analyze::verify_bounds`): a
//!    representative capped plan family is asyncified and its symbolic
//!    peaks proven ≤ the stamped caps; the bounds land in the report.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use wsq_analyze::conc::{audit_dirs, AuditConfig, ConcFinding};
use wsq_analyze::lint::{scan_dir, FileLint};
use wsq_analyze::{verify_bounds, Bound, Bounds};
use wsq_common::{Column, DataType, Schema};
use wsq_engine::asyncify::asyncify_with_opts;
use wsq_engine::plan::{
    BufferMode, EvBinding, EvSpec, PhysPlan, PlacementStrategy, PrefetchHint, VTableKind,
};
use wsq_sql::ast::ColumnRef;

/// Crates whose panic sites are budgeted by the allowlist.
const PANIC_BUDGET_DIRS: &[&str] = &["crates/engine/src", "crates/pump/src"];

/// Crates scanned by the concurrency auditor.
const CONC_AUDIT_DIRS: &[&str] = &[
    "crates/engine/src",
    "crates/pump/src",
    "crates/obs/src",
    "crates/websim/src",
];

const PANIC_ALLOWLIST: &str = "crates/xtask/panic-allowlist.txt";
const CONC_ALLOWLIST: &str = "crates/xtask/conc-allowlist.txt";
const REPORT: &str = "lint_report.json";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown xtask `{other}`; available: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: two levels up from this crate's manifest.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .unwrap_or(&manifest)
        .to_path_buf()
}

fn lint() -> ExitCode {
    let root = repo_root();
    let mut errors: Vec<String> = Vec::new();

    // Pass 1: panic-site budget over engine + pump.
    let allowlist = match load_allowlist(&root.join(PANIC_ALLOWLIST)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: cannot read {PANIC_ALLOWLIST}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut budgeted: Vec<FileLint> = Vec::new();
    for dir in PANIC_BUDGET_DIRS {
        match scan_dir(&root.join(dir), &root) {
            Ok(mut files) => budgeted.append(&mut files),
            Err(e) => errors.push(format!("scanning {dir}: {e}")),
        }
    }
    let mut total = 0usize;
    for f in &budgeted {
        let actual = f.panic_sites();
        total += actual;
        let allowed = allowlist
            .iter()
            .find(|(p, _)| p == &f.path)
            .map(|&(_, n)| n)
            .unwrap_or(0);
        if actual > allowed {
            errors.push(format!(
                "{}: {} panic site(s) ({} unwrap, {} expect) but only {} allowed \
                 — convert to typed WsqError instead of raising the budget",
                f.path, actual, f.unwraps, f.expects, allowed
            ));
        } else if actual < allowed {
            errors.push(format!(
                "{}: allowlist grants {} panic site(s) but only {} remain \
                 — ratchet {} down so the budget cannot regrow",
                f.path, allowed, actual, PANIC_ALLOWLIST
            ));
        }
    }
    for (p, n) in &allowlist {
        if *n > 0 && !budgeted.iter().any(|f| &f.path == p) {
            errors.push(format!(
                "{PANIC_ALLOWLIST} lists `{p}` ({n} site(s)) but no such file was scanned"
            ));
        }
    }

    // Pass 2: the concurrency audit, with its own burn-down allowlist
    // keyed `path rule count`.
    let conc_allowlist = match load_allowlist(&root.join(CONC_ALLOWLIST)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: cannot read {CONC_ALLOWLIST}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let dirs: Vec<PathBuf> = CONC_AUDIT_DIRS.iter().map(|d| root.join(d)).collect();
    let findings = match audit_dirs(&dirs, &root, &AuditConfig::default()) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: concurrency audit failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut allowlisted = 0usize;
    for f in &findings {
        let key = format!("{}:{}", f.file, f.rule.name());
        let allowed = conc_allowlist
            .iter()
            .find(|(p, _)| p == &key)
            .map(|&(_, n)| n)
            .unwrap_or(0);
        let seen = findings
            .iter()
            .filter(|g| g.file == f.file && g.rule == f.rule)
            .count();
        if seen > allowed {
            errors.push(format!("concurrency: {f}"));
        } else {
            allowlisted += 1;
        }
    }
    for (key, n) in &conc_allowlist {
        let Some((file, rule)) = key.rsplit_once(':') else {
            errors.push(format!("{CONC_ALLOWLIST}: malformed key `{key}`"));
            continue;
        };
        let seen = findings
            .iter()
            .filter(|g| g.file == file && g.rule.name() == rule)
            .count();
        if seen < *n {
            errors.push(format!(
                "{CONC_ALLOWLIST} grants {n} `{rule}` finding(s) in {file} but only \
                 {seen} remain — ratchet the allowlist down so findings cannot regrow"
            ));
        }
    }

    // Pass 3: static resource bounds over a representative capped plan
    // family (the proptest corpus in tests/equivalence.rs covers the
    // random sweep; this keeps the proven peaks visible per lint run).
    let mut bound_rows: Vec<(String, Bounds, usize, bool)> = Vec::new();
    for (name, cap, depth) in [("fanout", 8usize, 4usize), ("nested", 4, 2)] {
        let plan = representative_plan(name);
        let stamped = asyncify_with_opts(
            plan,
            PlacementStrategy::Full,
            BufferMode::Full,
            Some(cap),
            PrefetchHint {
                depth,
                window: 8,
                adaptive: false,
            },
        );
        match verify_bounds(&stamped, Some(cap)) {
            Ok(b) => {
                let ok = b.peak_buffered.le(Bound::Finite(cap as u64));
                if !ok {
                    errors.push(format!(
                        "resource bounds: plan '{name}' peak buffered {} above cap {cap}",
                        b.peak_buffered
                    ));
                }
                bound_rows.push((name.to_string(), b, cap, ok));
            }
            Err(e) => errors.push(format!("resource bounds: plan '{name}' rejected: {e}")),
        }
    }

    // Machine-readable report (consumed by CI as an artifact).
    let report = render_report(
        total,
        &budgeted,
        &findings,
        allowlisted,
        &bound_rows,
        &errors,
    );
    if let Err(e) = std::fs::write(root.join(REPORT), report) {
        eprintln!("error: cannot write {REPORT}: {e}");
        return ExitCode::FAILURE;
    }

    if errors.is_empty() {
        let budget: usize = allowlist.iter().map(|&(_, n)| n).sum();
        println!(
            "xtask lint: ok — {total} panic site(s) within budget {budget}, \
             {} concurrency finding(s) ({} allowlisted), resource bounds proven \
             for {} plan(s); report written to {REPORT}",
            findings.len(),
            allowlisted,
            bound_rows.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} error(s)", errors.len());
        for e in &errors {
            eprintln!("  - {e}");
        }
        ExitCode::FAILURE
    }
}

/// A small capped plan family for the resource-bounds report: the
/// paper's 50-state fan-out shape, and a two-table nested dependent
/// join.
fn representative_plan(name: &str) -> PhysPlan {
    let states = PhysPlan::SeqScan {
        table: "States".to_string(),
        alias: "States".to_string(),
        schema: Schema::new(vec![
            Column::qualified("States", "Name", DataType::Varchar),
            Column::qualified("States", "Population", DataType::Int),
        ]),
    };
    let spec = |alias: &str, kind| EvSpec {
        kind,
        engine: "AV".into(),
        alias: alias.to_string(),
        template: None,
        bindings: vec![EvBinding::Column(ColumnRef {
            qualifier: Some("States".into()),
            name: "Name".into(),
        })],
        rank_limit: 3,
        supports_near: true,
        prefetch: PrefetchHint::default(),
    };
    match name {
        "nested" => PhysPlan::DependentJoin {
            left: Box::new(PhysPlan::DependentJoin {
                left: Box::new(states),
                right: Box::new(PhysPlan::EVScan(spec("V1", VTableKind::WebCount))),
            }),
            right: Box::new(PhysPlan::EVScan(spec("V2", VTableKind::WebPages))),
        },
        _ => PhysPlan::DependentJoin {
            left: Box::new(states),
            right: Box::new(PhysPlan::EVScan(spec("V1", VTableKind::WebCount))),
        },
    }
}

/// Hand-rolled JSON (the workspace has no serde; the shape is small and
/// stable). Strings are escaped minimally (quote, backslash, control).
fn render_report(
    panic_total: usize,
    budgeted: &[FileLint],
    findings: &[ConcFinding],
    allowlisted: usize,
    bounds: &[(String, Bounds, usize, bool)],
    errors: &[String],
) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"panic_budget\": {\n");
    let _ = writeln!(s, "    \"total\": {panic_total},");
    s.push_str("    \"files\": [");
    for (i, f) in budgeted.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n      {{\"path\": {}, \"unwraps\": {}, \"expects\": {}}}",
            json_str(&f.path),
            f.unwraps,
            f.expects
        );
    }
    s.push_str("\n    ]\n  },\n  \"concurrency\": {\n");
    let _ = writeln!(s, "    \"total\": {},", findings.len());
    let _ = writeln!(s, "    \"allowlisted\": {allowlisted},");
    s.push_str("    \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n      {{\"rule\": {}, \"file\": {}, \"line\": {}, \"function\": {}, \
             \"detail\": {}}}",
            json_str(f.rule.name()),
            json_str(&f.file),
            f.line,
            json_str(&f.function),
            json_str(&f.detail)
        );
    }
    s.push_str("\n    ]\n  },\n  \"resource_bounds\": [");
    for (i, (name, b, cap, ok)) in bounds.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "\n    {{\"plan\": {}, \"cap\": {cap}, \"peak_buffered\": {}, \
             \"prefetch_refs\": {}, \"peak_inflight\": {}, \"within_cap\": {ok}}}",
            json_str(name),
            json_str(&b.peak_buffered.to_string()),
            json_str(&b.prefetch_refs.to_string()),
            json_str(&b.peak_inflight.to_string())
        );
    }
    s.push_str("\n  ],\n  \"errors\": [");
    for (i, e) in errors.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\n    {}", json_str(e));
    }
    s.push_str("\n  ]\n}\n");
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse an allowlist: one `key count` pair per line; `#` comments.
fn load_allowlist(path: &Path) -> Result<Vec<(String, usize)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(p), Some(n)) = (parts.next(), parts.next()) else {
            return Err(format!("line {}: expected `key count`", lineno + 1));
        };
        let n: usize = n
            .parse()
            .map_err(|e| format!("line {}: bad count: {e}", lineno + 1))?;
        out.push((p.to_string(), n));
    }
    Ok(out)
}
