//! Workspace automation. Currently one subcommand:
//!
//! ```text
//! cargo xtask lint
//! ```
//!
//! Runs the `wsq-analyze` source lints over the engine/pump/websim
//! crates and enforces two gates (both run in CI):
//!
//! 1. **Panic-site budget**: `.unwrap()` / `.expect(` in non-test code
//!    of `crates/engine` and `crates/pump` is compared per file against
//!    `crates/xtask/panic-allowlist.txt`. New sites fail; the allowlist
//!    may only shrink (a stale, too-generous entry also fails, so the
//!    burn-down count stays honest).
//! 2. **No locks across backend calls**: a `let`-bound lock guard still
//!    live at a `.execute(` call site fails, in any scanned crate.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use wsq_analyze::lint::{scan_dir, FileLint};

/// Crates whose panic sites are budgeted by the allowlist.
const PANIC_BUDGET_DIRS: &[&str] = &["crates/engine/src", "crates/pump/src"];

/// Crates additionally scanned for locks held across backend calls.
const LOCK_LINT_DIRS: &[&str] = &["crates/engine/src", "crates/pump/src", "crates/websim/src"];

const ALLOWLIST: &str = "crates/xtask/panic-allowlist.txt";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("unknown xtask `{other}`; available: lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: two levels up from this crate's manifest.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .unwrap_or(&manifest)
        .to_path_buf()
}

fn lint() -> ExitCode {
    let root = repo_root();
    let mut errors: Vec<String> = Vec::new();

    // Pass 1: panic-site budget over engine + pump.
    let allowlist = match load_allowlist(&root.join(ALLOWLIST)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: cannot read {ALLOWLIST}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut budgeted: Vec<FileLint> = Vec::new();
    for dir in PANIC_BUDGET_DIRS {
        match scan_dir(&root.join(dir), &root) {
            Ok(mut files) => budgeted.append(&mut files),
            Err(e) => errors.push(format!("scanning {dir}: {e}")),
        }
    }
    let mut total = 0usize;
    for f in &budgeted {
        let actual = f.panic_sites();
        total += actual;
        let allowed = allowlist
            .iter()
            .find(|(p, _)| p == &f.path)
            .map(|&(_, n)| n)
            .unwrap_or(0);
        if actual > allowed {
            errors.push(format!(
                "{}: {} panic site(s) ({} unwrap, {} expect) but only {} allowed \
                 — convert to typed WsqError instead of raising the budget",
                f.path, actual, f.unwraps, f.expects, allowed
            ));
        } else if actual < allowed {
            errors.push(format!(
                "{}: allowlist grants {} panic site(s) but only {} remain \
                 — ratchet {} down so the budget cannot regrow",
                f.path, allowed, actual, ALLOWLIST
            ));
        }
    }
    for (p, n) in &allowlist {
        if *n > 0 && !budgeted.iter().any(|f| &f.path == p) {
            errors.push(format!(
                "{ALLOWLIST} lists `{p}` ({n} site(s)) but no such file was scanned"
            ));
        }
    }

    // Pass 2: lock guards across backend calls, everywhere scanned.
    for dir in LOCK_LINT_DIRS {
        match scan_dir(&root.join(dir), &root) {
            Ok(files) => {
                for f in files {
                    errors.extend(f.lock_violations);
                }
            }
            Err(e) => errors.push(format!("scanning {dir}: {e}")),
        }
    }

    if errors.is_empty() {
        let budget: usize = allowlist.iter().map(|&(_, n)| n).sum();
        println!(
            "xtask lint: ok — {total} panic site(s) within budget {budget}, \
             no locks held across backend calls"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} error(s)", errors.len());
        for e in &errors {
            eprintln!("  - {e}");
        }
        ExitCode::FAILURE
    }
}

/// Parse the allowlist: one `path count` pair per line; `#` comments.
fn load_allowlist(path: &Path) -> Result<Vec<(String, usize)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(p), Some(n)) = (parts.next(), parts.next()) else {
            return Err(format!("line {}: expected `path count`", lineno + 1));
        };
        let n: usize = n
            .parse()
            .map_err(|e| format!("line {}: bad count: {e}", lineno + 1))?;
        out.push((p.to_string(), n));
    }
    Ok(out)
}
