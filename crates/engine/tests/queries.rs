//! End-to-end engine tests: SQL → plan → (a)synchronous execution against
//! the simulated Web.

use std::sync::Arc;
use wsq_common::{Column, DataType, Schema, Tuple, Value};
use wsq_engine::db::{Database, QueryOptions, StatementResult};
use wsq_engine::engines::EngineRegistry;
use wsq_engine::plan::{BufferMode, ExecutionMode, PlacementStrategy};
use wsq_pump::{PumpConfig, ReqPump};
use wsq_websim::{CorpusConfig, EngineKind, SimWeb};

struct Harness {
    db: Database,
    engines: EngineRegistry,
    pump: Arc<ReqPump>,
}

fn harness() -> Harness {
    harness_with(CorpusConfig::small())
}

fn harness_with(corpus: CorpusConfig) -> Harness {
    let web = SimWeb::build(corpus);
    let av = web.engine(EngineKind::AltaVista);
    let google = web.engine(EngineKind::Google);

    let pump = ReqPump::new(PumpConfig::default());
    pump.register_service("AV", av.clone());
    pump.register_service("Google", google.clone());

    let mut engines = EngineRegistry::new();
    engines.register("AV", av, true);
    engines.register("Google", google, false);

    let mut db = Database::open_in_memory().unwrap();
    db.create_table(
        "States",
        &Schema::new(vec![
            Column::new("Name", DataType::Varchar),
            Column::new("Population", DataType::Int),
            Column::new("Capital", DataType::Varchar),
        ]),
    )
    .unwrap();
    let rows: Vec<Tuple> = wsq_websim::data::STATES
        .iter()
        .map(|s| {
            Tuple::new(vec![
                Value::from(s.name),
                Value::Int(s.population),
                Value::from(s.capital),
            ])
        })
        .collect();
    db.insert("States", &rows).unwrap();

    db.create_table(
        "Sigs",
        &Schema::new(vec![Column::new("Name", DataType::Varchar)]),
    )
    .unwrap();
    let rows: Vec<Tuple> = wsq_websim::data::SIGS
        .iter()
        .map(|(n, _)| Tuple::new(vec![Value::from(*n)]))
        .collect();
    db.insert("Sigs", &rows).unwrap();

    Harness { db, engines, pump }
}

impl Harness {
    fn query_with(&mut self, sql: &str, opts: QueryOptions) -> wsq_engine::QueryResult {
        let results = self
            .db
            .run_sql(sql, &self.engines, &self.pump, opts)
            .unwrap_or_else(|e| panic!("query failed: {e}\nsql: {sql}"));
        match results.into_iter().next().unwrap() {
            StatementResult::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    fn query(&mut self, sql: &str) -> wsq_engine::QueryResult {
        self.query_with(
            sql,
            QueryOptions {
                mode: ExecutionMode::Asynchronous,
                ..Default::default()
            },
        )
    }

    /// Run under every execution configuration and assert identical
    /// result bags (order-insensitive unless the query sorts).
    fn query_all_modes(&mut self, sql: &str, ordered: bool) -> wsq_engine::QueryResult {
        let baseline = self.query_with(
            sql,
            QueryOptions {
                mode: ExecutionMode::Synchronous,
                ..Default::default()
            },
        );
        let configs = [
            (PlacementStrategy::Full, BufferMode::Full),
            (PlacementStrategy::Full, BufferMode::Streaming),
            (PlacementStrategy::InsertionOnly, BufferMode::Full),
            (PlacementStrategy::InsertionOnly, BufferMode::Streaming),
        ];
        for (strategy, buffer) in configs {
            let got = self.query_with(
                sql,
                QueryOptions {
                    mode: ExecutionMode::Asynchronous,
                    strategy,
                    buffer,
                    ..Default::default()
                },
            );
            let mut a: Vec<String> = baseline.rows.iter().map(|t| t.to_string()).collect();
            let mut b: Vec<String> = got.rows.iter().map(|t| t.to_string()).collect();
            if !ordered {
                a.sort();
                b.sort();
            }
            assert_eq!(
                a, b,
                "async ({strategy:?},{buffer:?}) diverged from sync on: {sql}"
            );
        }
        baseline
    }
}

fn strings(result: &wsq_engine::QueryResult, col: usize) -> Vec<String> {
    result
        .rows
        .iter()
        .map(|t| t.get(col).as_str().unwrap().to_string())
        .collect()
}

#[test]
fn local_only_queries_work() {
    let mut h = harness();
    let r = h.query(
        "SELECT Name, Population FROM States WHERE Population > 10000000 ORDER BY Population DESC",
    );
    let names = strings(&r, 0);
    assert_eq!(names[0], "California");
    assert!(names.contains(&"Texas".to_string()));
    assert!(names.len() >= 5);

    let r = h.query("SELECT COUNT(*) FROM States");
    assert_eq!(r.rows[0].get(0).as_int().unwrap(), 50);

    let r = h.query("SELECT Capital FROM States WHERE Name = 'Colorado'");
    assert_eq!(strings(&r, 0), vec!["Denver"]);
}

#[test]
fn paper_query_1_rank_states_by_count() {
    let mut h = harness();
    // Name is a tie-breaking secondary key: the paper leaves tie order
    // unspecified and asynchronous completion order is nondeterministic.
    let r = h.query_all_modes(
        "SELECT Name, Count FROM States, WebCount WHERE Name = T1 \
         ORDER BY Count DESC, Name",
        true,
    );
    assert_eq!(r.rows.len(), 50);
    let names = strings(&r, 0);
    // The paper's top-5 shape.
    assert_eq!(
        &names[..5],
        &["California", "Washington", "New York", "Texas", "Michigan"]
    );
    // Counts strictly ordered at the top.
    let c0 = r.rows[0].get(1).as_int().unwrap();
    let c4 = r.rows[4].get(1).as_int().unwrap();
    assert!(c0 > c4 && c4 > 0);
}

#[test]
fn paper_query_2_normalized_by_population() {
    // The normalized ranking's margins are tight for low-population
    // states; the full-size corpus keeps sampling noise well below them.
    let mut h = harness_with(CorpusConfig::default());
    // Scale the ratio up since our engine does integer division.
    let r = h.query(
        "SELECT Name, Count * 1000000 / Population AS C FROM States, WebCount \
         WHERE Name = T1 ORDER BY C DESC",
    );
    let names = strings(&r, 0);
    assert_eq!(
        &names[..5],
        &["Alaska", "Washington", "Delaware", "Hawaii", "Wyoming"]
    );
}

#[test]
fn paper_query_3_four_corners() {
    let mut h = harness();
    let r = h.query_all_modes(
        "SELECT Name, Count FROM States, WebCount \
         WHERE Name = T1 AND T2 = 'four corners' ORDER BY Count DESC, Name",
        true,
    );
    let names = strings(&r, 0);
    assert_eq!(&names[..4], &["Colorado", "New Mexico", "Arizona", "Utah"]);
    // The dramatic dropoff between 4th and 5th.
    let c3 = r.rows[3].get(1).as_int().unwrap();
    let c4 = r.rows[4].get(1).as_int().unwrap();
    assert!(c3 >= c4 * 3, "dropoff missing: {c3} vs {c4}");
}

#[test]
fn paper_query_4_capitals_beating_states() {
    let mut h = harness();
    let r = h.query_all_modes(
        "SELECT Capital, C.Count, Name, S.Count \
         FROM States, WebCount C, WebCount S \
         WHERE Capital = C.T1 AND Name = S.T1 AND C.Count > S.Count",
        false,
    );
    let mut capitals = strings(&r, 0);
    capitals.sort();
    assert_eq!(
        capitals,
        vec!["Atlanta", "Boston", "Columbia", "Jackson", "Lincoln", "Pierre"]
    );
}

#[test]
fn paper_query_5_top_urls_per_state() {
    let mut h = harness();
    let r = h.query_all_modes(
        "SELECT Name, URL, Rank FROM States, WebPages \
         WHERE Name = T1 AND Rank <= 2 ORDER BY Name, Rank",
        true,
    );
    assert_eq!(r.rows.len(), 100, "2 URLs per state");
    assert_eq!(r.rows[0].get(0).as_str().unwrap(), "Alabama");
    assert_eq!(r.rows[0].get(2).as_int().unwrap(), 1);
    assert_eq!(r.rows[1].get(2).as_int().unwrap(), 2);
}

#[test]
fn paper_query_6_engine_agreement() {
    let mut h = harness();
    let r = h.query_all_modes(
        "SELECT Name, AV.URL FROM States, WebPages_AV AV, WebPages_Google G \
         WHERE Name = AV.T1 AND Name = G.T1 AND AV.Rank <= 5 AND G.Rank <= 5 \
         AND AV.URL = G.URL",
        false,
    );
    // Shape: the engines agree on a few URLs, far fewer than 50×5.
    assert!(!r.rows.is_empty(), "engines never agree");
    assert!(
        r.rows.len() < 100,
        "engines agree on too much: {}",
        r.rows.len()
    );
}

#[test]
fn sigs_knuth_ranking() {
    let mut h = harness();
    let r = h.query_all_modes(
        "SELECT Name, Count FROM Sigs, WebCount \
         WHERE Name = T1 AND T2 = 'Knuth' AND Count > 0 ORDER BY Count DESC",
        true,
    );
    let names = strings(&r, 0);
    assert_eq!(
        names,
        vec!["SIGACT", "SIGPLAN", "SIGGRAPH", "SIGMOD", "SIGCOMM", "SIGSAM"]
    );
}

#[test]
fn webpages_cancellation_when_no_results() {
    let mut h = harness();
    // No SIG name co-occurs with a gibberish phrase; with AND semantics on
    // an unknown word the result set is empty, so every optimistic tuple
    // is cancelled.
    let r = h.query_all_modes(
        "SELECT Name, URL FROM Sigs, WebPages \
         WHERE Name = T1 AND T2 = 'zxqzzyqk' AND Rank <= 3",
        false,
    );
    assert_eq!(r.rows.len(), 0);
}

#[test]
fn standalone_virtual_table() {
    let mut h = harness();
    let r = h.query_all_modes("SELECT Count FROM WebCount WHERE T1 = 'California'", false);
    assert_eq!(r.rows.len(), 1);
    assert!(r.rows[0].get(0).as_int().unwrap() > 100);
}

#[test]
fn explicit_search_template() {
    let mut h = harness();
    // Explicit SearchExp overrides the default NEAR template: plain AND.
    let and_count = h
        .query("SELECT Count FROM WebCount WHERE SearchExp = '%1 %2' AND T1 = 'Colorado' AND T2 = 'four corners'")
        .rows[0]
        .get(0)
        .as_int()
        .unwrap();
    let near_count = h
        .query("SELECT Count FROM WebCount WHERE T1 = 'Colorado' AND T2 = 'four corners'")
        .rows[0]
        .get(0)
        .as_int()
        .unwrap();
    assert!(and_count >= near_count);
    assert!(near_count > 0);
}

#[test]
fn aggregation_over_web_counts() {
    let mut h = harness();
    // Total Web presence of all states (clash case 3: ReqSync must resolve
    // below the aggregate).
    let r = h.query_all_modes(
        "SELECT SUM(Count), COUNT(*) FROM States, WebCount WHERE Name = T1",
        false,
    );
    assert_eq!(r.rows.len(), 1);
    assert!(r.rows[0].get(0).as_int().unwrap() > 1000);
    assert_eq!(r.rows[0].get(1).as_int().unwrap(), 50);
}

#[test]
fn distinct_and_limit() {
    let mut h = harness();
    let r = h.query_all_modes(
        "SELECT DISTINCT Rank FROM States, WebPages WHERE Name = T1 AND Rank <= 3 \
         ORDER BY Rank",
        true,
    );
    assert_eq!(r.rows.len(), 3);

    let r = h.query(
        "SELECT Name, Count FROM States, WebCount WHERE Name = T1 \
         ORDER BY Count DESC LIMIT 5",
    );
    assert_eq!(r.rows.len(), 5);
    assert_eq!(r.rows[0].get(0).as_str().unwrap(), "California");
}

#[test]
fn filter_on_web_count_value() {
    let mut h = harness();
    // Carried-filter path: predicate on the placeholder attribute.
    let r = h.query_all_modes(
        "SELECT Name, Count FROM States, WebCount WHERE Name = T1 AND Count > 200 \
         ORDER BY Count DESC",
        true,
    );
    assert!(!r.rows.is_empty());
    for row in &r.rows {
        assert!(row.get(1).as_int().unwrap() > 200);
    }
}

#[test]
fn like_in_between_and_having_end_to_end() {
    let mut h = harness();
    // LIKE over state names.
    let r = h.query("SELECT Name FROM States WHERE Name LIKE 'New%' ORDER BY Name");
    assert_eq!(
        strings(&r, 0),
        vec!["New Hampshire", "New Jersey", "New Mexico", "New York"]
    );
    // IN list combined with a Web count.
    let r = h.query_all_modes(
        "SELECT Name, Count FROM States, WebCount \
         WHERE Name IN ('Utah', 'Texas', 'Maine') AND Name = T1 \
         ORDER BY Count DESC, Name",
        true,
    );
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.rows[0].get(0).as_str().unwrap(), "Texas");
    // BETWEEN on population.
    let r = h.query("SELECT COUNT(*) FROM States WHERE Population BETWEEN 1000000 AND 2000000");
    assert!(r.rows[0].get(0).as_int().unwrap() > 3);
    // HAVING filters groups.
    let r = h.query(
        "SELECT Capital, COUNT(*) AS n FROM States GROUP BY Capital HAVING COUNT(*) > 0 \
         ORDER BY Capital LIMIT 3",
    );
    assert_eq!(r.rows.len(), 3);
    // HAVING that eliminates everything.
    let r = h.query("SELECT Capital, COUNT(*) FROM States GROUP BY Capital HAVING COUNT(*) > 10");
    assert_eq!(r.rows.len(), 0);
    // HAVING over web counts: states whose total is large.
    let r = h.query_all_modes(
        "SELECT Name, SUM(Count) AS total FROM States, WebCount WHERE Name = T1 \
         GROUP BY Name HAVING SUM(Count) > 100",
        false,
    );
    assert!(!r.rows.is_empty());
    assert!(r.rows.len() < 50);
}

#[test]
fn planner_errors() {
    let mut h = harness();
    let opts = QueryOptions::default();
    // Unbound T1.
    let err =
        h.db.run_sql("SELECT Count FROM WebCount", &h.engines, &h.pump, opts)
            .unwrap_err();
    assert!(err.to_string().contains("bound") || err.to_string().contains("search terms"));
    // Binding from a LATER table is not allowed (FROM order = join order).
    let err =
        h.db.run_sql(
            "SELECT Count FROM WebCount, States WHERE Name = T1",
            &h.engines,
            &h.pump,
            opts,
        )
        .unwrap_err();
    assert!(matches!(err, wsq_common::WsqError::Plan(_)));
    // Unknown engine suffix.
    let err =
        h.db.run_sql(
            "SELECT Count FROM WebCount_Bing WHERE T1 = 'x'",
            &h.engines,
            &h.pump,
            opts,
        )
        .unwrap_err();
    assert!(err.to_string().contains("Bing"));
    // Unknown table & column.
    assert!(h
        .db
        .run_sql("SELECT x FROM Nope", &h.engines, &h.pump, opts)
        .is_err());
    assert!(h
        .db
        .run_sql("SELECT Nope FROM States", &h.engines, &h.pump, opts)
        .is_err());
}

#[test]
fn uncorrelated_subqueries() {
    let mut h = harness();
    // Scalar subquery: states more populous than the average.
    let r = h.query(
        "SELECT COUNT(*) FROM States \
         WHERE Population > (SELECT AVG(Population) FROM States)",
    );
    let above_avg = r.rows[0].get(0).as_int().unwrap();
    assert!((5..25).contains(&above_avg), "{above_avg}");

    // IN (SELECT …): capitals of big states.
    let r = h.query(
        "SELECT Capital FROM States \
         WHERE Name IN (SELECT Name FROM States WHERE Population > 19000000) \
         ORDER BY Capital",
    );
    assert_eq!(strings(&r, 0), vec!["Austin", "Sacramento"]);

    // NOT IN with a subquery.
    let r = h.query(
        "SELECT COUNT(*) FROM States \
         WHERE Name NOT IN (SELECT Name FROM States WHERE Population > 1000000)",
    );
    let small = r.rows[0].get(0).as_int().unwrap();
    assert!((3..12).contains(&small), "{small}");

    // A Web-supported subquery: states whose count beats Utah's.
    let r = h.query_all_modes(
        "SELECT Name FROM States, WebCount WHERE Name = T1 \
         AND Count > (SELECT Count FROM WebCount WHERE T1 = 'Utah') \
         ORDER BY Name",
        true,
    );
    assert!(r.rows.len() > 3 && r.rows.len() < 40, "{}", r.rows.len());
    assert!(strings(&r, 0).contains(&"California".to_string()));

    // Subquery in DML.
    h.db.run_sql(
        "CREATE TABLE Flagged (Name VARCHAR(32));\
             INSERT INTO Flagged SELECT Name FROM States WHERE Population < 700000;\
             DELETE FROM Flagged WHERE Name IN (SELECT Capital FROM States)",
        &h.engines,
        &h.pump,
        QueryOptions::default(),
    )
    .unwrap();

    // Error paths: multi-column and multi-row scalar subqueries.
    assert!(h
        .db
        .run_sql(
            "SELECT 1 FROM States WHERE Population > (SELECT Name, Population FROM States)",
            &h.engines,
            &h.pump,
            QueryOptions::default()
        )
        .is_err());
    assert!(h
        .db
        .run_sql(
            "SELECT 1 FROM States WHERE Population > (SELECT Population FROM States)",
            &h.engines,
            &h.pump,
            QueryOptions::default()
        )
        .is_err());
}

#[test]
fn order_by_non_projected_column() {
    let mut h = harness();
    // Sort key not in the select list: Sort plans below the Project.
    let r = h.query("SELECT Name FROM States ORDER BY Population DESC LIMIT 3");
    assert_eq!(strings(&r, 0), vec!["California", "Texas", "New York"]);
    assert_eq!(
        r.schema.len(),
        1,
        "Population must not leak into the output"
    );

    // Alias and ordinal keys still work.
    let r = h.query("SELECT Name, Population / 1000 AS K FROM States ORDER BY K DESC LIMIT 1");
    assert_eq!(r.rows[0].get(0).as_str().unwrap(), "California");
    let r = h.query("SELECT Population, Name FROM States ORDER BY 2 LIMIT 1");
    assert_eq!(r.rows[0].get(1).as_str().unwrap(), "Alabama");

    // DISTINCT preserves the below-projection sort.
    let r = h.query("SELECT DISTINCT Capital FROM States ORDER BY Population DESC LIMIT 2");
    assert_eq!(strings(&r, 0), vec!["Sacramento", "Austin"]);

    // And the WSQ case: order by the web count while projecting only names.
    let r = h.query_all_modes(
        "SELECT Name FROM States, WebCount WHERE Name = T1 \
         ORDER BY Count DESC, Name LIMIT 3",
        true,
    );
    assert_eq!(strings(&r, 0), vec!["California", "Washington", "New York"]);

    // Unknown key columns still error.
    assert!(h
        .db
        .run_sql(
            "SELECT Name FROM States ORDER BY Nope",
            &h.engines,
            &h.pump,
            QueryOptions::default()
        )
        .is_err());
}

#[test]
fn parallel_joins_mode_matches_sync_results() {
    let mut h = harness();
    let queries = [
        "SELECT Name, Count FROM States, WebCount WHERE Name = T1 \
         ORDER BY Count DESC, Name",
        "SELECT Name, URL, Rank FROM States, WebPages WHERE Name = T1 AND Rank <= 2 \
         ORDER BY Name, Rank",
        "SELECT Name, Count, URL, Rank FROM States, WebCount, WebPages \
         WHERE Name = WebCount.T1 AND Name = WebPages.T1 AND WebPages.Rank <= 2 \
         ORDER BY Name, Rank",
    ];
    for sql in queries {
        let sync = h.query_with(
            sql,
            QueryOptions {
                mode: ExecutionMode::Synchronous,
                ..Default::default()
            },
        );
        let parallel = h.query_with(
            sql,
            QueryOptions {
                mode: ExecutionMode::ParallelJoins,
                parallel_threads: 8,
                ..Default::default()
            },
        );
        assert_eq!(sync.rows, parallel.rows, "parallel diverged on: {sql}");
    }
    // The EXPLAIN output shows the parallel operator.
    let plan =
        h.db.explain(
            queries[0],
            &h.engines,
            QueryOptions {
                mode: ExecutionMode::ParallelJoins,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(
        plan.contains("Parallel Dependent Join (threads=16)"),
        "{plan}"
    );
    assert!(!plan.contains("ReqSync"));
}

#[test]
fn pump_does_not_leak_calls() {
    let mut h = harness();
    h.query("SELECT Name, Count FROM States, WebCount WHERE Name = T1 ORDER BY Count DESC");
    h.query("SELECT Name, URL FROM States, WebPages WHERE Name = T1 AND Rank <= 3");
    assert_eq!(h.pump.live_calls(), 0, "ReqSync must release every call");
}

#[test]
fn limit_above_reqsync_releases_pending() {
    let mut h = harness();
    // LIMIT cuts the query short; buffered placeholder tuples must still
    // release their pump registrations on close.
    h.query("SELECT Name, Count FROM States, WebCount WHERE Name = T1 LIMIT 3");
    assert_eq!(h.pump.live_calls(), 0);
}

#[test]
fn multi_statement_script_and_persistence() {
    let mut h = harness();
    let results =
        h.db.run_sql(
            "CREATE TABLE Notes (Body VARCHAR(64), Score INT);\
             INSERT INTO Notes VALUES ('a', 1), ('b', 2), ('c', 2);\
             SELECT Score, COUNT(*) AS n FROM Notes GROUP BY Score ORDER BY Score;",
            &h.engines,
            &h.pump,
            QueryOptions::default(),
        )
        .unwrap();
    assert_eq!(results.len(), 3);
    match &results[2] {
        StatementResult::Rows(r) => {
            assert_eq!(r.rows.len(), 2);
            assert_eq!(r.rows[1].get(1).as_int().unwrap(), 2);
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn disk_database_roundtrip() {
    let dir = tempfile::tempdir().unwrap();
    let engines = EngineRegistry::new();
    let pump = ReqPump::new(PumpConfig::default());
    {
        let mut db = Database::open(dir.path()).unwrap();
        db.run_sql(
            "CREATE TABLE T (x INT, s VARCHAR(8)); INSERT INTO T VALUES (1,'a'),(2,'b')",
            &engines,
            &pump,
            QueryOptions::default(),
        )
        .unwrap();
        db.flush().unwrap();
    }
    let mut db = Database::open(dir.path()).unwrap();
    let results = db
        .run_sql(
            "SELECT s FROM T WHERE x = 2",
            &engines,
            &pump,
            QueryOptions::default(),
        )
        .unwrap();
    match &results[0] {
        StatementResult::Rows(r) => {
            assert_eq!(r.rows.len(), 1);
            assert_eq!(r.rows[0].get(0).as_str().unwrap(), "b");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn explain_matches_figure_3_shape() {
    let h = harness();
    let text =
        h.db.explain(
            "SELECT Name, Count FROM Sigs, WebCount \
             WHERE Name = T1 AND T2 = 'Knuth' ORDER BY Count DESC",
            &h.engines,
            QueryOptions {
                mode: ExecutionMode::Asynchronous,
                ..Default::default()
            },
        )
        .unwrap();
    // Figure 3: Sort → … ReqSync … → Dependent Join → {Scan, AEVScan}.
    let sort_pos = text.find("Sort:").unwrap();
    let sync_pos = text.find("ReqSync").unwrap();
    let dj_pos = text.find("Dependent Join").unwrap();
    let scan_pos = text.find("Scan: Sigs").unwrap();
    let aev_pos = text.find("AEVScan").unwrap();
    assert!(sort_pos < sync_pos && sync_pos < dj_pos && dj_pos < scan_pos && scan_pos < aev_pos);

    // Synchronous plan uses EVScan and no ReqSync.
    let sync_text =
        h.db.explain(
            "SELECT Name, Count FROM Sigs, WebCount WHERE Name = T1",
            &h.engines,
            QueryOptions {
                mode: ExecutionMode::Synchronous,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(sync_text.contains("EVScan"));
    assert!(!sync_text.contains("ReqSync"));
    assert!(!sync_text.contains("AEVScan"));
}
