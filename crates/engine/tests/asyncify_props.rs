//! Property tests for the asynchronous-iteration plan transformation:
//! for *arbitrary* plan trees (including bushy shapes the SQL planner
//! never builds), asyncification must preserve the safety invariants that
//! make placeholder execution sound.
//!
//! Invariants checked (derived from the clash rules of §4.5.2):
//!
//! 1. No synchronous `EVScan` survives; their count becomes the
//!    `AEVScan` count.
//! 2. At the root, every `AEVScan` is *covered* by a `ReqSync` (no
//!    placeholder can escape the plan).
//! 3. Order/cardinality-sensitive operators (`Sort`, `Aggregate`,
//!    `Distinct`, `Limit`) never see uncovered placeholders.
//! 4. No `Filter` predicate reads an attribute of an uncovered `AEVScan`
//!    in its own subtree.
//! 5. Dependent-join bindings never read uncovered placeholder
//!    attributes of their outer side.
//! 6. The transformation is idempotent.

use proptest::prelude::*;
use wsq_common::{Column, DataType, Schema};
use wsq_engine::asyncify;
use wsq_engine::plan::{
    BufferMode, EvBinding, EvSpec, PhysPlan, PlacementStrategy, PrefetchHint, VTableKind,
};
use wsq_sql::ast::{BinOp, ColumnRef, Expr};

/// Tables available to the generator (name, columns).
const TABLES: &[(&str, &[&str])] = &[
    ("States", &["Name", "Population"]),
    ("Sigs", &["Name"]),
    ("R", &["N"]),
];

fn scan(i: usize) -> PhysPlan {
    let (name, cols) = TABLES[i % TABLES.len()];
    PhysPlan::SeqScan {
        table: name.to_string(),
        alias: name.to_string(),
        schema: Schema::new(
            cols.iter()
                .map(|c| Column::qualified(name, *c, DataType::Varchar))
                .collect(),
        ),
    }
}

/// A random plan tree. `vt` counts virtual scans so each gets a unique
/// alias.
fn arb_plan(depth: u32) -> BoxedStrategy<PhysPlan> {
    let leaf = (0..TABLES.len()).prop_map(scan).boxed();
    if depth == 0 {
        return leaf;
    }
    let inner = arb_plan(depth - 1);
    prop_oneof![
        2 => leaf,
        // Dependent join with a fresh virtual scan bound to the leftmost
        // available column of the outer subtree.
        3 => (inner.clone(), any::<u8>(), any::<bool>()).prop_map(|(left, salt, pages)| {
            let left_schema = left.schema();
            let bind_col = left_schema.column(0).clone();
            let alias = format!("V{salt}");
            let spec = EvSpec {
                kind: if pages { VTableKind::WebPages } else { VTableKind::WebCount },
                engine: "AV".into(),
                alias,
                template: None,
                bindings: vec![EvBinding::Column(ColumnRef {
                    qualifier: bind_col.qualifier.clone(),
                    name: bind_col.name.clone(),
                })],
                rank_limit: 3,
                supports_near: true,
                prefetch: PrefetchHint::default(),
            };
            PhysPlan::DependentJoin {
                left: Box::new(left),
                right: Box::new(PhysPlan::EVScan(spec)),
            }
        }),
        // Filter: either on a base column or on a virtual attribute of
        // the subtree (the latter exercises carried selections).
        2 => (inner.clone(), any::<bool>()).prop_map(|(input, on_attr)| {
            let attr = if on_attr {
                first_vattr(&input)
            } else {
                None
            };
            let target = attr.unwrap_or_else(|| {
                let s = input.schema();
                let c = s.column(0);
                ColumnRef { qualifier: c.qualifier.clone(), name: c.name.clone() }
            });
            PhysPlan::Filter {
                predicate: Expr::binary(
                    BinOp::NotEq,
                    Expr::Column(target),
                    Expr::Literal(wsq_sql::ast::Literal::Int(0)),
                ),
                input: Box::new(input),
            }
        }),
        // Joins.
        2 => (inner.clone(), inner.clone(), any::<bool>()).prop_map(|(l, r, cross)| {
            if cross {
                PhysPlan::CrossProduct { left: Box::new(l), right: Box::new(r) }
            } else {
                let lc = l.schema().column(0).clone();
                let rc = r.schema().column(0).clone();
                PhysPlan::NestedLoopJoin {
                    predicate: Expr::binary(
                        BinOp::Eq,
                        Expr::Column(ColumnRef { qualifier: lc.qualifier.clone(), name: lc.name }),
                        Expr::Column(ColumnRef { qualifier: rc.qualifier.clone(), name: rc.name }),
                    ),
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }
        }),
        // Order/cardinality-sensitive wrappers.
        1 => inner.clone().prop_map(|input| {
            let c = input.schema().column(0).clone();
            PhysPlan::Sort {
                keys: vec![(
                    Expr::Column(ColumnRef { qualifier: c.qualifier.clone(), name: c.name }),
                    true,
                )],
                input: Box::new(input),
            }
        }),
        1 => inner.clone().prop_map(|input| PhysPlan::Distinct { input: Box::new(input) }),
        1 => inner.prop_map(|input| PhysPlan::Limit { n: 7, input: Box::new(input) }),
    ]
    .boxed()
}

/// The first virtual attribute (e.g. `V3.Count`) found in the subtree.
fn first_vattr(plan: &PhysPlan) -> Option<ColumnRef> {
    match plan {
        PhysPlan::EVScan(s) | PhysPlan::AEVScan(s) => s.external_attrs().into_iter().next(),
        PhysPlan::SeqScan { .. } | PhysPlan::IndexScan { .. } | PhysPlan::Values { .. } => None,
        PhysPlan::Filter { input, .. }
        | PhysPlan::Project { input, .. }
        | PhysPlan::Sort { input, .. }
        | PhysPlan::Aggregate { input, .. }
        | PhysPlan::Distinct { input }
        | PhysPlan::Limit { input, .. }
        | PhysPlan::ReqSync { input, .. } => first_vattr(input),
        PhysPlan::DependentJoin { left, right }
        | PhysPlan::NestedLoopJoin { left, right, .. }
        | PhysPlan::CrossProduct { left, right } => {
            first_vattr(right).or_else(|| first_vattr(left))
        }
        PhysPlan::ParallelDependentJoin { left, .. } => first_vattr(left),
    }
}

/// Attributes of AEVScans in `plan` NOT covered by any ReqSync inside
/// `plan` itself.
fn uncovered_attrs(plan: &PhysPlan) -> Vec<ColumnRef> {
    match plan {
        PhysPlan::ReqSync { .. } => vec![], // everything below is covered
        PhysPlan::AEVScan(s) => s.external_attrs(),
        PhysPlan::EVScan(s) => s.external_attrs(), // shouldn't remain, but count it
        PhysPlan::SeqScan { .. } | PhysPlan::IndexScan { .. } | PhysPlan::Values { .. } => vec![],
        PhysPlan::Filter { input, .. }
        | PhysPlan::Project { input, .. }
        | PhysPlan::Sort { input, .. }
        | PhysPlan::Aggregate { input, .. }
        | PhysPlan::Distinct { input }
        | PhysPlan::Limit { input, .. } => uncovered_attrs(input),
        PhysPlan::DependentJoin { left, right }
        | PhysPlan::NestedLoopJoin { left, right, .. }
        | PhysPlan::CrossProduct { left, right } => {
            let mut v = uncovered_attrs(left);
            v.extend(uncovered_attrs(right));
            v
        }
        // A parallel dependent join resolves its own calls internally.
        PhysPlan::ParallelDependentJoin { left, .. } => uncovered_attrs(left),
    }
}

fn refs_any(expr: &Expr, attrs: &[ColumnRef]) -> bool {
    expr.columns().iter().any(|c| {
        attrs.iter().any(|a| {
            a.name.eq_ignore_ascii_case(&c.name)
                && match (&a.qualifier, &c.qualifier) {
                    (Some(x), Some(y)) => x.eq_ignore_ascii_case(y),
                    _ => true,
                }
        })
    })
}

/// Walk the transformed plan checking invariants 3–5.
fn check_safety(plan: &PhysPlan) -> Result<(), String> {
    match plan {
        PhysPlan::Sort { input, .. }
        | PhysPlan::Aggregate { input, .. }
        | PhysPlan::Distinct { input }
        | PhysPlan::Limit { input, .. } => {
            if !uncovered_attrs(input).is_empty() {
                return Err(format!(
                    "order/cardinality-sensitive operator over uncovered placeholders:\n{plan}"
                ));
            }
            check_safety(input)
        }
        PhysPlan::Filter { input, predicate } => {
            if refs_any(predicate, &uncovered_attrs(input)) {
                return Err(format!("filter reads uncovered placeholder attrs:\n{plan}"));
            }
            check_safety(input)
        }
        PhysPlan::Project { input, items, .. } => {
            // Computed items must not read uncovered attrs.
            let uncovered = uncovered_attrs(input);
            for (e, _) in items {
                if !matches!(e, Expr::Column(_)) && refs_any(e, &uncovered) {
                    return Err(format!(
                        "projection computes over uncovered placeholder attrs:\n{plan}"
                    ));
                }
            }
            check_safety(input)
        }
        PhysPlan::DependentJoin { left, right } => {
            // Bindings must not read uncovered attrs of the outer side.
            fn spec_of(p: &PhysPlan) -> Option<&EvSpec> {
                match p {
                    PhysPlan::EVScan(s) | PhysPlan::AEVScan(s) => Some(s),
                    PhysPlan::Filter { input, .. } | PhysPlan::ReqSync { input, .. } => {
                        spec_of(input)
                    }
                    _ => None,
                }
            }
            if let Some(spec) = spec_of(right) {
                let uncovered = uncovered_attrs(left);
                for b in &spec.bindings {
                    if let EvBinding::Column(c) = b {
                        if refs_any(&Expr::Column(c.clone()), &uncovered) {
                            return Err(format!(
                                "dependent-join binding reads uncovered placeholders:\n{plan}"
                            ));
                        }
                    }
                }
            }
            check_safety(left)?;
            check_safety(right)
        }
        PhysPlan::NestedLoopJoin {
            left,
            right,
            predicate,
        } => {
            let mut uncovered = uncovered_attrs(left);
            uncovered.extend(uncovered_attrs(right));
            if refs_any(predicate, &uncovered) {
                return Err(format!(
                    "join predicate reads uncovered placeholder attrs:\n{plan}"
                ));
            }
            check_safety(left)?;
            check_safety(right)
        }
        PhysPlan::CrossProduct { left, right } => {
            check_safety(left)?;
            check_safety(right)
        }
        PhysPlan::ReqSync { input, .. } => check_safety(input),
        PhysPlan::SeqScan { .. }
        | PhysPlan::IndexScan { .. }
        | PhysPlan::Values { .. }
        | PhysPlan::EVScan(_)
        | PhysPlan::AEVScan(_) => Ok(()),
        PhysPlan::ParallelDependentJoin { left, .. } => check_safety(left),
    }
}

fn count(plan: &PhysPlan, pred: fn(&PhysPlan) -> bool) -> usize {
    plan.count_nodes(&pred)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Round-trip through the independent static verifier
    /// (`wsq-analyze`): every plan `asyncify` emits must pass the
    /// placeholder-dataflow checks clean, under both placement
    /// strategies and both buffer modes.
    #[test]
    fn verifier_accepts_asyncify_output(
        plan in arb_plan(4),
        strategy in prop_oneof![
            Just(PlacementStrategy::Full),
            Just(PlacementStrategy::InsertionOnly)
        ],
        buffer in prop_oneof![Just(BufferMode::Full), Just(BufferMode::Streaming)],
    ) {
        let out = asyncify(plan, strategy, buffer);
        if let Err(e) = wsq_analyze::verify_async(&out) {
            prop_assert!(false, "verifier rejected asyncify output:\n{}\nplan:\n{}", e, out);
        }
    }

    #[test]
    fn asyncify_invariants_hold(
        plan in arb_plan(4),
        strategy in prop_oneof![
            Just(PlacementStrategy::Full),
            Just(PlacementStrategy::InsertionOnly)
        ],
    ) {
        let ev_before = count(&plan, |p| matches!(p, PhysPlan::EVScan(_)));
        let out = asyncify(plan, strategy, BufferMode::Full);

        // 1. Scan conversion.
        prop_assert_eq!(count(&out, |p| matches!(p, PhysPlan::EVScan(_))), 0);
        prop_assert_eq!(
            count(&out, |p| matches!(p, PhysPlan::AEVScan(_))),
            ev_before
        );
        // 2. Root coverage.
        prop_assert!(
            uncovered_attrs(&out).is_empty(),
            "uncovered placeholders escape the root:\n{}",
            out
        );
        // 3–5. Clash safety.
        if let Err(msg) = check_safety(&out) {
            prop_assert!(false, "{}", msg);
        }
        // 6. Idempotency.
        let twice = asyncify(out.clone(), strategy, BufferMode::Full);
        prop_assert_eq!(twice, out);
    }
}

fn count_spec(alias: &str) -> EvSpec {
    EvSpec {
        kind: VTableKind::WebCount,
        engine: "AV".into(),
        alias: alias.to_string(),
        template: None,
        bindings: vec![EvBinding::Column(ColumnRef {
            qualifier: Some("States".into()),
            name: "Name".into(),
        })],
        rank_limit: 3,
        supports_near: true,
        prefetch: PrefetchHint::default(),
    }
}

/// Regression for `consolidate_adjacent`'s flush-point pairing: when the
/// input plan carries its own (partially covering) ReqSync at the root,
/// re-asyncification flushes the still-uncovered attributes into a new
/// ReqSync directly above it — the pair must be merged into one, which
/// the static verifier now asserts (it rejects adjacent ReqSync pairs).
#[test]
fn consolidation_merges_carried_reqsync_at_flush_point() {
    let v1 = count_spec("V1");
    let v2 = count_spec("V2");
    let v1_attrs = v1.external_attrs();
    let v2_attrs = v2.external_attrs();
    let nested = PhysPlan::DependentJoin {
        left: Box::new(PhysPlan::DependentJoin {
            left: Box::new(scan(0)),
            right: Box::new(PhysPlan::AEVScan(v1)),
        }),
        right: Box::new(PhysPlan::AEVScan(v2)),
    };
    // The carried ReqSync covers only V1; V2's attributes must rise past
    // it and flush at the root.
    let carried = PhysPlan::ReqSync {
        input: Box::new(nested.clone()),
        attrs: v1_attrs.clone(),
        mode: BufferMode::Full,
        cap: None,
    };
    let out = asyncify(carried, PlacementStrategy::Full, BufferMode::Full);

    // The analyzer accepts the consolidated plan ...
    wsq_analyze::verify_async(&out)
        .unwrap_or_else(|e| panic!("consolidated plan rejected:\n{e}\nplan:\n{out}"));
    // ... which has exactly one ReqSync, covering both scans.
    assert_eq!(
        count(&out, |p| matches!(p, PhysPlan::ReqSync { .. })),
        1,
        "adjacent pair not merged:\n{out}"
    );
    let PhysPlan::ReqSync { attrs, .. } = &out else {
        panic!("expected ReqSync at root:\n{out}");
    };
    for a in v1_attrs.iter().chain(&v2_attrs) {
        assert!(
            attrs.iter().any(|s| s == a),
            "merged ReqSync missing {a:?}:\n{out}"
        );
    }

    // And the shape consolidation removes — the un-merged adjacent pair —
    // is exactly what the verifier rejects.
    let unmerged = PhysPlan::ReqSync {
        input: Box::new(PhysPlan::ReqSync {
            input: Box::new(nested),
            attrs: v1_attrs,
            mode: BufferMode::Full,
            cap: None,
        }),
        attrs: v2_attrs,
        mode: BufferMode::Full,
        cap: None,
    };
    let err = wsq_analyze::verify_async(&unmerged).expect_err("adjacent pair must be rejected");
    assert!(
        err.violations
            .iter()
            .any(|v| v.rule == wsq_analyze::Rule::AdjacentReqSync),
        "expected AdjacentReqSync, got: {err}"
    );
}
