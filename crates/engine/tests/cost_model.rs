//! Validation of the asynchronous-iteration cost model: its *rankings*
//! must agree with reality (measured behavior and the paper's analysis),
//! even though its absolute numbers are heuristic.

use std::sync::Arc;
use wsq_common::{Tuple, Value};
use wsq_engine::cost::CostParams;
use wsq_engine::db::{Database, QueryOptions};
use wsq_engine::engines::EngineRegistry;
use wsq_engine::plan::{ExecutionMode, PlacementStrategy};
use wsq_pump::{PumpConfig, ReqPump};
use wsq_websim::{CorpusConfig, EngineKind, SimWeb};

fn setup() -> (Database, EngineRegistry, Arc<ReqPump>) {
    let web = SimWeb::build(CorpusConfig::small());
    let mut engines = EngineRegistry::new();
    engines.register("AV", web.engine(EngineKind::AltaVista), true);
    engines.register("Google", web.engine(EngineKind::Google), false);
    let pump = ReqPump::new(PumpConfig::default());

    let mut db = Database::open_in_memory().unwrap();
    db.run_sql(
        "CREATE TABLE States (Name VARCHAR(32), Population INT, Capital VARCHAR(32))",
        &engines,
        &pump,
        QueryOptions::default(),
    )
    .unwrap();
    let rows: Vec<Tuple> = wsq_websim::data::STATES
        .iter()
        .map(|s| {
            Tuple::new(vec![
                Value::from(s.name),
                Value::Int(s.population),
                Value::from(s.capital),
            ])
        })
        .collect();
    db.insert("States", &rows).unwrap();
    (db, engines, pump)
}

fn opts(mode: ExecutionMode, strategy: PlacementStrategy) -> QueryOptions {
    QueryOptions {
        mode,
        strategy,
        ..Default::default()
    }
}

const Q1: &str = "SELECT Name, Count FROM States, WebCount WHERE Name = T1";
const Q2: &str = "SELECT Name, Count, URL FROM States, WebCount, WebPages \
                  WHERE Name = WebCount.T1 AND Name = WebPages.T1 AND WebPages.Rank <= 2";
/// WebPages feeding its URL into a second WebCount: a genuinely chained
/// (two-wave) asynchronous plan.
const CHAINED: &str = "SELECT S.URL, WC.Count FROM States, WebPages S, WebCount WC \
                       WHERE Name = S.T1 AND S.Rank <= 2 AND WC.T1 = S.URL";

#[test]
fn call_counts_match_the_workload() {
    let (db, engines, _pump) = setup();
    let p = CostParams::default();
    let e1 = db
        .estimate_query(
            Q1,
            &engines,
            opts(ExecutionMode::Asynchronous, PlacementStrategy::Full),
            &p,
        )
        .unwrap();
    assert_eq!(e1.external_calls, 50.0, "one WebCount call per state");
    assert_eq!(e1.waves, 1, "all calls in one concurrent wave");

    let e2 = db
        .estimate_query(
            Q2,
            &engines,
            opts(ExecutionMode::Asynchronous, PlacementStrategy::Full),
            &p,
        )
        .unwrap();
    assert_eq!(e2.external_calls, 100.0, "two calls per state");
    assert_eq!(e2.waves, 1, "independent bindings consolidate to one wave");
}

#[test]
fn sync_is_predicted_slower_and_monotone_in_calls() {
    let (db, engines, _pump) = setup();
    let p = CostParams::default();
    let async_opts = opts(ExecutionMode::Asynchronous, PlacementStrategy::Full);
    let e1 = db.estimate_query(Q1, &engines, async_opts, &p).unwrap();
    let e2 = db.estimate_query(Q2, &engines, async_opts, &p).unwrap();
    assert!(e1.sync_secs > e1.async_secs * 5.0);
    assert!(e2.sync_secs > e1.sync_secs, "more calls → slower sync");
    assert!(
        e2.improvement() > e1.improvement(),
        "improvement grows with call count (Table 1 shape): {} vs {}",
        e2.improvement(),
        e1.improvement()
    );
}

#[test]
fn synchronous_plan_costs_have_no_overlap() {
    let (db, engines, _pump) = setup();
    let p = CostParams::default();
    let e = db
        .estimate_query(
            Q1,
            &engines,
            opts(ExecutionMode::Synchronous, PlacementStrategy::Full),
            &p,
        )
        .unwrap();
    // A synchronous plan's calls never meet a ReqSync: the model treats
    // them as one blocking "wave" per call stream — sync == async estimate.
    assert_eq!(e.external_calls, 50.0);
    assert!(e.async_secs >= e.sync_secs * 0.9, "{e:?}");
}

#[test]
fn chained_bindings_cost_an_extra_wave() {
    let (db, engines, _pump) = setup();
    let p = CostParams::default();
    let full = db
        .estimate_query(
            CHAINED,
            &engines,
            opts(ExecutionMode::Asynchronous, PlacementStrategy::Full),
            &p,
        )
        .unwrap();
    assert_eq!(
        full.waves, 2,
        "URL→T1 dependency forces two sequential latency waves"
    );
    let q1 = db
        .estimate_query(
            Q1,
            &engines,
            opts(ExecutionMode::Asynchronous, PlacementStrategy::Full),
            &p,
        )
        .unwrap();
    assert!(full.async_secs > q1.async_secs);
}

#[test]
fn insertion_only_never_beats_full_percolation() {
    let (db, engines, _pump) = setup();
    let p = CostParams::default();
    for q in [Q1, Q2, CHAINED] {
        let full = db
            .estimate_query(
                q,
                &engines,
                opts(ExecutionMode::Asynchronous, PlacementStrategy::Full),
                &p,
            )
            .unwrap();
        let pinned = db
            .estimate_query(
                q,
                &engines,
                opts(
                    ExecutionMode::Asynchronous,
                    PlacementStrategy::InsertionOnly,
                ),
                &p,
            )
            .unwrap();
        assert!(
            pinned.async_secs >= full.async_secs - 1e-9,
            "{q}: pinned {} < full {}",
            pinned.async_secs,
            full.async_secs
        );
        assert_eq!(pinned.external_calls, full.external_calls);
    }
}

#[test]
fn concurrency_cap_raises_async_estimate() {
    let (db, engines, _pump) = setup();
    let wide = CostParams {
        max_concurrent: 64,
        ..CostParams::default()
    };
    let narrow = CostParams {
        max_concurrent: 8,
        ..CostParams::default()
    };
    let o = opts(ExecutionMode::Asynchronous, PlacementStrategy::Full);
    let e_wide = db.estimate_query(Q1, &engines, o, &wide).unwrap();
    let e_narrow = db.estimate_query(Q1, &engines, o, &narrow).unwrap();
    assert!(e_narrow.async_secs > e_wide.async_secs);
    // 50 calls / cap 8 → 7 batches.
    assert!((e_narrow.async_secs / e_wide.async_secs - 7.0).abs() < 0.01);
}

#[test]
fn model_ranking_matches_measured_ranking() {
    // The model's sync-vs-async prediction must match measurement at a
    // latency where the difference is unambiguous.
    let (db, _engines, pump) = setup();
    let web = SimWeb::build(CorpusConfig::small());
    let mut lat_engines = EngineRegistry::new();
    let lat = wsq_websim::LatencyModel::Fixed(std::time::Duration::from_millis(10));
    lat_engines.register(
        "AV",
        web.engine_with_latency(EngineKind::AltaVista, lat),
        true,
    );
    pump.register_service("AV", web.engine_with_latency(EngineKind::AltaVista, lat));

    let p = CostParams {
        latency_secs: 0.010,
        ..CostParams::default()
    };
    let est = db
        .estimate_query(
            Q1,
            &lat_engines,
            opts(ExecutionMode::Asynchronous, PlacementStrategy::Full),
            &p,
        )
        .unwrap();

    let stmt = match wsq_sql::parse_one(Q1).unwrap() {
        wsq_sql::Statement::Select(s) => s,
        _ => unreachable!(),
    };
    let t0 = std::time::Instant::now();
    db.run_query(
        &stmt,
        &lat_engines,
        &pump,
        opts(ExecutionMode::Synchronous, PlacementStrategy::Full),
    )
    .unwrap();
    let sync_measured = t0.elapsed().as_secs_f64();
    let t0 = std::time::Instant::now();
    db.run_query(
        &stmt,
        &lat_engines,
        &pump,
        opts(ExecutionMode::Asynchronous, PlacementStrategy::Full),
    )
    .unwrap();
    let async_measured = t0.elapsed().as_secs_f64();

    // Directional agreement.
    assert!(est.sync_secs > est.async_secs);
    assert!(sync_measured > async_measured);
    // Sync estimate within 2× of measurement (50 calls × 10 ms = 0.5 s).
    assert!(
        est.sync_secs / sync_measured < 2.0 && sync_measured / est.sync_secs < 2.0,
        "estimated {} vs measured {}",
        est.sync_secs,
        sync_measured
    );
}
