//! View tests: definition, expansion (including Web-supported views —
//! "WebCount can be thought of as an aggregate view over WebPages", §1),
//! persistence, and error handling.

use std::sync::Arc;
use wsq_engine::db::{Database, QueryOptions, StatementResult};
use wsq_engine::engines::EngineRegistry;
use wsq_pump::{PumpConfig, ReqPump};
use wsq_websim::{CorpusConfig, EngineKind, SimWeb};

struct H {
    db: Database,
    engines: EngineRegistry,
    pump: Arc<ReqPump>,
}

fn h() -> H {
    let web = SimWeb::build(CorpusConfig::small());
    let mut engines = EngineRegistry::new();
    engines.register("AV", web.engine(EngineKind::AltaVista), true);
    let pump = ReqPump::new(PumpConfig::default());
    pump.register_service("AV", web.engine(EngineKind::AltaVista));
    let mut t = H {
        db: Database::open_in_memory().unwrap(),
        engines,
        pump,
    };
    t.run(
        "CREATE TABLE States (Name VARCHAR(32), Population INT, Capital VARCHAR(32));\
         INSERT INTO States VALUES \
         ('California', 32667000, 'Sacramento'), ('Texas', 19760000, 'Austin'),\
         ('Wyoming', 481000, 'Cheyenne'), ('Vermont', 591000, 'Montpelier')",
    );
    t
}

impl H {
    fn run(&mut self, sql: &str) -> Vec<StatementResult> {
        self.db
            .run_sql(sql, &self.engines, &self.pump, QueryOptions::default())
            .unwrap_or_else(|e| panic!("{sql}: {e}"))
    }

    fn rows(&mut self, sql: &str) -> Vec<String> {
        match self.run(sql).remove(0) {
            StatementResult::Rows(r) => r.rows.iter().map(|t| t.to_string()).collect(),
            other => panic!("expected rows, got {other:?}"),
        }
    }

    fn err(&mut self, sql: &str) -> String {
        match self
            .db
            .run_sql(sql, &self.engines, &self.pump, QueryOptions::default())
        {
            Err(e) => e.to_string(),
            Ok(_) => panic!("statement unexpectedly succeeded: {sql}"),
        }
    }
}

#[test]
fn basic_view_definition_and_query() {
    let mut t = h();
    t.run("CREATE VIEW Big AS SELECT Name, Population FROM States WHERE Population > 10000000");
    assert_eq!(
        t.rows("SELECT Name FROM Big ORDER BY Name"),
        vec!["<California>", "<Texas>"]
    );
    // Views join with tables and carry their alias.
    assert_eq!(
        t.rows(
            "SELECT b.Name, States.Capital FROM Big b, States \
             WHERE b.Name = States.Name ORDER BY b.Name"
        ),
        vec!["<California, Sacramento>", "<Texas, Austin>"]
    );
    // Predicates over view columns work.
    assert_eq!(
        t.rows("SELECT Name FROM Big WHERE Population < 20000000"),
        vec!["<Texas>"]
    );
}

#[test]
fn views_over_views_and_aggregates() {
    let mut t = h();
    t.run("CREATE VIEW Small AS SELECT Name, Population FROM States WHERE Population < 1000000");
    t.run("CREATE VIEW SmallStats AS SELECT COUNT(*) AS n, SUM(Population) AS total FROM Small");
    let rows = t.rows("SELECT n, total FROM SmallStats");
    assert_eq!(rows, vec!["<2, 1072000>"]);
}

#[test]
fn web_supported_view() {
    // A stored view over the virtual tables: per-state Web counts.
    let mut t = h();
    t.run(
        "CREATE VIEW StateCounts AS \
         SELECT Name AS State, Count AS Hits FROM States, WebCount WHERE Name = T1",
    );
    let rows =
        t.rows("SELECT State FROM StateCounts WHERE Hits > 0 ORDER BY Hits DESC, State LIMIT 2");
    assert_eq!(rows, vec!["<California>", "<Texas>"]);
    assert_eq!(t.pump.live_calls(), 0);
    // The asynchronous plan reaches through the view boundary.
    let plan =
        t.db.explain(
            "SELECT State FROM StateCounts",
            &t.engines,
            QueryOptions::default(),
        )
        .unwrap();
    assert!(plan.contains("AEVScan"), "{plan}");
    assert!(plan.contains("ReqSync"), "{plan}");
}

#[test]
fn view_persistence_across_reopen() {
    let dir = tempfile::tempdir().unwrap();
    let engines = EngineRegistry::new();
    let pump = ReqPump::new(PumpConfig::default());
    {
        let mut db = Database::open(dir.path()).unwrap();
        db.run_sql(
            "CREATE TABLE T (x INT); INSERT INTO T VALUES (1), (5), (9);\
             CREATE VIEW BigX AS SELECT x FROM T WHERE x > 2",
            &engines,
            &pump,
            QueryOptions::default(),
        )
        .unwrap();
        db.flush().unwrap();
    }
    let mut db = Database::open(dir.path()).unwrap();
    let results = db
        .run_sql(
            "SELECT x FROM BigX ORDER BY x",
            &engines,
            &pump,
            QueryOptions::default(),
        )
        .unwrap();
    match &results[0] {
        StatementResult::Rows(r) => {
            assert_eq!(r.rows.len(), 2);
            assert_eq!(r.rows[0].get(0).as_int().unwrap(), 5);
        }
        other => panic!("{other:?}"),
    }
    assert_eq!(db.catalog().view_names(), vec!["bigx".to_string()]);
}

#[test]
fn view_error_handling() {
    let mut t = h();
    // Name collisions in both directions.
    t.run("CREATE VIEW V AS SELECT Name FROM States");
    assert!(t.err("CREATE TABLE V (x INT)").contains("view"));
    assert!(t
        .err("CREATE VIEW States AS SELECT 1 FROM States")
        .contains("table"));
    assert!(t
        .err("CREATE VIEW V AS SELECT Name FROM States")
        .contains("exists"));
    // Reserved names.
    assert!(t
        .err("CREATE VIEW WebCount AS SELECT Name FROM States")
        .contains("reserved"));
    // Duplicate output columns rejected at definition time.
    assert!(t
        .err("CREATE VIEW D AS SELECT Name, Name FROM States")
        .contains("duplicate"));
    // Invalid definitions rejected at definition time.
    assert!(t
        .err("CREATE VIEW E AS SELECT Nope FROM States")
        .contains("Nope"));
    // DML against a view fails (it is not a table).
    assert!(!t.err("INSERT INTO V VALUES ('x')").is_empty());
    assert!(!t.err("DELETE FROM V").is_empty());
    // DROP VIEW.
    t.run("DROP VIEW V");
    assert!(t.err("SELECT * FROM V").contains("no such table"));
    assert!(t.err("DROP VIEW V").contains("no such view"));
}

#[test]
fn view_definition_roundtrips_complex_sql() {
    let mut t = h();
    t.run(
        "CREATE VIEW C AS SELECT Capital, COUNT(*) AS n FROM States \
         WHERE Name LIKE '%a%' OR Population BETWEEN 1 AND 600000 \
         GROUP BY Capital HAVING COUNT(*) > 0 ORDER BY Capital LIMIT 10",
    );
    let rows = t.rows("SELECT Capital FROM C ORDER BY Capital LIMIT 2");
    assert_eq!(rows.len(), 2);
}
