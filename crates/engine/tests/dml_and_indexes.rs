//! DML (DELETE / UPDATE) and B+-tree index integration tests.

use std::sync::Arc;
use wsq_engine::db::{Database, QueryOptions, StatementResult};
use wsq_engine::engines::EngineRegistry;
use wsq_pump::{PumpConfig, ReqPump};

struct H {
    db: Database,
    engines: EngineRegistry,
    pump: Arc<ReqPump>,
}

fn h() -> H {
    H {
        db: Database::open_in_memory().unwrap(),
        engines: EngineRegistry::new(),
        pump: ReqPump::new(PumpConfig::default()),
    }
}

impl H {
    fn run(&mut self, sql: &str) -> Vec<StatementResult> {
        self.db
            .run_sql(sql, &self.engines, &self.pump, QueryOptions::default())
            .unwrap_or_else(|e| panic!("{sql}: {e}"))
    }

    fn rows(&mut self, sql: &str) -> Vec<String> {
        match self.run(sql).remove(0) {
            StatementResult::Rows(r) => r.rows.iter().map(|t| t.to_string()).collect(),
            other => panic!("expected rows, got {other:?}"),
        }
    }

    fn affected(&mut self, sql: &str) -> usize {
        match self.run(sql).remove(0) {
            StatementResult::Affected(n) => n,
            other => panic!("expected affected count, got {other:?}"),
        }
    }

    fn setup_people(&mut self) {
        self.run(
            "CREATE TABLE People (Name VARCHAR(32), Age INT, City VARCHAR(32));\
             INSERT INTO People VALUES \
             ('Ann', 30, 'Denver'), ('Bob', 41, 'Boston'), ('Cy', 30, 'Denver'),\
             ('Dee', 25, 'Austin'), ('Eli', 41, 'Denver')",
        );
    }
}

#[test]
fn delete_with_and_without_predicate() {
    let mut t = h();
    t.setup_people();
    assert_eq!(t.affected("DELETE FROM People WHERE Age = 30"), 2);
    assert_eq!(
        t.rows("SELECT Name FROM People ORDER BY Name"),
        vec!["<Bob>", "<Dee>", "<Eli>"]
    );
    assert_eq!(t.affected("DELETE FROM People"), 3);
    assert_eq!(t.rows("SELECT COUNT(*) FROM People"), vec!["<0>"]);
}

#[test]
fn update_values_and_expressions() {
    let mut t = h();
    t.setup_people();
    assert_eq!(
        t.affected("UPDATE People SET Age = Age + 1 WHERE City = 'Denver'"),
        3
    );
    assert_eq!(
        t.rows("SELECT Name, Age FROM People WHERE City = 'Denver' ORDER BY Name"),
        vec!["<Ann, 31>", "<Cy, 31>", "<Eli, 42>"]
    );
    // Multi-column SET; expressions see the OLD row.
    assert_eq!(
        t.affected("UPDATE People SET City = 'Moved', Age = Age * 2 WHERE Name = 'Dee'"),
        1
    );
    assert_eq!(
        t.rows("SELECT Age, City FROM People WHERE Name = 'Dee'"),
        vec!["<50, Moved>"]
    );
}

#[test]
fn update_type_errors_are_rejected() {
    let mut t = h();
    t.setup_people();
    let err =
        t.db.run_sql(
            "UPDATE People SET Age = 'old'",
            &t.engines,
            &t.pump,
            QueryOptions::default(),
        )
        .unwrap_err();
    assert!(err.to_string().contains("is not INT"), "{err}");
    // Unknown column.
    assert!(t
        .db
        .run_sql(
            "UPDATE People SET Nope = 1",
            &t.engines,
            &t.pump,
            QueryOptions::default()
        )
        .is_err());
}

#[test]
fn index_scan_is_chosen_and_correct() {
    let mut t = h();
    t.setup_people();
    t.run("CREATE INDEX ON People (City)");

    let opts = QueryOptions::default();
    let plan =
        t.db.explain(
            "SELECT Name FROM People WHERE City = 'Denver'",
            &t.engines,
            opts,
        )
        .unwrap();
    assert!(
        plan.contains("IndexScan: People (City = 'Denver')"),
        "{plan}"
    );

    let mut names = t.rows("SELECT Name FROM People WHERE City = 'Denver'");
    names.sort();
    assert_eq!(names, vec!["<Ann>", "<Cy>", "<Eli>"]);

    // Non-indexed predicates still use a sequential scan.
    let plan =
        t.db.explain("SELECT Name FROM People WHERE Age = 30", &t.engines, opts)
            .unwrap();
    assert!(plan.contains("Scan: People"), "{plan}");
    assert!(!plan.contains("IndexScan"));
}

#[test]
fn index_is_maintained_by_dml() {
    let mut t = h();
    t.setup_people();
    t.run("CREATE INDEX ON People (City)");

    t.run("INSERT INTO People VALUES ('Fay', 22, 'Denver')");
    t.run("DELETE FROM People WHERE Name = 'Ann'");
    t.run("UPDATE People SET City = 'Boston' WHERE Name = 'Cy'");

    let mut denver = t.rows("SELECT Name FROM People WHERE City = 'Denver'");
    denver.sort();
    assert_eq!(denver, vec!["<Eli>", "<Fay>"]);
    let mut boston = t.rows("SELECT Name FROM People WHERE City = 'Boston'");
    boston.sort();
    assert_eq!(boston, vec!["<Bob>", "<Cy>"]);
}

#[test]
fn index_agrees_with_seq_scan_on_int_keys() {
    let mut t = h();
    t.run("CREATE TABLE Nums (K INT, V VARCHAR(8))");
    let mut values = Vec::new();
    for i in 0..500 {
        values.push(format!("({}, 'v{}')", i % 50, i));
    }
    t.run(&format!("INSERT INTO Nums VALUES {}", values.join(",")));
    let baseline = {
        let mut r = t.rows("SELECT V FROM Nums WHERE K = 17");
        r.sort();
        r
    };
    t.run("CREATE INDEX ON Nums (K)");
    let plan =
        t.db.explain(
            "SELECT V FROM Nums WHERE K = 17",
            &t.engines,
            QueryOptions::default(),
        )
        .unwrap();
    assert!(plan.contains("IndexScan"));
    let mut indexed = t.rows("SELECT V FROM Nums WHERE K = 17");
    indexed.sort();
    assert_eq!(indexed, baseline);
    assert_eq!(indexed.len(), 10);
}

#[test]
fn drop_index_falls_back_to_scan() {
    let mut t = h();
    t.setup_people();
    t.run("CREATE INDEX ON People (City)");
    t.run("DROP INDEX ON People (City)");
    let plan =
        t.db.explain(
            "SELECT Name FROM People WHERE City = 'Denver'",
            &t.engines,
            QueryOptions::default(),
        )
        .unwrap();
    assert!(!plan.contains("IndexScan"));
    assert_eq!(
        t.rows("SELECT COUNT(*) FROM People WHERE City = 'Denver'"),
        vec!["<3>"]
    );
}

#[test]
fn indexes_persist_across_reopen() {
    let dir = tempfile::tempdir().unwrap();
    let engines = EngineRegistry::new();
    let pump = ReqPump::new(PumpConfig::default());
    {
        let mut db = Database::open(dir.path()).unwrap();
        db.run_sql(
            "CREATE TABLE T (K VARCHAR(16), V INT);\
             INSERT INTO T VALUES ('a', 1), ('b', 2), ('a', 3);\
             CREATE INDEX ON T (K)",
            &engines,
            &pump,
            QueryOptions::default(),
        )
        .unwrap();
        db.flush().unwrap();
    }
    let mut db = Database::open(dir.path()).unwrap();
    let plan = db
        .explain(
            "SELECT V FROM T WHERE K = 'a'",
            &engines,
            QueryOptions::default(),
        )
        .unwrap();
    assert!(plan.contains("IndexScan"), "{plan}");
    let results = db
        .run_sql(
            "SELECT V FROM T WHERE K = 'a'",
            &engines,
            &pump,
            QueryOptions::default(),
        )
        .unwrap();
    match &results[0] {
        StatementResult::Rows(r) => assert_eq!(r.rows.len(), 2),
        other => panic!("{other:?}"),
    }
}

#[test]
fn show_tables_and_describe() {
    let mut t = h();
    t.setup_people();
    t.run("CREATE INDEX ON People (City)");
    assert_eq!(t.rows("SHOW TABLES"), vec!["<people>"]);
    let desc = t.rows("DESCRIBE People");
    assert_eq!(
        desc,
        vec!["<Name, VARCHAR, 0>", "<Age, INT, 0>", "<City, VARCHAR, 1>"]
    );
    assert!(t
        .db
        .run_sql(
            "DESCRIBE Nope",
            &t.engines,
            &t.pump,
            QueryOptions::default()
        )
        .is_err());
}

#[test]
fn insert_select_materializes_query_results() {
    let mut t = h();
    t.setup_people();
    t.run("CREATE TABLE Denverites (Name VARCHAR(32), Age INT)");
    assert_eq!(
        t.affected("INSERT INTO Denverites SELECT Name, Age FROM People WHERE City = 'Denver'"),
        3
    );
    assert_eq!(
        t.rows("SELECT Name FROM Denverites ORDER BY Name"),
        vec!["<Ann>", "<Cy>", "<Eli>"]
    );
    // Arity mismatch is rejected; nothing is inserted.
    assert!(t
        .db
        .run_sql(
            "INSERT INTO Denverites SELECT Name FROM People",
            &t.engines,
            &t.pump,
            QueryOptions::default()
        )
        .is_err());
    assert_eq!(t.rows("SELECT COUNT(*) FROM Denverites"), vec!["<3>"]);
    // Type mismatch rejected too.
    assert!(t
        .db
        .run_sql(
            "INSERT INTO Denverites SELECT Age, Age FROM People",
            &t.engines,
            &t.pump,
            QueryOptions::default()
        )
        .is_err());
}

#[test]
fn insert_select_materializes_web_results() {
    use wsq_websim::{CorpusConfig, EngineKind, SimWeb};
    let web = SimWeb::build(CorpusConfig::small());
    let mut t = h();
    t.engines
        .register("AV", web.engine(EngineKind::AltaVista), true);
    t.pump
        .register_service("AV", web.engine(EngineKind::AltaVista));
    t.run(
        "CREATE TABLE Places (Name VARCHAR(32));\
         INSERT INTO Places VALUES ('Colorado'), ('Utah');\
         CREATE TABLE WebCache (Term VARCHAR(32), Hits INT)",
    );
    // Materialize live Web counts into a local cache table — the natural
    // WSQ companion to the [HN96]-style result cache.
    assert_eq!(
        t.affected("INSERT INTO WebCache SELECT Name, Count FROM Places, WebCount WHERE Name = T1"),
        2
    );
    let rows = t.rows("SELECT Term FROM WebCache WHERE Hits > 0 ORDER BY Term");
    assert_eq!(rows, vec!["<Colorado>", "<Utah>"]);
}

#[test]
fn index_on_join_column_used_in_wsq_query() {
    // An indexed lookup feeding a dependent join: the WSQ machinery and
    // the index access path compose.
    use wsq_websim::{CorpusConfig, EngineKind, SimWeb};
    let web = SimWeb::build(CorpusConfig::small());
    let mut t = h();
    t.engines
        .register("AV", web.engine(EngineKind::AltaVista), true);
    t.pump
        .register_service("AV", web.engine(EngineKind::AltaVista));
    t.run("CREATE TABLE S (Name VARCHAR(32))");
    t.run("INSERT INTO S VALUES ('Colorado'), ('Utah'), ('Texas')");
    t.run("CREATE INDEX ON S (Name)");
    let rows = t.rows("SELECT Name, Count FROM S, WebCount WHERE S.Name = 'Utah' AND Name = T1");
    assert_eq!(rows.len(), 1);
    assert!(rows[0].starts_with("<Utah, "));
    let plan =
        t.db.explain(
            "SELECT Name, Count FROM S, WebCount WHERE S.Name = 'Utah' AND Name = T1",
            &t.engines,
            QueryOptions::default(),
        )
        .unwrap();
    assert!(plan.contains("IndexScan"), "{plan}");
    assert!(plan.contains("AEVScan"));
}
