//! Volcano-style executors (Graefe's iterator model, as in the paper's
//! figures): every operator supports `open` / `next` / `close`.

mod basic;
mod external;
pub mod instrument;
mod join;
mod parallel;
mod reqsync;
#[cfg(test)]
mod tests;

pub use basic::{
    AggregateExec, DistinctExec, FilterExec, IndexScanExec, LimitExec, ProjectExec, SeqScanExec,
    SortExec, ValuesExec,
};
pub use external::{AEVScanExec, EVScanExec};
pub use instrument::{Instrumentation, Instrumented, OpCounters, OpStats};
pub use join::{DependentJoinExec, NestedLoopJoinExec};
pub use parallel::ParallelDependentJoinExec;
pub use reqsync::ReqSyncExec;

use crate::engines::EngineRegistry;
use crate::plan::PhysPlan;
use std::sync::Arc;
use wsq_common::{Result, Schema, Tuple, Value, WsqError};
use wsq_pump::ReqPump;
use wsq_storage::heap::HeapFile;

/// Provides stored-table access to scan executors.
pub trait TableSource {
    /// The heap file and (unqualified) schema of a stored table.
    fn table(&self, name: &str) -> Result<(Arc<HeapFile>, Schema)>;
    /// The B+-tree index on `table.column`, if one exists.
    fn table_index(&self, _table: &str, _column: &str) -> Option<Arc<wsq_storage::BTree>> {
        None
    }
}

/// Everything executors need at build/run time.
pub struct ExecContext<'a> {
    /// Stored tables.
    pub tables: &'a dyn TableSource,
    /// The global request pump (asynchronous iteration).
    pub pump: Arc<ReqPump>,
    /// Registered search engines.
    pub engines: &'a EngineRegistry,
}

/// The iterator interface every physical operator implements.
pub trait Executor {
    /// Output schema.
    fn schema(&self) -> &Schema;
    /// (Re)initialize; must be callable repeatedly (inner sides of joins
    /// are re-opened).
    fn open(&mut self) -> Result<()>;
    /// Produce the next tuple, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Tuple>>;
    /// Release resources. Default: nothing to do.
    fn close(&mut self) -> Result<()> {
        Ok(())
    }
    /// Supply fresh outer bindings (external virtual scans under a
    /// dependent join only).
    fn rebind(&mut self, _values: &[Value]) -> Result<()> {
        Err(WsqError::Exec(
            "this operator does not accept bindings".to_string(),
        ))
    }
}

/// Build an executor tree from a physical plan.
pub fn build(plan: &PhysPlan, ctx: &ExecContext<'_>) -> Result<Box<dyn Executor>> {
    build_with(plan, ctx, None, 0)
}

/// Build an executor tree with EXPLAIN-ANALYZE instrumentation: every
/// operator is wrapped in an [`Instrumented`] counter registered with
/// `instr` in plan pre-order.
pub fn build_instrumented(
    plan: &PhysPlan,
    ctx: &ExecContext<'_>,
    instr: &Instrumentation,
) -> Result<Box<dyn Executor>> {
    build_with(plan, ctx, Some(instr), 0)
}

fn build_with(
    plan: &PhysPlan,
    ctx: &ExecContext<'_>,
    instr: Option<&Instrumentation>,
    depth: usize,
) -> Result<Box<dyn Executor>> {
    // Register BEFORE recursing so the report lists operators in plan
    // pre-order (parent above children, matching EXPLAIN).
    let counters = instr.map(|ins| {
        let label = plan
            .display()
            .lines()
            .next()
            .unwrap_or_default()
            .trim()
            .to_string();
        ins.register(depth, label)
    });
    let exec = build_node(plan, ctx, instr, depth)?;
    Ok(match counters {
        Some(counters) => Box::new(Instrumented::new(exec, counters)),
        None => exec,
    })
}

fn build_node(
    plan: &PhysPlan,
    ctx: &ExecContext<'_>,
    instr: Option<&Instrumentation>,
    depth: usize,
) -> Result<Box<dyn Executor>> {
    let build = |p: &PhysPlan| build_with(p, ctx, instr, depth + 1);
    match plan {
        PhysPlan::SeqScan { table, alias, .. } => {
            let (heap, schema) = ctx.tables.table(table)?;
            Ok(Box::new(SeqScanExec::new(
                heap,
                schema.with_qualifier(alias),
            )))
        }
        PhysPlan::IndexScan {
            table,
            alias,
            column,
            key,
            ..
        } => {
            let (heap, schema) = ctx.tables.table(table)?;
            let tree = ctx
                .tables
                .table_index(table, column)
                .ok_or_else(|| WsqError::Plan(format!("no index on {table}({column})")))?;
            Ok(Box::new(basic::IndexScanExec::new(
                heap,
                tree,
                schema.with_qualifier(alias),
                key.clone(),
            )?))
        }
        PhysPlan::Values { schema, rows } => Ok(Box::new(ValuesExec::new(
            schema.clone(),
            rows.iter().map(|r| Tuple::new(r.clone())).collect(),
        ))),
        PhysPlan::EVScan(spec) => {
            let (_, entry) = ctx.engines.get(&spec.engine)?;
            Ok(Box::new(EVScanExec::new(
                spec.clone(),
                entry.service.clone(),
            )))
        }
        PhysPlan::AEVScan(spec) => Ok(Box::new(AEVScanExec::new(spec.clone(), ctx.pump.clone()))),
        PhysPlan::Filter { input, predicate } => {
            let child = build(input)?;
            Ok(Box::new(FilterExec::new(child, predicate)?))
        }
        PhysPlan::Project {
            input,
            items,
            schema,
        } => {
            let child = build(input)?;
            Ok(Box::new(ProjectExec::new(child, items, schema.clone())?))
        }
        PhysPlan::DependentJoin { left, right } => {
            let l = build(left)?;
            let r = build(right)?;
            match right.as_ref() {
                // Only the asynchronous scan can profit from prefetch
                // (the pump coalesces the demand-side registration onto
                // the prefetched call); whether it actually engages is
                // decided by the spec's stamped hint inside `with_pump`.
                PhysPlan::AEVScan(s) => Ok(Box::new(DependentJoinExec::with_pump(
                    l,
                    r,
                    s,
                    ctx.pump.clone(),
                )?)),
                PhysPlan::EVScan(s) => Ok(Box::new(DependentJoinExec::new(l, r, s)?)),
                other => Err(WsqError::Plan(format!(
                    "dependent join inner must be a virtual scan, got:\n{other}"
                ))),
            }
        }
        PhysPlan::ParallelDependentJoin {
            left,
            spec,
            threads,
        } => {
            let l = build(left)?;
            let (_, entry) = ctx.engines.get(&spec.engine)?;
            Ok(Box::new(ParallelDependentJoinExec::new(
                l,
                spec.clone(),
                entry.service.clone(),
                *threads,
            )?))
        }
        PhysPlan::NestedLoopJoin {
            left,
            right,
            predicate,
        } => {
            let l = build(left)?;
            let r = build(right)?;
            Ok(Box::new(NestedLoopJoinExec::new(l, r, Some(predicate))?))
        }
        PhysPlan::CrossProduct { left, right } => {
            let l = build(left)?;
            let r = build(right)?;
            Ok(Box::new(NestedLoopJoinExec::new(l, r, None)?))
        }
        PhysPlan::Sort { input, keys } => {
            let child = build(input)?;
            Ok(Box::new(SortExec::new(child, keys)?))
        }
        PhysPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let child = build(input)?;
            Ok(Box::new(AggregateExec::new(
                child,
                group_by,
                aggs,
                plan.schema(),
            )?))
        }
        PhysPlan::Distinct { input } => {
            let child = build(input)?;
            Ok(Box::new(DistinctExec::new(child)))
        }
        PhysPlan::Limit { input, n } => {
            let child = build(input)?;
            Ok(Box::new(LimitExec::new(child, *n)))
        }
        PhysPlan::ReqSync {
            input, mode, cap, ..
        } => {
            let child = build(input)?;
            Ok(Box::new(ReqSyncExec::with_cap(
                child,
                ctx.pump.clone(),
                *mode,
                *cap,
            )))
        }
    }
}

/// Run an executor to completion, collecting all tuples.
pub fn collect(exec: &mut dyn Executor) -> Result<Vec<Tuple>> {
    exec.open()?;
    let mut out = Vec::new();
    while let Some(t) = exec.next()? {
        out.push(t);
    }
    exec.close()?;
    Ok(out)
}
