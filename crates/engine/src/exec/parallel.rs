//! The *parallel dependent join* — the heavyweight alternative the paper
//! argues against (§4.2) and proposes to compare against as future work.
//!
//! "One might consider simply modifying the dependent join operator to
//! work in parallel: change the dependent join to launch many threads,
//! each one for joining one left-hand input tuple with the right-hand
//! EVScan. While this approach will provide maximal concurrency for many
//! simple queries, it prevents concurrency among requests from multiple
//! dependent joins: the query processor will block until the first join
//! completes." (§4.5.4 Example 1)
//!
//! This executor implements exactly that design: `open` drains the outer
//! side, then a pool of genuinely blocking OS threads performs one search
//! per outer tuple. Both documented properties hold by construction —
//! within one join the calls overlap (up to the thread cap), and a stack
//! of joins serializes join-by-join, which the mode-comparison ablation
//! quantifies against asynchronous iteration.

use super::external::materialize_result;
use super::Executor;
use crate::plan::{EvBinding, EvSpec, VTableKind};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use wsq_common::{Result, Schema, Tuple, Value, WsqError};
use wsq_pump::{blocking_execute, RequestKind, SearchRequest, SearchService};

enum BindingSlot {
    Const(Value),
    Idx(usize),
}

/// Thread-per-request dependent join over a virtual table.
pub struct ParallelDependentJoinExec {
    left: Box<dyn Executor>,
    spec: EvSpec,
    service: Arc<dyn SearchService>,
    slots: Vec<BindingSlot>,
    threads: usize,
    schema: Schema,
    output: VecDeque<Tuple>,
}

impl ParallelDependentJoinExec {
    /// Join `left` against `spec` using up to `threads` blocking threads.
    pub fn new(
        left: Box<dyn Executor>,
        spec: EvSpec,
        service: Arc<dyn SearchService>,
        threads: usize,
    ) -> Result<Self> {
        let left_schema = left.schema().clone();
        let slots = spec
            .bindings
            .iter()
            .map(|b| match b {
                EvBinding::Const(v) => Ok(BindingSlot::Const(v.clone())),
                EvBinding::Column(c) => Ok(BindingSlot::Idx(
                    left_schema.resolve(c.qualifier.as_deref(), &c.name)?,
                )),
            })
            .collect::<Result<Vec<_>>>()?;
        let schema = left_schema.join(&spec.schema());
        Ok(ParallelDependentJoinExec {
            left,
            spec,
            service,
            slots,
            threads: threads.max(1),
            schema,
            output: VecDeque::new(),
        })
    }
}

impl Executor for ParallelDependentJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.output.clear();
        // Drain the outer side — the parallel join is a pipeline breaker,
        // which is precisely the §4.5.4 criticism.
        self.left.open()?;
        let mut outer: Vec<Tuple> = Vec::new();
        while let Some(t) = self.left.next()? {
            outer.push(t);
        }
        self.left.close()?;

        // One blocking search per outer tuple, claimed from a shared
        // cursor by up to `threads` worker threads.
        let bindings: Vec<Vec<Value>> = outer
            .iter()
            .map(|t| {
                self.slots
                    .iter()
                    .map(|s| match s {
                        BindingSlot::Const(v) => v.clone(),
                        BindingSlot::Idx(i) => t.get(*i).clone(),
                    })
                    .collect()
            })
            .collect();

        let spec = &self.spec;
        let service = &self.service;
        let cursor = AtomicUsize::new(0);
        let results: Vec<parking_lot::Mutex<Option<Result<Vec<Tuple>>>>> = (0..outer.len())
            .map(|_| parking_lot::Mutex::new(None))
            .collect();

        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(outer.len().max(1)) {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= outer.len() {
                        return;
                    }
                    let expr = spec.instantiate(&bindings[i]);
                    let req = SearchRequest {
                        engine: spec.engine.clone(),
                        expr: expr.clone(),
                        kind: match spec.kind {
                            VTableKind::WebCount => RequestKind::Count,
                            VTableKind::WebPages => RequestKind::Pages {
                                max_rank: spec.rank_limit,
                            },
                        },
                    };
                    let rows = blocking_execute(service.as_ref(), &req).map(|result| {
                        let mut prefix = Vec::with_capacity(bindings[i].len() + 1);
                        prefix.push(Value::Str(expr.clone()));
                        prefix.extend(bindings[i].iter().cloned());
                        materialize_result(spec, &prefix, &result)
                    });
                    *results[i].lock() = Some(rows);
                });
            }
        });

        for (outer_tuple, cell) in outer.iter().zip(results) {
            let rows = cell
                .into_inner()
                .ok_or_else(|| WsqError::Exec("parallel join worker vanished".to_string()))??;
            for r in rows {
                self.output.push_back(outer_tuple.join(&r));
            }
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        Ok(self.output.pop_front())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{collect, ValuesExec};
    use std::time::{Duration, Instant};
    use wsq_common::{Column, DataType};
    use wsq_pump::{SearchResult, ServiceReply};
    use wsq_sql::ast::ColumnRef;

    struct Slow;
    impl SearchService for Slow {
        fn execute(&self, req: &SearchRequest) -> ServiceReply {
            ServiceReply {
                result: Ok(SearchResult::Count(req.expr.len() as u64)),
                latency: Duration::from_millis(25),
            }
        }
    }

    fn spec() -> EvSpec {
        EvSpec {
            kind: VTableKind::WebCount,
            engine: "AV".into(),
            alias: "WC".into(),
            template: None,
            bindings: vec![EvBinding::Column(ColumnRef {
                qualifier: None,
                name: "term".into(),
            })],
            rank_limit: 19,
            supports_near: true,
            prefetch: crate::plan::PrefetchHint::default(),
        }
    }

    fn terms(n: usize) -> Box<dyn Executor> {
        let schema = Schema::new(vec![Column::new("term", DataType::Varchar)]);
        Box::new(ValuesExec::new(
            schema,
            (0..n)
                .map(|i| Tuple::new(vec![Value::from(format!("term{i:02}"))]))
                .collect(),
        ))
    }

    #[test]
    fn parallel_join_overlaps_calls_within_one_join() {
        let mut join =
            ParallelDependentJoinExec::new(terms(16), spec(), Arc::new(Slow), 16).unwrap();
        let t0 = Instant::now();
        let out = collect(&mut join).unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(out.len(), 16);
        // 16 calls × 25 ms sequential would be 400 ms; with 16 threads it
        // is roughly one latency.
        assert!(elapsed < Duration::from_millis(200), "{elapsed:?}");
        // Rows carry the filled Count column (term is 6 chars).
        assert_eq!(out[0].get(3).as_int().unwrap(), 6);
    }

    #[test]
    fn thread_cap_serializes() {
        let mut join = ParallelDependentJoinExec::new(terms(8), spec(), Arc::new(Slow), 2).unwrap();
        let t0 = Instant::now();
        collect(&mut join).unwrap();
        // 8 calls / 2 threads → ≥ 4 sequential rounds of 25 ms.
        assert!(t0.elapsed() >= Duration::from_millis(95));
    }

    #[test]
    fn empty_outer_is_fine() {
        let mut join = ParallelDependentJoinExec::new(terms(0), spec(), Arc::new(Slow), 4).unwrap();
        assert!(collect(&mut join).unwrap().is_empty());
    }
}
