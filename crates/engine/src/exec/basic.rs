//! Scans, selection, projection, sorting, aggregation, distinct, limit.

use super::Executor;
use crate::expr::{compile, CExpr};
use std::collections::HashMap;
use std::sync::Arc;
use wsq_common::{GroupKey, Result, Schema, Tuple, Value, WsqError};
use wsq_sql::ast::{AggFunc, ColumnRef, Expr, Literal};
use wsq_storage::codec;
use wsq_storage::heap::HeapFile;

/// Sequential scan of a stored heap file.
pub struct SeqScanExec {
    heap: Arc<HeapFile>,
    /// Qualified output schema (alias applied).
    schema: Schema,
    /// Unqualified storage schema for decoding.
    page: u32,
    slot: u16,
}

impl SeqScanExec {
    /// Scan `heap`, producing tuples under `schema` (already qualified).
    pub fn new(heap: Arc<HeapFile>, schema: Schema) -> Self {
        SeqScanExec {
            heap,
            schema,
            page: 1,
            slot: 0,
        }
    }
}

impl Executor for SeqScanExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.page = 1;
        self.slot = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        match self.heap.next_from(self.page, self.slot)? {
            Some((rid, bytes)) => {
                self.page = rid.page.0;
                self.slot = rid.slot.0 + 1;
                Ok(Some(codec::decode(&self.schema, &bytes)?))
            }
            None => Ok(None),
        }
    }
}

/// B+-tree equality lookup: resolve rids through the index, then fetch
/// the rows from the heap.
pub struct IndexScanExec {
    heap: Arc<HeapFile>,
    tree: Arc<wsq_storage::BTree>,
    schema: Schema,
    key: Vec<u8>,
    rids: Vec<wsq_storage::Rid>,
    pos: usize,
}

impl IndexScanExec {
    /// Scan rows of `heap` whose indexed column equals `key`.
    pub fn new(
        heap: Arc<HeapFile>,
        tree: Arc<wsq_storage::BTree>,
        schema: Schema,
        key: Value,
    ) -> Result<Self> {
        Ok(IndexScanExec {
            heap,
            tree,
            schema,
            key: wsq_storage::codec::encode_key(&key)?,
            rids: Vec::new(),
            pos: 0,
        })
    }
}

impl Executor for IndexScanExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.rids = self.tree.search(&self.key)?;
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if self.pos >= self.rids.len() {
            return Ok(None);
        }
        let rid = self.rids[self.pos];
        self.pos += 1;
        let bytes = self.heap.get(rid)?;
        Ok(Some(codec::decode(&self.schema, &bytes)?))
    }
}

/// Literal rows.
pub struct ValuesExec {
    schema: Schema,
    rows: Vec<Tuple>,
    pos: usize,
}

impl ValuesExec {
    /// Emit `rows` under `schema`.
    pub fn new(schema: Schema, rows: Vec<Tuple>) -> Self {
        ValuesExec {
            schema,
            rows,
            pos: 0,
        }
    }
}

impl Executor for ValuesExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if self.pos < self.rows.len() {
            self.pos += 1;
            Ok(Some(self.rows[self.pos - 1].clone()))
        } else {
            Ok(None)
        }
    }
}

/// Selection.
pub struct FilterExec {
    child: Box<dyn Executor>,
    predicate: CExpr,
    schema: Schema,
}

impl FilterExec {
    /// Filter `child` by `predicate` (compiled against the child schema).
    pub fn new(child: Box<dyn Executor>, predicate: &Expr) -> Result<Self> {
        let schema = child.schema().clone();
        let predicate = compile(predicate, &schema)?;
        Ok(FilterExec {
            child,
            predicate,
            schema,
        })
    }
}

impl Executor for FilterExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        while let Some(t) = self.child.next()? {
            if self.predicate.eval_bool(&t)? {
                return Ok(Some(t));
            }
        }
        Ok(None)
    }

    fn close(&mut self) -> Result<()> {
        self.child.close()
    }
}

/// Projection (expressions + renaming).
pub struct ProjectExec {
    child: Box<dyn Executor>,
    exprs: Vec<CExpr>,
    schema: Schema,
}

impl ProjectExec {
    /// Project `items` out of `child`.
    pub fn new(child: Box<dyn Executor>, items: &[(Expr, String)], schema: Schema) -> Result<Self> {
        let in_schema = child.schema();
        let exprs = items
            .iter()
            .map(|(e, _)| compile(e, in_schema))
            .collect::<Result<Vec<_>>>()?;
        Ok(ProjectExec {
            child,
            exprs,
            schema,
        })
    }
}

impl Executor for ProjectExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        match self.child.next()? {
            Some(t) => {
                let mut vals = Vec::with_capacity(self.exprs.len());
                for e in &self.exprs {
                    vals.push(e.eval(&t)?);
                }
                Ok(Some(Tuple::new(vals)))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self) -> Result<()> {
        self.child.close()
    }
}

/// Materializing sort.
pub struct SortExec {
    child: Box<dyn Executor>,
    keys: Vec<(CExpr, bool)>,
    schema: Schema,
    sorted: Vec<Tuple>,
    pos: usize,
}

impl SortExec {
    /// Sort `child` by `keys` (`(expr, descending)`). An integer literal
    /// key is an ordinal (`ORDER BY 2` = second output column).
    pub fn new(child: Box<dyn Executor>, keys: &[(Expr, bool)]) -> Result<Self> {
        let schema = child.schema().clone();
        let keys = keys
            .iter()
            .map(|(e, desc)| {
                let c = match e {
                    Expr::Literal(Literal::Int(k)) if *k >= 1 && (*k as usize) <= schema.len() => {
                        CExpr::Column(*k as usize - 1)
                    }
                    other => compile(other, &schema)?,
                };
                Ok((c, *desc))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(SortExec {
            child,
            keys,
            schema,
            sorted: Vec::new(),
            pos: 0,
        })
    }
}

impl Executor for SortExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.child.open()?;
        let mut rows: Vec<(Vec<Value>, Tuple)> = Vec::new();
        while let Some(t) = self.child.next()? {
            let mut key = Vec::with_capacity(self.keys.len());
            for (e, _) in &self.keys {
                key.push(e.eval(&t)?);
            }
            rows.push((key, t));
        }
        self.child.close()?;
        // Validate all keys are comparable up front (placeholders would be
        // a clash-rule violation), then sort infallibly. The sort is
        // stable, so equal keys preserve input order.
        for (key, _) in &rows {
            for v in key {
                if v.is_pending() {
                    return Err(WsqError::Exec(
                        "sort key contains unresolved placeholder".to_string(),
                    ));
                }
            }
        }
        let descs: Vec<bool> = self.keys.iter().map(|(_, d)| *d).collect();
        rows.sort_by(|(ka, _), (kb, _)| {
            for ((a, b), desc) in ka.iter().zip(kb).zip(&descs) {
                let ord = a.compare(b).unwrap_or(std::cmp::Ordering::Equal);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        self.sorted = rows.into_iter().map(|(_, t)| t).collect();
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if self.pos < self.sorted.len() {
            self.pos += 1;
            Ok(Some(self.sorted[self.pos - 1].clone()))
        } else {
            Ok(None)
        }
    }
}

/// Duplicate elimination over complete tuples.
pub struct DistinctExec {
    child: Box<dyn Executor>,
    schema: Schema,
    seen: std::collections::HashSet<Vec<GroupKey>>,
}

impl DistinctExec {
    /// De-duplicate `child`.
    pub fn new(child: Box<dyn Executor>) -> Self {
        let schema = child.schema().clone();
        DistinctExec {
            child,
            schema,
            seen: Default::default(),
        }
    }
}

impl Executor for DistinctExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.seen.clear();
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        while let Some(t) = self.child.next()? {
            if t.is_incomplete() {
                return Err(WsqError::Exec(
                    "DISTINCT over unresolved placeholders (clash-rule violation)".to_string(),
                ));
            }
            let key: Vec<GroupKey> = t.values().iter().map(Value::group_key).collect();
            if self.seen.insert(key) {
                return Ok(Some(t));
            }
        }
        Ok(None)
    }

    fn close(&mut self) -> Result<()> {
        self.child.close()
    }
}

/// Row limit.
pub struct LimitExec {
    child: Box<dyn Executor>,
    schema: Schema,
    n: u64,
    emitted: u64,
}

impl LimitExec {
    /// Pass at most `n` rows of `child`.
    pub fn new(child: Box<dyn Executor>, n: u64) -> Self {
        let schema = child.schema().clone();
        LimitExec {
            child,
            schema,
            n,
            emitted: 0,
        }
    }
}

impl Executor for LimitExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.emitted = 0;
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if self.emitted >= self.n {
            return Ok(None);
        }
        match self.child.next()? {
            Some(t) => {
                self.emitted += 1;
                Ok(Some(t))
            }
            None => Ok(None),
        }
    }

    fn close(&mut self) -> Result<()> {
        self.child.close()
    }
}

/// One aggregate accumulator.
#[derive(Debug, Clone)]
enum Acc {
    Count(i64),
    Sum(Option<Value>),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: f64, n: i64 },
}

impl Acc {
    fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum(None),
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
        }
    }

    fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match self {
            Acc::Count(n) => {
                // COUNT(*) gets None-arg updates; COUNT(c) skips NULLs.
                match v {
                    None => *n += 1,
                    Some(val) if !val.is_null() => *n += 1,
                    Some(_) => {}
                }
            }
            Acc::Sum(acc) => {
                if let Some(val) = v.filter(|v| !v.is_null()) {
                    *acc = Some(match acc.take() {
                        None => val.clone(),
                        Some(Value::Int(a)) => match val {
                            Value::Int(b) => Value::Int(a + b),
                            other => Value::Float(a as f64 + other.as_float()?),
                        },
                        Some(Value::Float(a)) => Value::Float(a + val.as_float()?),
                        Some(other) => return Err(WsqError::Type(format!("cannot SUM {other}"))),
                    });
                }
            }
            Acc::Min(acc) => {
                if let Some(val) = v.filter(|v| !v.is_null()) {
                    let replace = match acc {
                        None => true,
                        Some(cur) => val.compare(cur)? == std::cmp::Ordering::Less,
                    };
                    if replace {
                        *acc = Some(val.clone());
                    }
                }
            }
            Acc::Max(acc) => {
                if let Some(val) = v.filter(|v| !v.is_null()) {
                    let replace = match acc {
                        None => true,
                        Some(cur) => val.compare(cur)? == std::cmp::Ordering::Greater,
                    };
                    if replace {
                        *acc = Some(val.clone());
                    }
                }
            }
            Acc::Avg { sum, n } => {
                if let Some(val) = v.filter(|v| !v.is_null()) {
                    *sum += val.as_float()?;
                    *n += 1;
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(n),
            Acc::Sum(v) | Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
            Acc::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
        }
    }
}

/// Hash aggregation with optional grouping.
pub struct AggregateExec {
    child: Box<dyn Executor>,
    group_idx: Vec<usize>,
    aggs: Vec<(AggFunc, Option<CExpr>)>,
    schema: Schema,
    results: Vec<Tuple>,
    pos: usize,
}

impl AggregateExec {
    /// Aggregate `child` grouped by `group_by` columns.
    pub fn new(
        child: Box<dyn Executor>,
        group_by: &[ColumnRef],
        aggs: &[(AggFunc, Option<Expr>, String)],
        schema: Schema,
    ) -> Result<Self> {
        let in_schema = child.schema();
        let group_idx = group_by
            .iter()
            .map(|g| in_schema.resolve(g.qualifier.as_deref(), &g.name))
            .collect::<Result<Vec<_>>>()?;
        let aggs = aggs
            .iter()
            .map(|(f, a, _)| {
                let c = a.as_ref().map(|e| compile(e, in_schema)).transpose()?;
                Ok((*f, c))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(AggregateExec {
            child,
            group_idx,
            aggs,
            schema,
            results: Vec::new(),
            pos: 0,
        })
    }
}

impl Executor for AggregateExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.child.open()?;
        // Preserve first-seen group order for deterministic output.
        let mut groups: HashMap<Vec<GroupKey>, usize> = HashMap::new();
        let mut states: Vec<(Vec<Value>, Vec<Acc>)> = Vec::new();
        while let Some(t) = self.child.next()? {
            if t.is_incomplete() {
                return Err(WsqError::Exec(
                    "aggregation over unresolved placeholders (clash-rule violation)".to_string(),
                ));
            }
            let key: Vec<GroupKey> = self
                .group_idx
                .iter()
                .map(|&i| t.get(i).group_key())
                .collect();
            let slot = match groups.get(&key) {
                Some(&s) => s,
                None => {
                    let vals: Vec<Value> =
                        self.group_idx.iter().map(|&i| t.get(i).clone()).collect();
                    let accs: Vec<Acc> = self.aggs.iter().map(|(f, _)| Acc::new(*f)).collect();
                    states.push((vals, accs));
                    groups.insert(key, states.len() - 1);
                    states.len() - 1
                }
            };
            for ((_, cexpr), acc) in self.aggs.iter().zip(states[slot].1.iter_mut()) {
                match cexpr {
                    Some(e) => acc.update(Some(&e.eval(&t)?))?,
                    None => acc.update(None)?,
                }
            }
        }
        self.child.close()?;
        // A global aggregate (no GROUP BY) over empty input yields one row.
        if states.is_empty() && self.group_idx.is_empty() {
            states.push((
                vec![],
                self.aggs.iter().map(|(f, _)| Acc::new(*f)).collect(),
            ));
        }
        self.results = states
            .into_iter()
            .map(|(mut vals, accs)| {
                vals.extend(accs.into_iter().map(Acc::finish));
                Tuple::new(vals)
            })
            .collect();
        self.pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if self.pos < self.results.len() {
            self.pos += 1;
            Ok(Some(self.results[self.pos - 1].clone()))
        } else {
            Ok(None)
        }
    }
}
