//! Runtime instrumentation: EXPLAIN ANALYZE-style per-operator counters.
//!
//! When analysis is requested, every executor is wrapped in an
//! [`Instrumented`] decorator that counts `open`/`next` calls, output
//! rows, and wall time spent inside the operator (inclusive of its
//! children — the classic ANALYZE presentation). The per-operator cells
//! are collected in plan pre-order so the report can be rendered against
//! the plan tree.

use super::Executor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use wsq_common::{Result, Schema, Tuple, Value};

/// Shared mutable counters for one operator.
#[derive(Debug, Default)]
pub struct OpCounters {
    /// Times `open` ran (inner sides of joins re-open per outer tuple).
    pub opens: AtomicU64,
    /// `next` invocations.
    pub nexts: AtomicU64,
    /// Tuples produced.
    pub rows: AtomicU64,
    /// Nanoseconds spent inside this operator (inclusive of children).
    pub nanos: AtomicU64,
}

/// One line of an ANALYZE report: indentation depth, operator label, and
/// its counters.
#[derive(Debug, Clone)]
pub struct OpStats {
    /// Depth in the plan tree.
    pub depth: usize,
    /// Operator description (the EXPLAIN line).
    pub label: String,
    /// Counters (shared with the executing operator).
    pub counters: Arc<OpCounters>,
}

/// Render one named counter group as a report footer line, e.g.
/// `-- pump: registered=12 launched=10 coalesced=2`.
pub fn counters_line(section: &str, counters: &[(&str, u64)]) -> String {
    let body: Vec<String> = counters.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("-- {section}: {}\n", body.join(" "))
}

/// Pre-order collection of instrumented operators for one query.
#[derive(Debug, Default, Clone)]
pub struct Instrumentation {
    ops: Arc<parking_lot::Mutex<Vec<OpStats>>>,
    /// Counter groups from non-operator subsystems (pump, caches),
    /// rendered after the operator tree.
    notes: Arc<parking_lot::Mutex<Vec<String>>>,
}

impl Instrumentation {
    /// Fresh, empty instrumentation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an operator (called during executor build, pre-order).
    pub fn register(&self, depth: usize, label: String) -> Arc<OpCounters> {
        let counters = Arc::new(OpCounters::default());
        self.ops.lock().push(OpStats {
            depth,
            label,
            counters: counters.clone(),
        });
        counters
    }

    /// Attach a named counter group (e.g. the pump's per-query deltas) to
    /// the report footer.
    pub fn note_counters(&self, section: &str, counters: &[(&str, u64)]) {
        self.notes.lock().push(counters_line(section, counters));
    }

    /// Render the ANALYZE report.
    pub fn report(&self) -> String {
        let ops = self.ops.lock();
        let mut out = String::new();
        for op in ops.iter() {
            let pad = "  ".repeat(op.depth);
            let rows = op.counters.rows.load(Ordering::Relaxed);
            let nexts = op.counters.nexts.load(Ordering::Relaxed);
            let opens = op.counters.opens.load(Ordering::Relaxed);
            let ms = op.counters.nanos.load(Ordering::Relaxed) as f64 / 1e6;
            out.push_str(&format!(
                "{pad}{}  [rows={rows} nexts={nexts} opens={opens} time={ms:.3}ms]\n",
                op.label
            ));
        }
        for note in self.notes.lock().iter() {
            out.push_str(note);
        }
        out
    }

    /// The raw per-operator statistics, pre-order.
    pub fn operators(&self) -> Vec<OpStats> {
        self.ops.lock().clone()
    }
}

/// Decorator adding counters around any executor.
pub struct Instrumented {
    inner: Box<dyn Executor>,
    counters: Arc<OpCounters>,
}

impl Instrumented {
    /// Wrap `inner`, reporting into `counters`.
    pub fn new(inner: Box<dyn Executor>, counters: Arc<OpCounters>) -> Self {
        Instrumented { inner, counters }
    }
}

impl Executor for Instrumented {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn open(&mut self) -> Result<()> {
        self.counters.opens.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let r = self.inner.open();
        self.counters
            .nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        r
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        self.counters.nexts.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let r = self.inner.next();
        self.counters
            .nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if let Ok(Some(_)) = &r {
            self.counters.rows.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    fn close(&mut self) -> Result<()> {
        self.inner.close()
    }

    fn rebind(&mut self, values: &[Value]) -> Result<()> {
        // Bindings must reach the wrapped scan (dependent joins rebind
        // their inner child through this decorator).
        self.inner.rebind(values)
    }
}
