//! External virtual table scans: the synchronous `EVScan` and the
//! asynchronous `AEVScan` (paper §4.1).

use super::Executor;
use crate::plan::{EvSpec, VTableKind};
use std::sync::Arc;
use wsq_common::{CallId, PendingCol, Placeholder, Result, Schema, Tuple, Value, WsqError};
use wsq_pump::{
    blocking_execute, ReqPump, RequestKind, SearchRequest, SearchResult, SearchService,
};

pub(crate) fn request_for(spec: &EvSpec, expr: String) -> SearchRequest {
    SearchRequest {
        engine: spec.engine.clone(),
        expr,
        kind: match spec.kind {
            VTableKind::WebCount => RequestKind::Count,
            VTableKind::WebPages => RequestKind::Pages {
                max_rank: spec.rank_limit,
            },
        },
    }
}

/// Prefix columns shared by every produced tuple: SearchExp then T1..Tn.
fn prefix_values(expr: &str, bindings: &[Value]) -> Vec<Value> {
    let mut vals = Vec::with_capacity(bindings.len() + 1);
    vals.push(Value::Str(expr.to_string()));
    vals.extend(bindings.iter().cloned());
    vals
}

/// Synchronous external virtual scan: each `open` performs a blocking
/// search call — the query processor idles for the full latency, exactly
/// the behavior asynchronous iteration exists to fix.
pub struct EVScanExec {
    spec: EvSpec,
    service: Arc<dyn SearchService>,
    schema: Schema,
    bindings: Vec<Value>,
    rows: Vec<Tuple>,
    pos: usize,
    fetched: bool,
}

impl EVScanExec {
    /// Create a scan of `spec` against `service`.
    pub fn new(spec: EvSpec, service: Arc<dyn SearchService>) -> Self {
        let schema = spec.schema();
        EVScanExec {
            spec,
            service,
            schema,
            bindings: Vec::new(),
            rows: Vec::new(),
            pos: 0,
            fetched: false,
        }
    }
}

impl Executor for EVScanExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn rebind(&mut self, values: &[Value]) -> Result<()> {
        if values.len() != self.spec.bindings.len() {
            return Err(WsqError::Exec(format!(
                "expected {} bindings, got {}",
                self.spec.bindings.len(),
                values.len()
            )));
        }
        self.bindings = values.to_vec();
        self.fetched = false;
        Ok(())
    }

    fn open(&mut self) -> Result<()> {
        self.rows.clear();
        self.pos = 0;
        self.fetched = false;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if !self.fetched {
            self.fetched = true;
            let expr = self.spec.instantiate(&self.bindings);
            let req = request_for(&self.spec, expr.clone());
            let result = blocking_execute(self.service.as_ref(), &req)?;
            let prefix = prefix_values(&expr, &self.bindings);
            self.rows = materialize_result(&self.spec, &prefix, &result);
            self.pos = 0;
        }
        if self.pos < self.rows.len() {
            self.pos += 1;
            Ok(Some(self.rows[self.pos - 1].clone()))
        } else {
            Ok(None)
        }
    }
}

/// Turn a search result into virtual-table tuples.
pub(crate) fn materialize_result(
    spec: &EvSpec,
    prefix: &[Value],
    result: &SearchResult,
) -> Vec<Tuple> {
    match (spec.kind, result) {
        (VTableKind::WebCount, SearchResult::Count(n)) => {
            let mut vals = prefix.to_vec();
            vals.push(Value::Int(*n as i64));
            vec![Tuple::new(vals)]
        }
        (VTableKind::WebPages, SearchResult::Pages(hits)) => hits
            .iter()
            .map(|h| {
                let mut vals = prefix.to_vec();
                vals.push(Value::Str(h.url.clone()));
                vals.push(Value::Int(h.rank as i64));
                vals.push(Value::Str(h.date.clone()));
                Tuple::new(vals)
            })
            .collect(),
        // A mismatched result shape is a service bug; surface it as an
        // empty result rather than wrong data.
        _ => vec![],
    }
}

/// Asynchronous external virtual scan: registers the call with ReqPump and
/// immediately returns ONE optimistic tuple whose external attributes are
/// placeholders; `ReqSync` later patches, cancels, or multiplies it.
///
/// Calls are registered lazily, from `next`/`rebind` only. This is what
/// makes ReqSync's admission control (DESIGN.md §11) work without any
/// coordination at this level: a stalled ReqSync simply stops pulling its
/// subtree, so no `next` reaches this scan and no new calls enter the
/// pump while the buffer is full.
pub struct AEVScanExec {
    spec: EvSpec,
    pump: Arc<ReqPump>,
    schema: Schema,
    bindings: Vec<Value>,
    emitted: bool,
}

impl AEVScanExec {
    /// Create an async scan of `spec` registering through `pump`.
    pub fn new(spec: EvSpec, pump: Arc<ReqPump>) -> Self {
        let schema = spec.schema();
        AEVScanExec {
            spec,
            pump,
            schema,
            bindings: Vec::new(),
            emitted: false,
        }
    }
}

impl Executor for AEVScanExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn rebind(&mut self, values: &[Value]) -> Result<()> {
        if values.len() != self.spec.bindings.len() {
            return Err(WsqError::Exec(format!(
                "expected {} bindings, got {}",
                self.spec.bindings.len(),
                values.len()
            )));
        }
        self.bindings = values.to_vec();
        self.emitted = false;
        Ok(())
    }

    fn open(&mut self) -> Result<()> {
        self.emitted = false;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        if self.emitted {
            return Ok(None);
        }
        self.emitted = true;
        // Refuse to instantiate a search expression from placeholder
        // bindings — the asyncify pass must have resolved them first.
        for v in &self.bindings {
            if v.is_pending() {
                return Err(WsqError::Exec(
                    "virtual-table binding is an unresolved placeholder \
                     (percolation should have flushed the upstream ReqSync)"
                        .to_string(),
                ));
            }
        }
        let expr = self.spec.instantiate(&self.bindings);
        let call: CallId = self.pump.register(request_for(&self.spec, expr.clone()))?;
        if let Some(m) = self.pump.obs().metrics() {
            m.placeholder_tuples.inc();
        }
        let mut vals = prefix_values(&expr, &self.bindings);
        let ph = |col: PendingCol| Value::Pending(Placeholder { call, col });
        match self.spec.kind {
            VTableKind::WebCount => vals.push(ph(PendingCol::Count)),
            VTableKind::WebPages => {
                vals.push(ph(PendingCol::Url));
                vals.push(ph(PendingCol::Rank));
                vals.push(ph(PendingCol::Date));
            }
        }
        Ok(Some(Tuple::new(vals)))
    }
}
