//! Executor unit tests, including direct coverage of the §4.3/§4.4
//! ReqSync semantics (fill-in / cancellation / n-way generation, copies
//! carrying other pending calls).

use super::*;
use crate::plan::{BufferMode, EvBinding, EvSpec, PrefetchHint, VTableKind};
use std::sync::Arc;
use wsq_common::{Column, DataType, Schema, Tuple, Value};
use wsq_pump::{
    PageHit, PumpConfig, ReqPump, RequestKind, SearchRequest, SearchResult, SearchService,
    ServiceReply,
};
use wsq_sql::ast::{AggFunc, BinOp, ColumnRef, Expr, Literal};

/// An executor over fixed tuples (reusable mock child).
fn rows(schema: Schema, tuples: Vec<Vec<Value>>) -> Box<dyn Executor> {
    Box::new(ValuesExec::new(
        schema,
        tuples.into_iter().map(Tuple::new).collect(),
    ))
}

fn int_schema(names: &[&str]) -> Schema {
    Schema::new(
        names
            .iter()
            .map(|n| Column::new(*n, DataType::Int))
            .collect(),
    )
}

fn drain(mut e: Box<dyn Executor>) -> Vec<Tuple> {
    collect(e.as_mut()).unwrap()
}

#[test]
fn filter_project_limit_chain() {
    let child = rows(
        int_schema(&["a", "b"]),
        vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
            vec![Value::Int(3), Value::Int(30)],
            vec![Value::Int(4), Value::Int(40)],
        ],
    );
    let filtered = Box::new(
        FilterExec::new(
            child,
            &Expr::binary(BinOp::Gt, Expr::column("a"), Expr::Literal(Literal::Int(1))),
        )
        .unwrap(),
    );
    let projected = Box::new(
        ProjectExec::new(
            filtered,
            &[(
                Expr::binary(BinOp::Add, Expr::column("a"), Expr::column("b")),
                "s".to_string(),
            )],
            int_schema(&["s"]),
        )
        .unwrap(),
    );
    let limited = Box::new(LimitExec::new(projected, 2));
    let out = drain(limited);
    assert_eq!(out.len(), 2);
    assert_eq!(out[0].get(0).as_int().unwrap(), 22);
    assert_eq!(out[1].get(0).as_int().unwrap(), 33);
}

#[test]
fn sort_orders_and_is_stable() {
    let child = rows(
        int_schema(&["k", "v"]),
        vec![
            vec![Value::Int(2), Value::Int(1)],
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Int(2), Value::Int(3)],
            vec![Value::Int(1), Value::Int(4)],
        ],
    );
    let sorted = Box::new(SortExec::new(child, &[(Expr::column("k"), false)]).unwrap());
    let out = drain(sorted);
    let pairs: Vec<(i64, i64)> = out
        .iter()
        .map(|t| (t.get(0).as_int().unwrap(), t.get(1).as_int().unwrap()))
        .collect();
    // Stable: within equal keys, input order (v=2 before v=4, v=1 before v=3).
    assert_eq!(pairs, vec![(1, 2), (1, 4), (2, 1), (2, 3)]);
}

#[test]
fn sort_by_ordinal_descending() {
    let child = rows(
        int_schema(&["x"]),
        vec![
            vec![Value::Int(1)],
            vec![Value::Int(3)],
            vec![Value::Int(2)],
        ],
    );
    let sorted = Box::new(SortExec::new(child, &[(Expr::Literal(Literal::Int(1)), true)]).unwrap());
    let out: Vec<i64> = drain(sorted)
        .iter()
        .map(|t| t.get(0).as_int().unwrap())
        .collect();
    assert_eq!(out, vec![3, 2, 1]);
}

#[test]
fn distinct_removes_duplicates() {
    let child = rows(
        int_schema(&["x", "y"]),
        vec![
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Null, Value::Null],
            vec![Value::Null, Value::Null],
        ],
    );
    let out = drain(Box::new(DistinctExec::new(child)));
    assert_eq!(out.len(), 3);
}

#[test]
fn aggregate_group_global_and_empty() {
    // Grouped.
    let child = rows(
        int_schema(&["g", "v"]),
        vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(5)],
            vec![Value::Int(1), Value::Int(20)],
            vec![Value::Int(2), Value::Null], // NULL skipped by SUM/AVG
        ],
    );
    let agg = Box::new(
        AggregateExec::new(
            child,
            &[ColumnRef {
                qualifier: None,
                name: "g".into(),
            }],
            &[
                (AggFunc::Count, None, "#agg0".into()),
                (AggFunc::Sum, Some(Expr::column("v")), "#agg1".into()),
                (AggFunc::Avg, Some(Expr::column("v")), "#agg2".into()),
                (AggFunc::Min, Some(Expr::column("v")), "#agg3".into()),
                (AggFunc::Max, Some(Expr::column("v")), "#agg4".into()),
            ],
            int_schema(&["g", "#agg0", "#agg1", "#agg2", "#agg3", "#agg4"]),
        )
        .unwrap(),
    );
    let out = drain(agg);
    assert_eq!(out.len(), 2);
    // First-seen group order preserved.
    assert_eq!(out[0].get(0).as_int().unwrap(), 1);
    assert_eq!(out[0].get(1).as_int().unwrap(), 2); // COUNT(*)
    assert_eq!(out[0].get(2).as_int().unwrap(), 30); // SUM
    assert_eq!(out[0].get(3).as_float().unwrap(), 15.0); // AVG
    assert_eq!(out[1].get(0).as_int().unwrap(), 2);
    assert_eq!(out[1].get(2).as_int().unwrap(), 5); // SUM skips NULL
    assert_eq!(out[1].get(4).as_int().unwrap(), 5); // MIN
    assert_eq!(out[1].get(5).as_int().unwrap(), 5); // MAX

    // Global aggregate over empty input yields one row.
    let empty = rows(int_schema(&["v"]), vec![]);
    let agg = Box::new(
        AggregateExec::new(
            empty,
            &[],
            &[
                (AggFunc::Count, None, "#agg0".into()),
                (AggFunc::Sum, Some(Expr::column("v")), "#agg1".into()),
            ],
            int_schema(&["#agg0", "#agg1"]),
        )
        .unwrap(),
    );
    let out = drain(agg);
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].get(0).as_int().unwrap(), 0);
    assert!(out[0].get(1).is_null());

    // Grouped aggregate over empty input yields no rows.
    let empty = rows(int_schema(&["g", "v"]), vec![]);
    let agg = Box::new(
        AggregateExec::new(
            empty,
            &[ColumnRef {
                qualifier: None,
                name: "g".into(),
            }],
            &[(AggFunc::Count, None, "#agg0".into())],
            int_schema(&["g", "#agg0"]),
        )
        .unwrap(),
    );
    assert!(drain(agg).is_empty());
}

#[test]
fn nested_loop_join_and_reopen() {
    let left = rows(
        int_schema(&["a"]),
        vec![vec![Value::Int(1)], vec![Value::Int(2)]],
    );
    let right = rows(
        int_schema(&["b"]),
        vec![vec![Value::Int(2)], vec![Value::Int(3)]],
    );
    let mut join = NestedLoopJoinExec::new(
        left,
        right,
        Some(&Expr::binary(
            BinOp::Eq,
            Expr::column("a"),
            Expr::column("b"),
        )),
    )
    .unwrap();
    let out = collect(&mut join).unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].values(), &[Value::Int(2), Value::Int(2)]);
    // Re-open works (joins re-open their inputs when nested).
    let out2 = collect(&mut join).unwrap();
    assert_eq!(out2.len(), 1);

    // Cross product (no predicate).
    let left = rows(
        int_schema(&["a"]),
        vec![vec![Value::Int(1)], vec![Value::Int(2)]],
    );
    let right = rows(int_schema(&["b"]), vec![vec![Value::Int(7)]]);
    let mut cp = NestedLoopJoinExec::new(left, right, None).unwrap();
    assert_eq!(collect(&mut cp).unwrap().len(), 2);
}

/// A scripted search service for ReqSync semantics tests.
struct Scripted;

impl SearchService for Scripted {
    fn execute(&self, req: &SearchRequest) -> ServiceReply {
        let result = match &req.kind {
            RequestKind::Count => SearchResult::Count(req.expr.len() as u64),
            RequestKind::Pages { max_rank } => {
                // "none" → 0 hits; "one" → 1; everything else → max_rank.
                let n = if req.expr.contains("none") {
                    0
                } else if req.expr.contains("one") {
                    1
                } else {
                    *max_rank
                };
                SearchResult::pages_from(
                    (1..=n)
                        .map(|rank| PageHit {
                            url: format!("www.{}/{rank}", req.expr.replace(' ', "-")),
                            rank,
                            date: "1999-10-01".into(),
                        })
                        .collect(),
                )
            }
        };
        ServiceReply::instant(result)
    }
}

fn pump() -> Arc<ReqPump> {
    let p = ReqPump::new(PumpConfig::default());
    p.register_service("AV", Arc::new(Scripted));
    p
}

fn pages_spec(alias: &str) -> EvSpec {
    EvSpec {
        kind: VTableKind::WebPages,
        engine: "AV".into(),
        alias: alias.into(),
        template: None,
        bindings: vec![EvBinding::Column(ColumnRef {
            qualifier: None,
            name: "term".into(),
        })],
        rank_limit: 3,
        supports_near: true,
        prefetch: PrefetchHint::default(),
    }
}

/// Dependent join of terms against an async WebPages scan, synchronized.
fn async_pages_pipeline(terms: &[&str], pump: &Arc<ReqPump>, mode: BufferMode) -> Vec<Tuple> {
    let schema = Schema::new(vec![Column::new("term", DataType::Varchar)]);
    let left = rows(
        schema,
        terms.iter().map(|t| vec![Value::from(*t)]).collect(),
    );
    let spec = pages_spec("W");
    let scan = Box::new(AEVScanExec::new(spec.clone(), pump.clone()));
    let dj = Box::new(DependentJoinExec::new(left, scan, &spec).unwrap());
    let sync = Box::new(ReqSyncExec::new(dj, pump.clone(), mode));
    drain(sync)
}

#[test]
fn reqsync_generation_cancellation_and_fill() {
    for mode in [BufferMode::Full, BufferMode::Streaming] {
        let p = pump();
        // "many" → 3 hits (generation), "one" → 1 (fill), "none" → 0
        // (cancellation).
        let out = async_pages_pipeline(&["many", "one", "none"], &p, mode);
        assert_eq!(out.len(), 4, "{mode:?}");
        let urls: Vec<&str> = out
            .iter()
            .map(|t| {
                // term, SearchExp, T1, URL, Rank, Date
                t.get(3).as_str().unwrap()
            })
            .collect();
        assert!(urls.iter().filter(|u| u.contains("many")).count() == 3);
        assert!(urls.iter().filter(|u| u.contains("one")).count() == 1);
        assert!(!urls.iter().any(|u| u.contains("none")));
        // Ranks filled as integers.
        for t in &out {
            let rank = t.get(4).as_int().unwrap();
            assert!((1..=3).contains(&rank));
            assert!(!t.is_incomplete());
        }
        assert_eq!(p.live_calls(), 0, "{mode:?}");
    }
}

#[test]
fn reqsync_copies_propagate_other_pending_calls() {
    // §4.4: a tuple with placeholders from TWO calls; when the first
    // completes with n rows, the copies must still resolve the second.
    let p = pump();
    let schema = Schema::new(vec![Column::new("term", DataType::Varchar)]);
    let left = rows(schema, vec![vec![Value::from("many")]]);

    let spec_a = pages_spec("A");
    let scan_a = Box::new(AEVScanExec::new(spec_a.clone(), p.clone()));
    let dj_a = Box::new(DependentJoinExec::new(left, scan_a, &spec_a).unwrap());

    let mut spec_b = pages_spec("B");
    spec_b.rank_limit = 2;
    // B binds on the same original term column.
    let scan_b = Box::new(AEVScanExec::new(spec_b.clone(), p.clone()));
    let dj_b = Box::new(DependentJoinExec::new(dj_a, scan_b, &spec_b).unwrap());

    let sync = Box::new(ReqSyncExec::new(dj_b, p.clone(), BufferMode::Full));
    let out = drain(sync);
    // 3 hits from A × 2 hits from B... but B issued ONE call per A-tuple
    // (the optimistic tuple), so: 1 optimistic A-tuple → B joins once →
    // 1 buffered tuple with placeholders from both calls → A patches to 3
    // copies, each then patched by B's 2-hit result → 3 × 2 = 6.
    assert_eq!(out.len(), 6);
    for t in &out {
        assert!(!t.is_incomplete());
    }
    assert_eq!(p.live_calls(), 0);
}

#[test]
fn reqsync_error_path_compacts_every_waiting_tuple() {
    // Regression: when a call fails while SEVERAL tuples wait on it
    // (§4.3 case-3 copies all carrying the same second placeholder),
    // the error path used to compact only the first waiter out of the
    // buffer — the rest stayed orphaned (buffered gauge stuck high,
    // their owned registrations held) until close(). The compaction
    // must happen when the error surfaces, not at close.
    struct Failing;
    impl SearchService for Failing {
        fn execute(&self, req: &SearchRequest) -> ServiceReply {
            ServiceReply {
                result: Err(wsq_common::WsqError::Search(format!(
                    "503 service unavailable for {}",
                    req.expr
                ))),
                latency: std::time::Duration::ZERO,
            }
        }
    }
    let obs = wsq_obs::Obs::enabled();
    let p = ReqPump::new(PumpConfig {
        obs: obs.clone(),
        ..PumpConfig::default()
    });
    p.register_service("AV", Arc::new(Scripted));
    p.register_service("BAD", Arc::new(Failing));

    // One source row → A's optimistic tuple → B joins → one buffered
    // tuple holding placeholders from both calls. A ("many") patches
    // into 3 copies, each still waiting on B; B then fails with all 3
    // indexed under its call.
    let schema = Schema::new(vec![Column::new("term", DataType::Varchar)]);
    let left = rows(schema, vec![vec![Value::from("many")]]);
    let spec_a = pages_spec("A");
    let scan_a = Box::new(AEVScanExec::new(spec_a.clone(), p.clone()));
    let dj_a = Box::new(DependentJoinExec::new(left, scan_a, &spec_a).unwrap());
    let mut spec_b = pages_spec("B");
    spec_b.engine = "BAD".into();
    let scan_b = Box::new(AEVScanExec::new(spec_b.clone(), p.clone()));
    let dj_b = Box::new(DependentJoinExec::new(dj_a, scan_b, &spec_b).unwrap());

    let mut sync = ReqSyncExec::new(dj_b, p.clone(), BufferMode::Full);
    sync.open().unwrap();
    let err = loop {
        match sync.next() {
            Ok(Some(_)) => {}
            Ok(None) => panic!("query must fail on the BAD engine"),
            Err(e) => break e,
        }
    };
    assert!(err.to_string().contains("503"), "{err}");
    // Every waiter was compacted out when the error surfaced — before
    // close() — and its registrations released with it.
    let m = obs.metrics().unwrap();
    assert_eq!(
        m.reqsync_buffered.get(),
        0,
        "error path left buffer slots occupied"
    );
    assert_eq!(p.live_calls(), 0, "error path leaked pump registrations");
    sync.close().unwrap();
}

#[test]
fn reqsync_passthrough_of_complete_tuples() {
    // Streaming mode: tuples with no placeholders flow straight through.
    let p = pump();
    let child = rows(
        int_schema(&["x"]),
        vec![vec![Value::Int(1)], vec![Value::Int(2)]],
    );
    let mut sync = ReqSyncExec::new(child, p.clone(), BufferMode::Streaming);
    sync.open().unwrap();
    assert_eq!(sync.next().unwrap().unwrap().get(0).as_int().unwrap(), 1);
    assert_eq!(sync.next().unwrap().unwrap().get(0).as_int().unwrap(), 2);
    assert!(sync.next().unwrap().is_none());
}

#[test]
fn evscan_standalone_with_constant_bindings() {
    // Synchronous EVScan driven by a Values(1 empty row) dependent join.
    let spec = EvSpec {
        kind: VTableKind::WebCount,
        engine: "AV".into(),
        alias: "WC".into(),
        template: None,
        bindings: vec![EvBinding::Const(Value::from("hello"))],
        rank_limit: 19,
        supports_near: true,
        prefetch: PrefetchHint::default(),
    };
    let left = rows(Schema::empty(), vec![vec![]]);
    let scan = Box::new(EVScanExec::new(spec.clone(), Arc::new(Scripted)));
    let dj = Box::new(DependentJoinExec::new(left, scan, &spec).unwrap());
    let out = drain(dj);
    assert_eq!(out.len(), 1);
    // SearchExp, T1, Count
    assert_eq!(out[0].get(0).as_str().unwrap(), "hello");
    assert_eq!(out[0].get(1).as_str().unwrap(), "hello");
    assert_eq!(out[0].get(2).as_int().unwrap(), 5);
}

#[test]
fn aevscan_rejects_pending_bindings() {
    let p = pump();
    let spec = pages_spec("W");
    let mut scan = AEVScanExec::new(spec, p);
    scan.rebind(&[Value::Pending(wsq_common::Placeholder {
        call: wsq_common::CallId(1),
        col: wsq_common::PendingCol::Url,
    })])
    .unwrap();
    scan.open().unwrap();
    let err = scan.next().unwrap_err();
    assert!(err.to_string().contains("placeholder"));
}
