//! The `ReqSync` operator (paper §4.1, §4.3, §4.4): buffers incomplete
//! tuples and coordinates with ReqPump to patch them as calls complete.
//!
//! For each completed call `C`, every buffered tuple carrying a `C`
//! placeholder is processed per §4.3:
//!
//! 1. zero result rows → the tuple is **cancelled**;
//! 2. one row → its placeholder attributes are **filled in**;
//! 3. `n > 1` rows → `n − 1` **copies** are created and all are filled.
//!
//! Copies retain any placeholders for *other* pending calls (§4.4's
//! nuance) and are re-indexed under those calls. Exactly one tuple "owns"
//! each pump registration; ownership drives `ReqPump::release` so results
//! are freed exactly once even when copies proliferate references.
//!
//! # Admission control (backpressure)
//!
//! With a buffer cap configured (`QueryOptions::reqsync_cap` /
//! `WsqConfig::reqsync_buffer_cap`), the operator **stalls** instead of
//! buffering without bound: once `buffered` holds `cap` incomplete
//! tuples it stops pulling from its child (the AEVScan side registers no
//! new calls while un-pulled) and drains completions — blocking on
//! [`ReqPump::wait_any`] between drains — until occupancy falls to the
//! low-water mark (`cap / 2`), then resumes. The handshake reuses the
//! pump's targeted-wakeup protocol unchanged: `wait_any` re-checks the
//! result store under the pump's state lock before sleeping, so a
//! completion that lands between a drain and the sleep can never be
//! lost, and the stalled thread holds no locks while it waits. Stalls
//! surface as `Stalled`/`Resumed` trace events, the
//! `wsq_reqsync_stalls_total` counter and the `wsq_reqsync_stall_seconds`
//! histogram.

use super::Executor;
use crate::plan::BufferMode;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;
use wsq_common::{CallId, PendingCol, Result, Schema, Tuple, Value};
use wsq_obs::{EventKind, Obs};
use wsq_pump::{ReqPump, SearchResult};

struct BufTuple {
    tuple: Tuple,
    /// Calls whose pump registration this tuple is responsible for
    /// releasing (copies own nothing unless explicitly transferred).
    owns: Vec<CallId>,
    /// When the tuple entered the buffer (patch-delay histogram anchor).
    admitted: Instant,
}

/// The request synchronizer executor.
pub struct ReqSyncExec {
    child: Box<dyn Executor>,
    pump: Arc<ReqPump>,
    obs: Obs,
    mode: BufferMode,
    schema: Schema,
    /// Completed tuples awaiting emission.
    ready: VecDeque<Tuple>,
    /// Incomplete tuples, keyed by an internal id.
    buffered: HashMap<u64, BufTuple>,
    /// Pending call → buffered tuple ids. Compacted on every removal —
    /// an id listed here always resolves in `buffered` (asserted in
    /// debug builds), and the map is empty whenever the buffer is.
    index: HashMap<CallId, Vec<u64>>,
    /// Admission-control cap on `buffered` (`None` = unbounded).
    cap: Option<usize>,
    next_id: u64,
    child_done: bool,
    opened: bool,
}

impl ReqSyncExec {
    /// Synchronize `child`'s placeholder tuples against `pump`, with an
    /// unbounded buffer (the paper's behaviour).
    pub fn new(child: Box<dyn Executor>, pump: Arc<ReqPump>, mode: BufferMode) -> Self {
        Self::with_cap(child, pump, mode, None)
    }

    /// [`ReqSyncExec::new`] with an admission-control cap on buffered
    /// incomplete tuples (`None` = unbounded; `Some(0)` is treated as 1).
    pub fn with_cap(
        child: Box<dyn Executor>,
        pump: Arc<ReqPump>,
        mode: BufferMode,
        cap: Option<usize>,
    ) -> Self {
        let schema = child.schema().clone();
        let obs = pump.obs().clone();
        ReqSyncExec {
            child,
            pump,
            obs,
            mode,
            schema,
            ready: VecDeque::new(),
            buffered: HashMap::new(),
            index: HashMap::new(),
            cap: cap.map(|c| c.max(1)),
            next_id: 0,
            child_done: false,
            opened: false,
        }
    }

    /// True iff the buffer has reached the admission-control cap.
    fn at_capacity(&self) -> bool {
        self.cap.is_some_and(|c| self.buffered.len() >= c)
    }

    /// Admission control: with the buffer full, stop admitting and drain
    /// completions — blocking on the pump's targeted wakeup between
    /// drains — until occupancy falls to the low-water mark (`cap / 2`).
    ///
    /// The loop can only run while `buffered` is non-empty, and every
    /// buffered tuple keeps at least one pending call indexed, so
    /// `wait_any` always has a non-empty call set: the stall cannot
    /// deadlock, even at `cap == 1` (admit one → wait for its call →
    /// drain → resume). §4.3 case-3 copy multiplication may transiently
    /// overshoot the cap during a drain; the loop converges because the
    /// query's call set is finite and copies register nothing new.
    fn stall_until_low_water(&mut self) -> Result<()> {
        let Some(cap) = self.cap else {
            return Ok(());
        };
        if self.buffered.len() < cap {
            return Ok(());
        }
        let low_water = cap / 2;
        let stalled_at = Instant::now();
        let anchor = if self.obs.is_enabled() {
            let a = self.pending_calls().into_iter().min();
            if let Some(c) = a {
                self.obs.event(c, EventKind::Stalled);
            }
            a
        } else {
            None
        };
        if let Some(m) = self.obs.metrics() {
            m.reqsync_stalls.inc();
        }
        loop {
            self.drain_completions()?;
            if self.buffered.len() <= low_water {
                break;
            }
            let pending = self.pending_calls();
            debug_assert!(!pending.is_empty(), "buffered tuples with no pending call");
            if pending.is_empty() {
                break;
            }
            self.pump.wait_any(&pending)?;
        }
        if let Some(m) = self.obs.metrics() {
            m.stall_duration.observe(stalled_at.elapsed());
        }
        if let Some(c) = self.pending_calls().into_iter().min().or(anchor) {
            self.obs.event(c, EventKind::Resumed);
        }
        Ok(())
    }

    fn admit(&mut self, tuple: Tuple) {
        if !tuple.is_incomplete() {
            self.ready.push_back(tuple);
            return;
        }
        let calls = tuple.pending_calls();
        let id = self.next_id;
        self.next_id += 1;
        for &c in &calls {
            self.index.entry(c).or_default().push(id);
        }
        if let Some(m) = self.obs.metrics() {
            m.reqsync_buffered.add(1);
        }
        self.buffered.insert(
            id,
            BufTuple {
                tuple,
                owns: calls,
                admitted: Instant::now(),
            },
        );
    }

    /// Remove a tuple id from the index lists of `calls`, dropping lists
    /// that become empty (so `pending_calls` never names a call the pump
    /// may already have forgotten).
    fn unindex(&mut self, id: u64, calls: &[CallId]) {
        for c in calls {
            if let Some(list) = self.index.get_mut(c) {
                list.retain(|&x| x != id);
                if list.is_empty() {
                    self.index.remove(c);
                }
            }
        }
    }

    /// Apply a completed call's `outcome` to every tuple waiting on it.
    /// Stale calls (no tuple waits on them any more) are a no-op.
    fn patch_with(&mut self, call: CallId, outcome: &Result<SearchResult>) -> Result<()> {
        let Some(ids) = self.index.remove(&call) else {
            return Ok(());
        };
        self.obs.event(call, EventKind::Delivered);
        let mut ids = ids.into_iter();
        while let Some(id) = ids.next() {
            // The index is compacted on every removal (`unindex`, and the
            // error arm below), so an id listed under `call` must still be
            // buffered. A miss here means the two maps diverged — a leak
            // of buffered tuples and their pump registrations.
            let Some(entry) = self.buffered.remove(&id) else {
                debug_assert!(false, "index[{call:?}] held stale tuple id {id}");
                continue;
            };
            if let Some(m) = self.obs.metrics() {
                m.reqsync_buffered.add(-1);
                m.patch_delay.observe(entry.admitted.elapsed());
            }
            // Drop this tuple's entries under its *other* pending calls;
            // readmitted descendants are indexed afresh.
            let others: Vec<CallId> = entry
                .tuple
                .pending_calls()
                .into_iter()
                .filter(|c| *c != call)
                .collect();
            self.unindex(id, &others);
            let BufTuple {
                tuple, mut owns, ..
            } = entry;
            let owned_here = owns.iter().position(|c| *c == call).map(|i| {
                owns.remove(i);
            });
            match outcome {
                Err(e) => {
                    // A failed external call fails the query. Release what
                    // we own first so the pump does not leak.
                    if owned_here.is_some() {
                        self.pump.release(call);
                    }
                    for c in owns {
                        self.pump.release(c);
                    }
                    // Compact the *remaining* waiters on this call too.
                    // `index[call]` was already removed above; abandoning
                    // the rest of the list would leave their buffered
                    // entries unreachable — the buffered gauge stuck high
                    // and their owned registrations held until close.
                    for id in ids {
                        let Some(entry) = self.buffered.remove(&id) else {
                            debug_assert!(
                                false,
                                "index[{call:?}] held stale tuple id {id} (error path)"
                            );
                            continue;
                        };
                        if let Some(m) = self.obs.metrics() {
                            m.reqsync_buffered.add(-1);
                        }
                        let others: Vec<CallId> = entry
                            .tuple
                            .pending_calls()
                            .into_iter()
                            .filter(|c| *c != call)
                            .collect();
                        self.unindex(id, &others);
                        for c in entry.owns {
                            self.pump.release(c);
                        }
                    }
                    return Err(e.clone());
                }
                Ok(SearchResult::Count(n)) => {
                    let mut t = tuple;
                    fill(&mut t, call, |col| match col {
                        PendingCol::Count => Some(Value::Int(*n as i64)),
                        _ => None,
                    });
                    self.obs.event(call, EventKind::Patched);
                    if let Some(m) = self.obs.metrics() {
                        m.tuples_patched.inc();
                    }
                    self.readmit(t, owns);
                }
                Ok(SearchResult::Pages(hits)) => {
                    if hits.is_empty() {
                        self.obs.event(call, EventKind::TupleCancelled);
                        if let Some(m) = self.obs.metrics() {
                            m.tuples_cancelled.inc();
                        }
                        // §4.3 case 1: cancel the tuple; release any other
                        // calls it owned (their values are no longer
                        // needed by this tuple — other tuples referencing
                        // them hold their own registrations only if they
                        // made them, so transfer is unnecessary).
                        for c in owns {
                            self.pump.release(c);
                        }
                    } else {
                        // Cases 2 and 3: one patched tuple per hit. The
                        // first copy inherits ownership of the remaining
                        // calls; the rest own nothing (§4.4).
                        self.obs.event(call, EventKind::Patched);
                        if let Some(m) = self.obs.metrics() {
                            m.tuples_patched.add(hits.len() as u64);
                        }
                        for (i, hit) in hits.iter().enumerate() {
                            let mut t = tuple.clone();
                            fill(&mut t, call, |col| match col {
                                PendingCol::Url => Some(Value::Str(hit.url.clone())),
                                PendingCol::Rank => Some(Value::Int(hit.rank as i64)),
                                PendingCol::Date => Some(Value::Str(hit.date.clone())),
                                PendingCol::Count => None,
                            });
                            let owns_for_copy = if i == 0 { owns.clone() } else { Vec::new() };
                            self.readmit(t, owns_for_copy);
                        }
                    }
                }
            }
            if owned_here.is_some() {
                self.pump.release(call);
            }
        }
        Ok(())
    }

    /// Put a (possibly still incomplete) patched tuple back.
    fn readmit(&mut self, tuple: Tuple, owns: Vec<CallId>) {
        if !tuple.is_incomplete() {
            debug_assert!(owns.is_empty(), "complete tuple cannot own pending calls");
            self.ready.push_back(tuple);
            return;
        }
        let id = self.next_id;
        self.next_id += 1;
        for c in tuple.pending_calls() {
            self.index.entry(c).or_default().push(id);
        }
        if let Some(m) = self.obs.metrics() {
            m.reqsync_buffered.add(1);
        }
        self.buffered.insert(
            id,
            BufTuple {
                tuple,
                owns,
                admitted: Instant::now(),
            },
        );
    }

    /// Opportunistically patch any already-completed pending calls.
    ///
    /// One [`ReqPump::take_completed`] round gathers every finished call
    /// in a single pump-lock acquisition (the old shape peeked — and
    /// locked — once per pending call per round). The loop re-runs
    /// because patching can readmit tuples that wait on other calls
    /// which finished in the meantime.
    fn drain_completions(&mut self) -> Result<()> {
        loop {
            let pending = self.pending_calls();
            if pending.is_empty() {
                return Ok(());
            }
            let done = self.pump.take_completed(&pending);
            if done.is_empty() {
                return Ok(());
            }
            for (cid, outcome) in done {
                self.patch_with(cid, &outcome)?;
            }
        }
    }

    /// Calls we are still waiting on.
    fn pending_calls(&self) -> Vec<CallId> {
        self.index.keys().copied().collect()
    }

    /// Debug-build invariant: `index` and `buffered` agree exactly —
    /// every indexed id resolves, and every buffered tuple's pending
    /// calls are indexed. Guards the compaction contract `patch_with`
    /// relies on.
    #[cfg(debug_assertions)]
    fn assert_compact(&self) {
        for (call, list) in &self.index {
            for id in list {
                assert!(
                    self.buffered.contains_key(id),
                    "index[{call:?}] holds stale tuple id {id}"
                );
            }
        }
        for (id, entry) in &self.buffered {
            for c in entry.tuple.pending_calls() {
                assert!(
                    self.index.get(&c).is_some_and(|l| l.contains(id)),
                    "buffered tuple {id} waits on {c:?} but is not indexed under it"
                );
            }
        }
    }

    #[cfg(not(debug_assertions))]
    fn assert_compact(&self) {}
}

/// Replace every placeholder of `call` in `tuple` using `value_for`.
fn fill(tuple: &mut Tuple, call: CallId, value_for: impl Fn(PendingCol) -> Option<Value>) {
    for v in tuple.values_mut() {
        if let Value::Pending(p) = v {
            if p.call == call {
                if let Some(new) = value_for(p.col) {
                    *v = new;
                }
            }
        }
    }
}

impl Executor for ReqSyncExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.ready.clear();
        if let Some(m) = self.obs.metrics() {
            m.reqsync_buffered.add(-(self.buffered.len() as i64));
        }
        self.buffered.clear();
        self.index.clear();
        self.child_done = false;
        self.opened = true;
        self.child.open()?;
        if self.mode == BufferMode::Full {
            // The paper's simple implementation: exhaust the child first,
            // buffering every (incomplete) tuple. Calls complete in the
            // background while we drain.
            // With a cap, admission interleaves with draining: at the cap
            // we stop pulling (no new calls register) and patch until the
            // low-water mark frees slots. Completed tuples accumulate in
            // `ready`, so Full-mode semantics are unchanged.
            while let Some(t) = self.child.next()? {
                self.admit(t);
                self.stall_until_low_water()?;
            }
            self.child.close()?;
            self.child_done = true;
        }
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        loop {
            if let Some(t) = self.ready.pop_front() {
                return Ok(Some(t));
            }
            if !self.child_done {
                // Admission control: at the cap, stall instead of pulling
                // (the un-pulled AEVScan registers no new calls), then
                // loop back — the drain may have readied tuples to emit.
                if self.at_capacity() {
                    self.stall_until_low_water()?;
                    continue;
                }
                // Streaming mode: keep pulling; complete tuples pass
                // straight through (§4.1: "tuples that do not depend on
                // pending ReqPump calls may pass directly through").
                match self.child.next()? {
                    Some(t) => {
                        if !t.is_incomplete() {
                            return Ok(Some(t));
                        }
                        self.admit(t);
                        self.drain_completions()?;
                        continue;
                    }
                    None => {
                        self.child.close()?;
                        self.child_done = true;
                        continue;
                    }
                }
            }
            if self.index.is_empty() {
                debug_assert!(
                    self.buffered.is_empty(),
                    "drained index but {} tuples still buffered",
                    self.buffered.len()
                );
                return Ok(None);
            }
            self.assert_compact();
            // Block until something finishes, then absorb the whole burst
            // of completions — not just the one call wait_any reported —
            // in a single batched drain.
            let pending = self.pending_calls();
            self.pump.wait_any(&pending)?;
            for (cid, outcome) in self.pump.take_completed(&pending) {
                self.patch_with(cid, &outcome)?;
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        // Release every registration still owned by buffered tuples (the
        // query may have been cut short by a LIMIT above us).
        if let Some(m) = self.obs.metrics() {
            m.reqsync_buffered.add(-(self.buffered.len() as i64));
        }
        for (_, entry) in self.buffered.drain() {
            for c in entry.owns {
                self.pump.release(c);
            }
        }
        self.index.clear();
        self.ready.clear();
        Ok(())
    }
}

impl Drop for ReqSyncExec {
    fn drop(&mut self) {
        if self.opened {
            let _ = self.close();
        }
    }
}
