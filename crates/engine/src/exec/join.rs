//! Join executors: nested-loop join / cross product, and the dependent
//! join that feeds bindings to virtual-table scans.

use super::Executor;
use crate::expr::{compile, CExpr};
use crate::plan::{EvBinding, EvSpec};
use wsq_common::{Result, Schema, Tuple, Value};
use wsq_sql::ast::Expr;

/// Inner nested-loop join (predicate `None` = cross product).
///
/// The inner side is fully materialized at `open`. Besides being the
/// classic implementation, this has the property §4 wants: any `AEVScan`s
/// in the inner subtree register *all* their calls up front, maximizing
/// concurrency.
pub struct NestedLoopJoinExec {
    left: Box<dyn Executor>,
    right: Box<dyn Executor>,
    predicate: Option<CExpr>,
    schema: Schema,
    inner: Vec<Tuple>,
    outer: Option<Tuple>,
    inner_pos: usize,
}

impl NestedLoopJoinExec {
    /// Join `left` and `right` on `predicate` (compiled against the
    /// concatenated schema).
    pub fn new(
        left: Box<dyn Executor>,
        right: Box<dyn Executor>,
        predicate: Option<&Expr>,
    ) -> Result<Self> {
        let schema = left.schema().join(right.schema());
        let predicate = predicate.map(|p| compile(p, &schema)).transpose()?;
        Ok(NestedLoopJoinExec {
            left,
            right,
            predicate,
            schema,
            inner: Vec::new(),
            outer: None,
            inner_pos: 0,
        })
    }
}

impl Executor for NestedLoopJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.right.open()?;
        self.inner.clear();
        while let Some(t) = self.right.next()? {
            self.inner.push(t);
        }
        self.right.close()?;
        self.left.open()?;
        self.outer = None;
        self.inner_pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        loop {
            let outer = match self.outer.take() {
                Some(t) => t,
                None => {
                    self.inner_pos = 0;
                    match self.left.next()? {
                        Some(t) => t,
                        None => return Ok(None),
                    }
                }
            };
            while self.inner_pos < self.inner.len() {
                let joined = outer.join(&self.inner[self.inner_pos]);
                self.inner_pos += 1;
                let keep = match &self.predicate {
                    Some(p) => p.eval_bool(&joined)?,
                    None => true,
                };
                if keep {
                    self.outer = Some(outer);
                    return Ok(Some(joined));
                }
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.left.close()
    }
}

/// The dependent join (paper §4, FLMS99): for each outer tuple, compute
/// the binding values and re-open the inner virtual scan with them.
pub struct DependentJoinExec {
    left: Box<dyn Executor>,
    right: Box<dyn Executor>,
    /// How to produce each binding value from an outer tuple.
    slots: Vec<BindingSlot>,
    schema: Schema,
    outer: Option<Tuple>,
}

enum BindingSlot {
    Const(Value),
    Idx(usize),
}

impl DependentJoinExec {
    /// Build from the inner scan's [`EvSpec`]; column bindings are
    /// resolved against the outer schema here, once.
    pub fn new(left: Box<dyn Executor>, right: Box<dyn Executor>, spec: &EvSpec) -> Result<Self> {
        let left_schema = left.schema().clone();
        let slots = spec
            .bindings
            .iter()
            .map(|b| match b {
                EvBinding::Const(v) => Ok(BindingSlot::Const(v.clone())),
                EvBinding::Column(c) => Ok(BindingSlot::Idx(
                    left_schema.resolve(c.qualifier.as_deref(), &c.name)?,
                )),
            })
            .collect::<Result<Vec<_>>>()?;
        let schema = left_schema.join(right.schema());
        Ok(DependentJoinExec {
            left,
            right,
            slots,
            schema,
            outer: None,
        })
    }
}

impl Executor for DependentJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.left.open()?;
        self.outer = None;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        loop {
            let outer = match self.outer.take() {
                Some(t) => t,
                None => match self.left.next()? {
                    Some(t) => {
                        let values: Vec<Value> = self
                            .slots
                            .iter()
                            .map(|s| match s {
                                BindingSlot::Const(v) => v.clone(),
                                BindingSlot::Idx(i) => t.get(*i).clone(),
                            })
                            .collect();
                        self.right.rebind(&values)?;
                        self.right.open()?;
                        t
                    }
                    None => return Ok(None),
                },
            };
            match self.right.next()? {
                Some(r) => {
                    let joined = outer.join(&r);
                    self.outer = Some(outer);
                    return Ok(Some(joined));
                }
                None => self.right.close()?,
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.left.close()
    }
}
