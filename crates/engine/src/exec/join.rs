//! Join executors: nested-loop join / cross product, and the dependent
//! join that feeds bindings to virtual-table scans — including the
//! ahead-of-need prefetch driver (DESIGN.md §12) that pulls outer tuples
//! before ReqSync demands them and registers their calls in one batch.

use super::external::request_for;
use super::Executor;
use crate::expr::{compile, CExpr};
use crate::plan::{EvBinding, EvSpec, PrefetchHint};
use std::collections::VecDeque;
use std::sync::Arc;
use wsq_common::{CallId, Result, Schema, Tuple, Value};
use wsq_obs::{EventKind, HistogramSnapshot};
use wsq_pump::ReqPump;
use wsq_sql::ast::Expr;

/// Inner nested-loop join (predicate `None` = cross product).
///
/// The inner side is fully materialized at `open`. Besides being the
/// classic implementation, this has the property §4 wants: any `AEVScan`s
/// in the inner subtree register *all* their calls up front, maximizing
/// concurrency.
pub struct NestedLoopJoinExec {
    left: Box<dyn Executor>,
    right: Box<dyn Executor>,
    predicate: Option<CExpr>,
    schema: Schema,
    inner: Vec<Tuple>,
    outer: Option<Tuple>,
    inner_pos: usize,
}

impl NestedLoopJoinExec {
    /// Join `left` and `right` on `predicate` (compiled against the
    /// concatenated schema).
    pub fn new(
        left: Box<dyn Executor>,
        right: Box<dyn Executor>,
        predicate: Option<&Expr>,
    ) -> Result<Self> {
        let schema = left.schema().join(right.schema());
        let predicate = predicate.map(|p| compile(p, &schema)).transpose()?;
        Ok(NestedLoopJoinExec {
            left,
            right,
            predicate,
            schema,
            inner: Vec::new(),
            outer: None,
            inner_pos: 0,
        })
    }
}

impl Executor for NestedLoopJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.right.open()?;
        self.inner.clear();
        while let Some(t) = self.right.next()? {
            self.inner.push(t);
        }
        self.right.close()?;
        self.left.open()?;
        self.outer = None;
        self.inner_pos = 0;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        loop {
            let outer = match self.outer.take() {
                Some(t) => t,
                None => {
                    self.inner_pos = 0;
                    match self.left.next()? {
                        Some(t) => t,
                        None => return Ok(None),
                    }
                }
            };
            while self.inner_pos < self.inner.len() {
                let joined = outer.join(&self.inner[self.inner_pos]);
                self.inner_pos += 1;
                let keep = match &self.predicate {
                    Some(p) => p.eval_bool(&joined)?,
                    None => true,
                };
                if keep {
                    self.outer = Some(outer);
                    return Ok(Some(joined));
                }
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.left.close()
    }
}

/// One outer tuple pulled ahead of demand: its binding values and the
/// call registered for it (`None` when the bindings were unresolved
/// placeholders — the demand path will surface the error).
struct Prefetched {
    tuple: Tuple,
    values: Vec<Value>,
    call: Option<CallId>,
}

/// Snapshot baseline for the histogram-driven depth controller.
struct AdaptiveDepth {
    last_call: HistogramSnapshot,
    last_queue: HistogramSnapshot,
}

/// Ahead-of-need prefetch state for one dependent join (DESIGN.md §12).
///
/// Only constructed when the planner stamped a non-zero depth AND the
/// pump coalesces identical requests — prefetch relies on the demand-side
/// `AEVScan` registration attaching to the call this driver started, so
/// without coalescing every prefetch would be a duplicate backend call.
struct Prefetcher {
    pump: Arc<ReqPump>,
    spec: EvSpec,
    hint: PrefetchHint,
    /// Current lookahead target, in `[1, hint.depth]`; fixed at
    /// `hint.depth` unless `hint.adaptive`.
    depth: usize,
    lookahead: VecDeque<Prefetched>,
    left_done: bool,
    adaptive: AdaptiveDepth,
}

impl Prefetcher {
    fn new(pump: Arc<ReqPump>, spec: EvSpec) -> Self {
        let hint = spec.prefetch;
        // Baseline the controller at construction so its windows cover
        // only this query's activity, not process history.
        let (last_call, last_queue) = match pump.obs().metrics() {
            Some(m) => (m.call_latency.snapshot(), m.queue_delay.snapshot()),
            None => (HistogramSnapshot::empty(), HistogramSnapshot::empty()),
        };
        Prefetcher {
            pump,
            spec,
            hint,
            depth: hint.depth,
            lookahead: VecDeque::new(),
            left_done: false,
            adaptive: AdaptiveDepth {
                last_call,
                last_queue,
            },
        }
    }

    /// Histogram-driven depth control: once per drain cycle, read the
    /// per-window `wsq_call_latency_seconds` / `wsq_queue_delay_seconds`
    /// deltas from the obs registry. Queue delay dominating call latency
    /// means launches are waiting on capacity — prefetching further ahead
    /// only lengthens the queue, so narrow. Queue delay well under call
    /// latency means the pump has headroom — widen. No-op on empty
    /// windows or when the hint is not adaptive.
    fn adapt(&mut self) {
        if !self.hint.adaptive {
            return;
        }
        let Some(m) = self.pump.obs().metrics() else {
            return;
        };
        let call = m.call_latency.snapshot();
        let queue = m.queue_delay.snapshot();
        let call_win = call.delta(&self.adaptive.last_call);
        let queue_win = queue.delta(&self.adaptive.last_queue);
        if call_win.count == 0 || queue_win.count == 0 {
            return;
        }
        self.adaptive.last_call = call;
        self.adaptive.last_queue = queue;
        let (Some(call_p50), Some(queue_p95)) = (call_win.quantile(0.5), queue_win.quantile(0.95))
        else {
            return;
        };
        if queue_p95 > call_p50 {
            self.depth = (self.depth / 2).max(1);
        } else if queue_p95 * 2 < call_p50 {
            self.depth = (self.depth * 2).min(self.hint.depth);
        }
    }
}

/// The dependent join (paper §4, FLMS99): for each outer tuple, compute
/// the binding values and re-open the inner virtual scan with them.
///
/// With a [`PrefetchHint`] (via [`DependentJoinExec::with_pump`]) the
/// join additionally pulls up to `depth` outer tuples ahead of demand,
/// registering their calls immediately (one `register_batch` per refill)
/// so the pump overlaps them while upstream operators are still busy.
/// The demand-side `AEVScan` later coalesces onto the prefetched call;
/// the prefetch reference is dropped as soon as that happens, and any
/// still-unconsumed references are released at close/drop time (counted
/// as `wsq_prefetch_wasted_total`), so prefetch never leaks a call.
pub struct DependentJoinExec {
    left: Box<dyn Executor>,
    right: Box<dyn Executor>,
    /// How to produce each binding value from an outer tuple.
    slots: Vec<BindingSlot>,
    schema: Schema,
    outer: Option<Tuple>,
    prefetch: Option<Prefetcher>,
    /// Prefetch reference for the outer tuple currently being joined;
    /// released after the inner scan's first `next` (which is when its
    /// own registration coalesces onto the call).
    current_call: Option<CallId>,
}

enum BindingSlot {
    Const(Value),
    Idx(usize),
}

impl DependentJoinExec {
    /// Build from the inner scan's [`EvSpec`]; column bindings are
    /// resolved against the outer schema here, once.
    pub fn new(left: Box<dyn Executor>, right: Box<dyn Executor>, spec: &EvSpec) -> Result<Self> {
        let left_schema = left.schema().clone();
        let slots = spec
            .bindings
            .iter()
            .map(|b| match b {
                EvBinding::Const(v) => Ok(BindingSlot::Const(v.clone())),
                EvBinding::Column(c) => Ok(BindingSlot::Idx(
                    left_schema.resolve(c.qualifier.as_deref(), &c.name)?,
                )),
            })
            .collect::<Result<Vec<_>>>()?;
        let schema = left_schema.join(right.schema());
        Ok(DependentJoinExec {
            left,
            right,
            slots,
            schema,
            outer: None,
            prefetch: None,
            current_call: None,
        })
    }

    /// Like [`DependentJoinExec::new`], but enables ahead-of-need
    /// prefetch when `spec.prefetch.depth > 0` and the pump coalesces
    /// identical requests (without coalescing the demand-side scan could
    /// not attach to the prefetched call and every search would run
    /// twice).
    pub fn with_pump(
        left: Box<dyn Executor>,
        right: Box<dyn Executor>,
        spec: &EvSpec,
        pump: Arc<ReqPump>,
    ) -> Result<Self> {
        let mut join = Self::new(left, right, spec)?;
        if spec.prefetch.depth > 0 && pump.coalescing_enabled() {
            join.prefetch = Some(Prefetcher::new(pump, spec.clone()));
        }
        Ok(join)
    }

    /// Pull outer tuples until the lookahead holds `depth` entries (or
    /// the outer side is exhausted) and register their calls as ONE
    /// batch. Speculative by design: a `LIMIT` above may never demand
    /// these tuples, which is exactly what `wsq_prefetch_wasted_total`
    /// measures.
    fn refill_lookahead(&mut self) -> Result<()> {
        let Some(pf) = self.prefetch.as_mut() else {
            return Ok(());
        };
        if pf.left_done {
            return Ok(());
        }
        pf.adapt();
        let mut pulled: Vec<(Tuple, Vec<Value>, Option<usize>)> = Vec::new();
        let mut reqs = Vec::new();
        while pf.lookahead.len() + pulled.len() < pf.depth {
            match self.left.next()? {
                Some(t) => {
                    let values: Vec<Value> = self
                        .slots
                        .iter()
                        .map(|s| match s {
                            BindingSlot::Const(v) => v.clone(),
                            BindingSlot::Idx(i) => t.get(*i).clone(),
                        })
                        .collect();
                    // An unresolved placeholder binding cannot be
                    // instantiated; enqueue without a call and let the
                    // demand-side scan report it (asyncify's clash rules
                    // make this unreachable for planner-built trees).
                    let req_idx = if values.iter().any(|v| v.is_pending()) {
                        None
                    } else {
                        reqs.push(request_for(&pf.spec, pf.spec.instantiate(&values)));
                        Some(reqs.len() - 1)
                    };
                    pulled.push((t, values, req_idx));
                }
                None => {
                    pf.left_done = true;
                    break;
                }
            }
        }
        if pulled.is_empty() {
            return Ok(());
        }
        let ids = pf.pump.register_batch(reqs)?;
        let obs = pf.pump.obs();
        if let Some(m) = obs.metrics() {
            m.prefetch_issued.add(ids.len() as u64);
        }
        for cid in &ids {
            obs.event(*cid, EventKind::PrefetchIssued);
        }
        for (tuple, values, req_idx) in pulled {
            pf.lookahead.push_back(Prefetched {
                tuple,
                values,
                call: req_idx.map(|i| ids[i]),
            });
        }
        Ok(())
    }

    /// Release every prefetch reference not yet handed to the demand
    /// path and count them wasted. Idempotent (close followed by drop is
    /// a no-op the second time).
    fn release_unconsumed(&mut self) {
        let Some(pf) = self.prefetch.as_mut() else {
            return;
        };
        let mut wasted = 0u64;
        if let Some(cid) = self.current_call.take() {
            pf.pump.release(cid);
            wasted += 1;
        }
        while let Some(p) = pf.lookahead.pop_front() {
            if let Some(cid) = p.call {
                pf.pump.release(cid);
                wasted += 1;
            }
        }
        if wasted > 0 {
            if let Some(m) = pf.pump.obs().metrics() {
                m.prefetch_wasted.add(wasted);
            }
        }
    }
}

impl Executor for DependentJoinExec {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self) -> Result<()> {
        self.release_unconsumed();
        if let Some(pf) = self.prefetch.as_mut() {
            pf.left_done = false;
            pf.depth = pf.hint.depth;
        }
        self.left.open()?;
        self.outer = None;
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Tuple>> {
        loop {
            if self.outer.is_none() {
                self.refill_lookahead()?;
            }
            let outer = match self.outer.take() {
                Some(t) => t,
                None if self.prefetch.is_some() => {
                    let popped = self
                        .prefetch
                        .as_mut()
                        .and_then(|pf| pf.lookahead.pop_front());
                    match popped {
                        Some(p) => {
                            self.current_call = p.call;
                            self.right.rebind(&p.values)?;
                            self.right.open()?;
                            p.tuple
                        }
                        None => return Ok(None),
                    }
                }
                None => match self.left.next()? {
                    Some(t) => {
                        let values: Vec<Value> = self
                            .slots
                            .iter()
                            .map(|s| match s {
                                BindingSlot::Const(v) => v.clone(),
                                BindingSlot::Idx(i) => t.get(*i).clone(),
                            })
                            .collect();
                        self.right.rebind(&values)?;
                        self.right.open()?;
                        t
                    }
                    None => return Ok(None),
                },
            };
            let step = self.right.next();
            // The inner scan registers its call on its first `next`
            // (coalescing onto the prefetched one, since we still hold a
            // reference); our reference is now redundant.
            if let Some(cid) = self.current_call.take() {
                if let Some(pf) = self.prefetch.as_ref() {
                    pf.pump.release(cid);
                }
            }
            match step? {
                Some(r) => {
                    let joined = outer.join(&r);
                    self.outer = Some(outer);
                    return Ok(Some(joined));
                }
                None => self.right.close()?,
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.release_unconsumed();
        self.left.close()
    }
}

impl Drop for DependentJoinExec {
    fn drop(&mut self) {
        // A query aborting mid-stream (error, LIMIT, client gone) drops
        // the executor tree without `close`; prefetched calls must still
        // drain so pump gauges return to zero.
        self.release_unconsumed();
    }
}
