//! Physical query plans.
//!
//! A [`PhysPlan`] is a pure tree: expressions reference columns by
//! (qualified) name and are resolved to offsets only when executors are
//! built. This makes the paper's plan transformations (Section 4.5 —
//! ReqSync Insertion, Percolation, Consolidation) straightforward tree
//! surgery, independently testable from execution.

use std::fmt;
use wsq_common::{Column, DataType, Schema, Value};
use wsq_sql::ast::{AggFunc, ColumnRef, Expr};

/// Whether a query runs with conventional sequential iteration or with the
/// paper's asynchronous iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Conventional: every external call blocks the query processor
    /// (`EVScan` + [`wsq_pump::blocking_execute`]).
    Synchronous,
    /// Asynchronous iteration: `AEVScan` + `ReqSync` + ReqPump.
    #[default]
    Asynchronous,
    /// Thread-per-request parallel dependent joins — the heavyweight
    /// alternative the paper argues against (§4.2/§4.5.4) and proposes to
    /// compare against as future work. Calls overlap within one join but
    /// joins serialize against each other.
    ParallelJoins,
}

/// How ReqSync operators are placed during asyncification (§4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementStrategy {
    /// Insertion + full percolation + consolidation (the paper's
    /// algorithm): maximizes concurrent external calls.
    #[default]
    Full,
    /// Insertion only: one ReqSync pinned directly above each dependent
    /// join (the conservative Figure 7(b)-style placement; blocks between
    /// joins).
    InsertionOnly,
}

/// ReqSync's buffering discipline (§4.1 discusses both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BufferMode {
    /// Buffer the entire child output before emitting (the paper's simple
    /// implementation).
    #[default]
    Full,
    /// Pass already-complete tuples through without draining the child
    /// first.
    Streaming,
}

/// Which virtual table a scan implements (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VTableKind {
    /// `WebCount(SearchExp, T1..Tn, Count)`.
    WebCount,
    /// `WebPages(SearchExp, T1..Tn, URL, Rank, Date)`.
    WebPages,
}

/// How a virtual input column (`T1`…`Tn`) is bound.
#[derive(Debug, Clone, PartialEq)]
pub enum EvBinding {
    /// Bound to a constant from the `WHERE` clause.
    Const(Value),
    /// Bound by equi-join to a column of the tables to the left in the
    /// `FROM` clause (supplied via the dependent join).
    Column(ColumnRef),
}

/// Ahead-of-need prefetch parameters stamped onto an [`PhysPlan::AEVScan`]
/// by the asyncify pass (DESIGN.md §12).
///
/// `depth` is the number of outer tuples a dependent join may pull (and
/// register calls for) *ahead* of what its consumer has demanded; `0`
/// disables prefetch and keeps the paper's purely demand-driven
/// registration. `window` is forwarded to the pump's submission-window
/// configuration hint (per-destination batched dispatch). `adaptive`
/// turns `depth` into an upper bound steered at runtime by the
/// `AdaptiveDepth` controller from the live latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchHint {
    /// Maximum outer tuples pulled ahead of demand (0 = off).
    pub depth: usize,
    /// Preferred submission-window size for this scan's destination.
    pub window: usize,
    /// Steer the effective depth from live latency histograms.
    pub adaptive: bool,
}

impl Default for PrefetchHint {
    fn default() -> Self {
        PrefetchHint {
            depth: 0,
            window: 1,
            adaptive: false,
        }
    }
}

/// Specification of an external virtual table scan.
#[derive(Debug, Clone, PartialEq)]
pub struct EvSpec {
    /// WebCount or WebPages.
    pub kind: VTableKind,
    /// Destination engine (registry key, e.g. `"AV"`).
    pub engine: String,
    /// Alias other clauses qualify this table's columns with.
    pub alias: String,
    /// Explicit `SearchExp`, or `None` for the default template.
    pub template: Option<String>,
    /// Bindings for `T1..Tn`, in order.
    pub bindings: Vec<EvBinding>,
    /// Upper bound on `Rank` (WebPages only; the default guard is 19,
    /// from the paper's `Rank < 20`).
    pub rank_limit: u32,
    /// Does the engine support `NEAR`? Decides the default template form.
    pub supports_near: bool,
    /// Ahead-of-need prefetch parameters (asyncify stamps these; the
    /// default is off). Not rendered in EXPLAIN output.
    pub prefetch: PrefetchHint,
}

impl EvSpec {
    /// Output schema of this scan (qualified by the alias).
    pub fn schema(&self) -> Schema {
        let mut cols = vec![Column::qualified(
            &self.alias,
            "SearchExp",
            DataType::Varchar,
        )];
        for i in 1..=self.bindings.len() {
            cols.push(Column::qualified(
                &self.alias,
                format!("T{i}"),
                DataType::Varchar,
            ));
        }
        match self.kind {
            VTableKind::WebCount => {
                cols.push(Column::qualified(&self.alias, "Count", DataType::Int));
            }
            VTableKind::WebPages => {
                cols.push(Column::qualified(&self.alias, "URL", DataType::Varchar));
                cols.push(Column::qualified(&self.alias, "Rank", DataType::Int));
                cols.push(Column::qualified(&self.alias, "Date", DataType::Varchar));
            }
        }
        Schema::new(cols)
    }

    /// Qualified names of the externally-supplied columns — the attribute
    /// set `ReqSync.A` that placeholders stand in for (§4.5.2).
    pub fn external_attrs(&self) -> Vec<ColumnRef> {
        let mk = |name: &str| ColumnRef {
            qualifier: Some(self.alias.clone()),
            name: name.to_string(),
        };
        match self.kind {
            VTableKind::WebCount => vec![mk("Count")],
            VTableKind::WebPages => vec![mk("URL"), mk("Rank"), mk("Date")],
        }
    }

    /// The `SearchExp` template, explicit or defaulted.
    ///
    /// Default is `"%1 near %2 near … near %n"` for engines with `NEAR`,
    /// `"%1 %2 … %n"` otherwise (paper §3, footnote 1).
    pub fn effective_template(&self) -> String {
        if let Some(t) = &self.template {
            return t.clone();
        }
        let sep = if self.supports_near { " near " } else { " " };
        (1..=self.bindings.len())
            .map(|i| format!("%{i}"))
            .collect::<Vec<_>>()
            .join(sep)
    }

    /// Instantiate the template with bound values: `%i` is replaced by the
    /// i-th value, quoted when it contains whitespace (multi-word terms
    /// must reach the engine as phrases).
    pub fn instantiate(&self, values: &[Value]) -> String {
        let mut out = self.effective_template();
        // Replace in descending index order so %10 is not clobbered by %1.
        for i in (1..=values.len()).rev() {
            let raw = match &values[i - 1] {
                Value::Str(s) => s.clone(),
                other => other.to_string(),
            };
            let clean = raw.replace('"', "");
            let term = if clean.contains(char::is_whitespace) {
                format!("\"{clean}\"")
            } else {
                clean
            };
            out = out.replace(&format!("%{i}"), &term);
        }
        out
    }
}

/// A physical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysPlan {
    /// Sequential scan of a stored table under an alias.
    SeqScan {
        /// Stored table name.
        table: String,
        /// Alias qualifying output columns.
        alias: String,
        /// Output schema (already qualified).
        schema: Schema,
    },
    /// B+-tree equality lookup on an indexed column.
    IndexScan {
        /// Stored table name.
        table: String,
        /// Alias qualifying output columns.
        alias: String,
        /// Indexed column.
        column: String,
        /// Equality key.
        key: Value,
        /// Output schema (already qualified).
        schema: Schema,
    },
    /// Literal rows (used as the left input of a dependent join when a
    /// virtual table has only constant bindings).
    Values {
        /// Output schema.
        schema: Schema,
        /// The rows.
        rows: Vec<Vec<Value>>,
    },
    /// Synchronous external virtual table scan.
    EVScan(EvSpec),
    /// Asynchronous external virtual table scan (returns placeholder
    /// tuples immediately).
    AEVScan(EvSpec),
    /// Selection.
    Filter {
        /// Input plan.
        input: Box<PhysPlan>,
        /// Predicate.
        predicate: Expr,
    },
    /// Projection with computed expressions and output names.
    Project {
        /// Input plan.
        input: Box<PhysPlan>,
        /// `(expression, output name)` pairs.
        items: Vec<(Expr, String)>,
        /// Output schema.
        schema: Schema,
    },
    /// Dependent join: right child must be an EVScan/AEVScan (or a ReqSync
    /// over one); each left tuple re-binds the right side (§4, FLMS99).
    DependentJoin {
        /// Outer input.
        left: Box<PhysPlan>,
        /// Inner (virtual-table) input.
        right: Box<PhysPlan>,
    },
    /// Thread-per-request parallel dependent join over a virtual table
    /// ([`ExecutionMode::ParallelJoins`]).
    ParallelDependentJoin {
        /// Outer input.
        left: Box<PhysPlan>,
        /// The inner virtual scan.
        spec: EvSpec,
        /// Worker-thread cap.
        threads: usize,
    },
    /// Inner nested-loop join with a predicate.
    NestedLoopJoin {
        /// Outer input.
        left: Box<PhysPlan>,
        /// Inner input.
        right: Box<PhysPlan>,
        /// Join predicate.
        predicate: Expr,
    },
    /// Cross product.
    CrossProduct {
        /// Outer input.
        left: Box<PhysPlan>,
        /// Inner input.
        right: Box<PhysPlan>,
    },
    /// Sort (materializing).
    Sort {
        /// Input plan.
        input: Box<PhysPlan>,
        /// `(key expression, descending)` pairs.
        keys: Vec<(Expr, bool)>,
    },
    /// Hash aggregation.
    Aggregate {
        /// Input plan.
        input: Box<PhysPlan>,
        /// Grouping columns.
        group_by: Vec<ColumnRef>,
        /// Aggregate computations: `(function, argument, output name)`.
        /// `None` argument = `COUNT(*)`.
        aggs: Vec<(AggFunc, Option<Expr>, String)>,
    },
    /// Duplicate elimination.
    Distinct {
        /// Input plan.
        input: Box<PhysPlan>,
    },
    /// Row-count limit.
    Limit {
        /// Input plan.
        input: Box<PhysPlan>,
        /// Maximum rows.
        n: u64,
    },
    /// Request synchronizer: buffers incomplete tuples and patches them as
    /// ReqPump calls complete (§4.1).
    ReqSync {
        /// Input plan.
        input: Box<PhysPlan>,
        /// The attribute set `ReqSync.A` this operator fills in.
        attrs: Vec<ColumnRef>,
        /// Buffering discipline.
        mode: BufferMode,
        /// Admission-control cap on buffered incomplete tuples (`None` =
        /// unbounded, the paper's behaviour). When the buffer is full the
        /// operator stalls its child instead of admitting more.
        cap: Option<usize>,
    },
}

impl PhysPlan {
    /// Output schema of this node.
    pub fn schema(&self) -> Schema {
        match self {
            PhysPlan::SeqScan { schema, .. }
            | PhysPlan::IndexScan { schema, .. }
            | PhysPlan::Values { schema, .. } => schema.clone(),
            PhysPlan::EVScan(spec) | PhysPlan::AEVScan(spec) => spec.schema(),
            PhysPlan::Filter { input, .. }
            | PhysPlan::Distinct { input }
            | PhysPlan::Limit { input, .. }
            | PhysPlan::Sort { input, .. }
            | PhysPlan::ReqSync { input, .. } => input.schema(),
            PhysPlan::Project { schema, .. } => schema.clone(),
            PhysPlan::DependentJoin { left, right }
            | PhysPlan::NestedLoopJoin { left, right, .. }
            | PhysPlan::CrossProduct { left, right } => left.schema().join(&right.schema()),
            PhysPlan::ParallelDependentJoin { left, spec, .. } => {
                left.schema().join(&spec.schema())
            }
            PhysPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let in_schema = input.schema();
                let mut cols = Vec::new();
                for g in group_by {
                    let dt = in_schema
                        .try_resolve(g.qualifier.as_deref(), &g.name)
                        .map(|i| in_schema.column(i).dtype)
                        .unwrap_or(DataType::Varchar);
                    cols.push(Column::new(g.name.clone(), dt));
                }
                for (func, arg, name) in aggs {
                    let dt = match func {
                        AggFunc::Count => DataType::Int,
                        AggFunc::Avg => DataType::Float,
                        _ => arg
                            .as_ref()
                            .and_then(|a| crate::expr::infer_type(a, &in_schema))
                            .unwrap_or(DataType::Int),
                    };
                    cols.push(Column::new(name.clone(), dt));
                }
                Schema::new(cols)
            }
        }
    }

    /// Number of plan nodes (for tests and stats).
    pub fn node_count(&self) -> usize {
        1 + match self {
            PhysPlan::SeqScan { .. }
            | PhysPlan::IndexScan { .. }
            | PhysPlan::Values { .. }
            | PhysPlan::EVScan(_)
            | PhysPlan::AEVScan(_) => 0,
            PhysPlan::Filter { input, .. }
            | PhysPlan::Project { input, .. }
            | PhysPlan::Sort { input, .. }
            | PhysPlan::Aggregate { input, .. }
            | PhysPlan::Distinct { input }
            | PhysPlan::Limit { input, .. }
            | PhysPlan::ReqSync { input, .. } => input.node_count(),
            PhysPlan::ParallelDependentJoin { left, .. } => left.node_count(),
            PhysPlan::DependentJoin { left, right }
            | PhysPlan::NestedLoopJoin { left, right, .. }
            | PhysPlan::CrossProduct { left, right } => left.node_count() + right.node_count(),
        }
    }

    /// Count nodes matching a predicate.
    pub fn count_nodes(&self, pred: &dyn Fn(&PhysPlan) -> bool) -> usize {
        let self_count = usize::from(pred(self));
        self_count
            + match self {
                PhysPlan::SeqScan { .. }
                | PhysPlan::IndexScan { .. }
                | PhysPlan::Values { .. }
                | PhysPlan::EVScan(_)
                | PhysPlan::AEVScan(_) => 0,
                PhysPlan::Filter { input, .. }
                | PhysPlan::Project { input, .. }
                | PhysPlan::Sort { input, .. }
                | PhysPlan::Aggregate { input, .. }
                | PhysPlan::Distinct { input }
                | PhysPlan::Limit { input, .. }
                | PhysPlan::ReqSync { input, .. } => input.count_nodes(pred),
                PhysPlan::ParallelDependentJoin { left, .. } => left.count_nodes(pred),
                PhysPlan::DependentJoin { left, right }
                | PhysPlan::NestedLoopJoin { left, right, .. }
                | PhysPlan::CrossProduct { left, right } => {
                    left.count_nodes(pred) + right.count_nodes(pred)
                }
            }
    }

    /// Render the plan as an indented tree (EXPLAIN / the paper's figures).
    pub fn display(&self) -> String {
        let mut out = String::new();
        self.fmt_tree(&mut out, 0);
        out
    }

    fn fmt_tree(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            PhysPlan::SeqScan { table, alias, .. } => {
                if table.eq_ignore_ascii_case(alias) {
                    out.push_str(&format!("{pad}Scan: {table}\n"));
                } else {
                    out.push_str(&format!("{pad}Scan: {table} AS {alias}\n"));
                }
            }
            PhysPlan::IndexScan {
                table,
                alias,
                column,
                key,
                ..
            } => {
                let alias_part = if table.eq_ignore_ascii_case(alias) {
                    String::new()
                } else {
                    format!(" AS {alias}")
                };
                out.push_str(&format!(
                    "{pad}IndexScan: {table}{alias_part} ({column} = '{key}')\n"
                ));
            }
            PhysPlan::Values { rows, .. } => {
                out.push_str(&format!("{pad}Values: {} row(s)\n", rows.len()));
            }
            PhysPlan::EVScan(spec) => {
                out.push_str(&format!("{pad}EVScan: {}\n", spec_text(spec)));
            }
            PhysPlan::AEVScan(spec) => {
                out.push_str(&format!("{pad}AEVScan: {}\n", spec_text(spec)));
            }
            PhysPlan::Filter { input, predicate } => {
                out.push_str(&format!("{pad}Select: {predicate}\n"));
                input.fmt_tree(out, depth + 1);
            }
            PhysPlan::Project { input, items, .. } => {
                let cols: Vec<String> = items
                    .iter()
                    .map(|(e, name)| {
                        let es = e.to_string();
                        if &es == name {
                            es
                        } else {
                            format!("{es} AS {name}")
                        }
                    })
                    .collect();
                out.push_str(&format!("{pad}Project: {}\n", cols.join(", ")));
                input.fmt_tree(out, depth + 1);
            }
            PhysPlan::DependentJoin { left, right } => {
                let bind = dependent_join_label(right);
                out.push_str(&format!("{pad}Dependent Join: {bind}\n"));
                left.fmt_tree(out, depth + 1);
                right.fmt_tree(out, depth + 1);
            }
            PhysPlan::ParallelDependentJoin {
                left,
                spec,
                threads,
            } => {
                out.push_str(&format!(
                    "{pad}Parallel Dependent Join (threads={threads}): {}\n",
                    spec_text(spec)
                ));
                left.fmt_tree(out, depth + 1);
            }
            PhysPlan::NestedLoopJoin {
                left,
                right,
                predicate,
            } => {
                out.push_str(&format!("{pad}Join: {predicate}\n"));
                left.fmt_tree(out, depth + 1);
                right.fmt_tree(out, depth + 1);
            }
            PhysPlan::CrossProduct { left, right } => {
                out.push_str(&format!("{pad}Cross-Product\n"));
                left.fmt_tree(out, depth + 1);
                right.fmt_tree(out, depth + 1);
            }
            PhysPlan::Sort { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(e, desc)| format!("{e}{}", if *desc { " DESC" } else { "" }))
                    .collect();
                out.push_str(&format!("{pad}Sort: {}\n", ks.join(", ")));
                input.fmt_tree(out, depth + 1);
            }
            PhysPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let gs: Vec<String> = group_by.iter().map(|g| g.to_string()).collect();
                let asx: Vec<String> = aggs
                    .iter()
                    .map(|(f, a, _)| match a {
                        Some(e) => format!("{f}({e})"),
                        None => format!("{f}(*)"),
                    })
                    .collect();
                if gs.is_empty() {
                    out.push_str(&format!("{pad}Aggregate: {}\n", asx.join(", ")));
                } else {
                    out.push_str(&format!(
                        "{pad}Aggregate: {} GROUP BY {}\n",
                        asx.join(", "),
                        gs.join(", ")
                    ));
                }
                input.fmt_tree(out, depth + 1);
            }
            PhysPlan::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.fmt_tree(out, depth + 1);
            }
            PhysPlan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit: {n}\n"));
                input.fmt_tree(out, depth + 1);
            }
            PhysPlan::ReqSync { input, attrs, .. } => {
                let al: Vec<String> = attrs.iter().map(|a| a.to_string()).collect();
                out.push_str(&format!("{pad}ReqSync [{}]\n", al.join(", ")));
                input.fmt_tree(out, depth + 1);
            }
        }
    }
}

fn spec_text(spec: &EvSpec) -> String {
    let kind = match spec.kind {
        VTableKind::WebCount => "WebCount",
        VTableKind::WebPages => "WebPages",
    };
    let mut conds = Vec::new();
    for (i, b) in spec.bindings.iter().enumerate() {
        match b {
            EvBinding::Const(v) => conds.push(format!("T{} = '{v}'", i + 1)),
            EvBinding::Column(c) => conds.push(format!("T{} = {c}", i + 1)),
        }
    }
    if spec.kind == VTableKind::WebPages {
        conds.push(format!("Rank <= {}", spec.rank_limit));
    }
    format!(
        "{kind}@{} AS {} ({})",
        spec.engine,
        spec.alias,
        conds.join(", ")
    )
}

fn dependent_join_label(right: &PhysPlan) -> String {
    // Describe the binding the inner scan receives (paper figures label
    // dependent joins "Sigs.Name + WebCount.T1").
    fn find_spec(p: &PhysPlan) -> Option<&EvSpec> {
        match p {
            PhysPlan::EVScan(s) | PhysPlan::AEVScan(s) => Some(s),
            PhysPlan::Filter { input, .. } | PhysPlan::ReqSync { input, .. } => find_spec(input),
            _ => None,
        }
    }
    match find_spec(right) {
        Some(spec) => {
            let parts: Vec<String> = spec
                .bindings
                .iter()
                .enumerate()
                .filter_map(|(i, b)| match b {
                    EvBinding::Column(c) => Some(format!("{c} -> {}.T{}", spec.alias, i + 1)),
                    EvBinding::Const(_) => None,
                })
                .collect();
            if parts.is_empty() {
                "(constant bindings)".to_string()
            } else {
                parts.join(", ")
            }
        }
        None => String::new(),
    }
}

impl fmt::Display for PhysPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(kind: VTableKind, near: bool) -> EvSpec {
        EvSpec {
            kind,
            engine: "AV".into(),
            alias: "WebCount".into(),
            template: None,
            bindings: vec![
                EvBinding::Column(ColumnRef {
                    qualifier: Some("States".into()),
                    name: "Name".into(),
                }),
                EvBinding::Const(Value::from("four corners")),
            ],
            rank_limit: 19,
            supports_near: near,
            prefetch: PrefetchHint::default(),
        }
    }

    #[test]
    fn default_template_depends_on_near_support() {
        assert_eq!(
            spec(VTableKind::WebCount, true).effective_template(),
            "%1 near %2"
        );
        assert_eq!(
            spec(VTableKind::WebCount, false).effective_template(),
            "%1 %2"
        );
    }

    #[test]
    fn instantiation_quotes_multiword_terms() {
        let s = spec(VTableKind::WebCount, true);
        let expr = s.instantiate(&[Value::from("New Mexico"), Value::from("four corners")]);
        assert_eq!(expr, "\"New Mexico\" near \"four corners\"");
        let expr = s.instantiate(&[Value::from("Utah"), Value::from("skiing")]);
        assert_eq!(expr, "Utah near skiing");
    }

    #[test]
    fn instantiation_handles_ten_plus_params() {
        let mut s = spec(VTableKind::WebCount, false);
        s.template = Some("%10 %1".to_string());
        s.bindings = (0..10).map(|i| EvBinding::Const(Value::Int(i))).collect();
        let vals: Vec<Value> = (0..10).map(Value::Int).collect();
        assert_eq!(s.instantiate(&vals), "9 0");
    }

    #[test]
    fn explicit_template_wins() {
        let mut s = spec(VTableKind::WebCount, true);
        s.template = Some("%1 AND %2".into());
        assert_eq!(s.effective_template(), "%1 AND %2");
    }

    #[test]
    fn schemas_by_kind() {
        let s = spec(VTableKind::WebCount, true).schema();
        assert_eq!(
            s.columns()
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            vec!["SearchExp", "T1", "T2", "Count"]
        );
        let s = spec(VTableKind::WebPages, true).schema();
        assert_eq!(
            s.columns()
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            vec!["SearchExp", "T1", "T2", "URL", "Rank", "Date"]
        );
    }

    #[test]
    fn external_attrs_are_the_placeholder_columns() {
        let a = spec(VTableKind::WebCount, true).external_attrs();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].to_string(), "WebCount.Count");
        let a = spec(VTableKind::WebPages, true).external_attrs();
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn display_renders_a_paper_like_tree() {
        let plan = PhysPlan::Sort {
            keys: vec![(Expr::column("Count"), true)],
            input: Box::new(PhysPlan::ReqSync {
                attrs: spec(VTableKind::WebCount, true).external_attrs(),
                mode: BufferMode::Full,
                cap: None,
                input: Box::new(PhysPlan::DependentJoin {
                    left: Box::new(PhysPlan::SeqScan {
                        table: "Sigs".into(),
                        alias: "Sigs".into(),
                        schema: Schema::new(vec![Column::qualified(
                            "Sigs",
                            "Name",
                            DataType::Varchar,
                        )]),
                    }),
                    right: Box::new(PhysPlan::AEVScan(spec(VTableKind::WebCount, true))),
                }),
            }),
        };
        let text = plan.display();
        assert!(text.contains("Sort: Count DESC"));
        assert!(text.contains("ReqSync [WebCount.Count]"));
        assert!(text.contains("Dependent Join: States.Name -> WebCount.T1"));
        assert!(text.contains("AEVScan: WebCount@AV"));
        // Indentation shows tree depth.
        assert!(text.contains("\n  ReqSync"));
        assert!(text.contains("\n      Scan: Sigs"));
    }

    #[test]
    fn schema_of_joins_concatenates() {
        let left = PhysPlan::SeqScan {
            table: "A".into(),
            alias: "A".into(),
            schema: Schema::new(vec![Column::qualified("A", "x", DataType::Int)]),
        };
        let right = PhysPlan::SeqScan {
            table: "B".into(),
            alias: "B".into(),
            schema: Schema::new(vec![Column::qualified("B", "y", DataType::Int)]),
        };
        let j = PhysPlan::CrossProduct {
            left: Box::new(left),
            right: Box::new(right),
        };
        assert_eq!(j.schema().len(), 2);
        assert_eq!(j.node_count(), 3);
    }
}
