//! Query planning: AST → synchronous physical plan.
//!
//! Join order follows the `FROM` clause (Redbase has no join-order
//! optimizer; the paper's prototype relies on user-specified order, §5).
//! Virtual tables are recognized by name (`WebCount[_E]` / `WebPages[_E]`)
//! and undergo **binding analysis** (§3): every `Ti` referenced anywhere in
//! the query must be bound in the `WHERE` clause to a constant or — via
//! equi-join — to a column of a table *earlier* in the `FROM` clause; the
//! binding conjuncts are consumed into the scan's [`EvSpec`] and satisfied
//! by a dependent join.

use crate::catalog::Catalog;
use crate::engines::EngineRegistry;
use crate::plan::{EvBinding, EvSpec, PhysPlan, PrefetchHint, VTableKind};
use wsq_common::{Result, Schema, WsqError};
use wsq_sql::ast::{AggFunc, BinOp, ColumnRef, Expr, Literal, SelectItem, SelectStmt};

/// The paper's default guard against runaway `WebPages` scans: `Rank < 20`
/// means ranks 1..=19.
pub const DEFAULT_RANK_LIMIT: u32 = 19;

/// Is `name` a virtual-table reference? Returns the kind and the engine
/// suffix (`None` = default engine).
pub fn parse_virtual_name(name: &str) -> Option<(VTableKind, Option<&str>)> {
    let lower = name.to_ascii_lowercase();
    for (prefix, kind) in [
        ("webcount", VTableKind::WebCount),
        ("webpages", VTableKind::WebPages),
    ] {
        if lower == prefix {
            return Some((kind, None));
        }
        if lower.starts_with(prefix) && name.len() > prefix.len() {
            let rest = &name[prefix.len()..];
            if let Some(suffix) = rest.strip_prefix('_') {
                if !suffix.is_empty() {
                    return Some((kind, Some(suffix)));
                }
            }
        }
    }
    None
}

/// One WHERE conjunct with a consumed flag.
struct Conjunct {
    expr: Expr,
    used: bool,
}

/// Plan a SELECT into a synchronous physical plan.
pub fn plan_select(
    stmt: &SelectStmt,
    catalog: &Catalog,
    engines: &EngineRegistry,
) -> Result<PhysPlan> {
    plan_select_depth(stmt, catalog, engines, 0)
}

/// Maximum view-expansion nesting (guards against definition cycles).
const MAX_VIEW_DEPTH: usize = 16;

fn plan_select_depth(
    stmt: &SelectStmt,
    catalog: &Catalog,
    engines: &EngineRegistry,
    depth: usize,
) -> Result<PhysPlan> {
    if depth > MAX_VIEW_DEPTH {
        return Err(WsqError::Plan(
            "view nesting exceeds the maximum depth (cyclic definition?)".to_string(),
        ));
    }
    if stmt.from.is_empty() {
        return Err(WsqError::Plan("FROM clause is required".to_string()));
    }

    // Duplicate binding names are ambiguous.
    {
        let mut seen = std::collections::HashSet::new();
        for t in &stmt.from {
            if !seen.insert(t.binding_name().to_ascii_lowercase()) {
                return Err(WsqError::Plan(format!(
                    "duplicate table name/alias '{}' in FROM",
                    t.binding_name()
                )));
            }
        }
    }

    let mut conjuncts: Vec<Conjunct> = stmt
        .where_clause
        .clone()
        .map(|e| e.split_conjuncts())
        .unwrap_or_default()
        .into_iter()
        .map(|expr| Conjunct { expr, used: false })
        .collect();

    // Which FROM entries are virtual? (Needed to attribute unqualified
    // `Ti` references when only one virtual table is present.)
    let virtuals: Vec<usize> = stmt
        .from
        .iter()
        .enumerate()
        .filter(|(_, t)| parse_virtual_name(&t.table).is_some())
        .map(|(i, _)| i)
        .collect();

    let mut plan: Option<PhysPlan> = None;
    let mut running = Schema::empty();

    for (idx, tref) in stmt.from.iter().enumerate() {
        let alias = tref.binding_name().to_string();
        match parse_virtual_name(&tref.table) {
            None if catalog.view_definition(&tref.table).is_some() => {
                // A view: expand its definition as a subplan, re-qualified
                // under the binding alias (WebCount itself is "an
                // aggregate view over WebPages", paper §1 — stored views
                // get the same treatment).
                let definition = catalog
                    .view_definition(&tref.table)
                    .expect("checked above")
                    .to_string();
                let view_stmt = match wsq_sql::parse_one(&definition)? {
                    wsq_sql::Statement::Select(s) => s,
                    _ => {
                        return Err(WsqError::Plan(format!(
                            "view '{}' definition is not a SELECT",
                            tref.table
                        )))
                    }
                };
                let sub = plan_select_depth(&view_stmt, catalog, engines, depth + 1)?;
                let sub_schema = sub.schema();
                let mut items = Vec::with_capacity(sub_schema.len());
                let mut cols = Vec::with_capacity(sub_schema.len());
                for (_, c) in sub_schema.iter() {
                    items.push((
                        Expr::Column(ColumnRef {
                            qualifier: c.qualifier.clone(),
                            name: c.name.clone(),
                        }),
                        c.name.clone(),
                    ));
                    cols.push(wsq_common::Column::qualified(&alias, &c.name, c.dtype));
                }
                let schema = Schema::new(cols);
                let mut node = PhysPlan::Project {
                    input: Box::new(sub),
                    items,
                    schema: schema.clone(),
                };
                node = attach_filters(node, &mut conjuncts, &schema)?;
                plan = Some(match plan.take() {
                    None => node,
                    Some(left) => {
                        let combined = running.join(&schema);
                        join_with_predicates(left, node, &combined, &mut conjuncts)?
                    }
                });
                running = plan.as_ref().expect("just set").schema();
            }
            None => {
                // Stored table. Prefer a B+-tree lookup when an equality
                // conjunct hits an indexed column (Redbase's access-path
                // choice: index over file scan for equality selections).
                let stored = catalog.table_schema(&tref.table)?;
                let schema = stored.with_qualifier(&alias);
                let mut node = match pick_index_access(
                    catalog,
                    &tref.table,
                    &alias,
                    &schema,
                    &mut conjuncts,
                ) {
                    Some(scan) => scan,
                    None => PhysPlan::SeqScan {
                        table: tref.table.clone(),
                        alias: alias.clone(),
                        schema: schema.clone(),
                    },
                };
                // Push down single-table predicates.
                node = attach_filters(node, &mut conjuncts, &schema)?;
                plan = Some(match plan.take() {
                    None => node,
                    Some(left) => {
                        let combined = running.join(&schema);
                        join_with_predicates(left, node, &combined, &mut conjuncts)?
                    }
                });
                running = plan.as_ref().expect("just set").schema();
            }
            Some((kind, engine_suffix)) => {
                let engine_name = match engine_suffix {
                    Some(s) => engines.get(s)?.0.to_string(),
                    None => engines.default_name()?.to_string(),
                };
                let (_, entry) = engines.get(&engine_name)?;
                let supports_near = entry.supports_near;
                let only_virtual = virtuals.len() == 1 && virtuals[0] == idx;

                let spec = analyze_virtual(
                    stmt,
                    &mut conjuncts,
                    kind,
                    engine_name,
                    &alias,
                    supports_near,
                    only_virtual,
                    &running,
                )?;
                let right = PhysPlan::EVScan(spec);
                let left = match plan.take() {
                    Some(p) => p,
                    // Standalone virtual table: drive the dependent join
                    // with one empty tuple.
                    None => PhysPlan::Values {
                        schema: Schema::empty(),
                        rows: vec![vec![]],
                    },
                };
                let mut node = PhysPlan::DependentJoin {
                    left: Box::new(left),
                    right: Box::new(right),
                };
                running = node.schema();
                // Attach now-resolvable predicates (e.g. on Count/URL).
                node = attach_filters(node, &mut conjuncts, &running)?;
                plan = Some(node);
            }
        }
    }

    let mut plan = plan.expect("FROM checked non-empty");
    running = plan.schema();

    // Any leftover conjunct must now resolve, or the query is erroneous.
    for c in conjuncts.iter_mut().filter(|c| !c.used) {
        for col in c.expr.columns() {
            running.resolve(col.qualifier.as_deref(), &col.name)?;
        }
        c.used = true;
        plan = PhysPlan::Filter {
            input: Box::new(plan),
            predicate: c.expr.clone(),
        };
    }

    // Projection / aggregation.
    let has_agg = !stmt.group_by.is_empty()
        || stmt.having.is_some()
        || stmt.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            SelectItem::Star => false,
        });

    let items = expand_items(&stmt.items, &running, has_agg)?;

    if has_agg {
        plan = plan_aggregation(plan, stmt, &items)?;
        if stmt.distinct {
            plan = PhysPlan::Distinct {
                input: Box::new(plan),
            };
        }
        // ORDER BY over aggregates: keys must reference the projected
        // outputs (by alias/name/ordinal or syntactic equality).
        if !stmt.order_by.is_empty() {
            let out_schema = plan.schema();
            let keys = stmt
                .order_by
                .iter()
                .map(|o| Ok((rewrite_order_key(&o.expr, &items, &out_schema)?, o.desc)))
                .collect::<Result<Vec<_>>>()?;
            plan = PhysPlan::Sort {
                input: Box::new(plan),
                keys,
            };
        }
    } else {
        // Non-aggregate queries sort BELOW the projection, so keys may
        // reference any input column (`SELECT Name … ORDER BY Population`).
        // Aliases and ordinals are first rewritten to the select item's
        // expression. Distinct and Project both preserve encounter order,
        // so the sort survives them.
        if !stmt.order_by.is_empty() {
            let keys = stmt
                .order_by
                .iter()
                .map(|o| {
                    let expr = dealias_order_key(&o.expr, &items)?;
                    // Validate against the input schema now for a clear
                    // error message.
                    for col in expr.columns() {
                        running.resolve(col.qualifier.as_deref(), &col.name)?;
                    }
                    Ok((expr, o.desc))
                })
                .collect::<Result<Vec<_>>>()?;
            plan = PhysPlan::Sort {
                input: Box::new(plan),
                keys,
            };
        }
        let schema = project_schema(&items, &running);
        plan = PhysPlan::Project {
            input: Box::new(plan),
            items: items.clone(),
            schema,
        };
        if stmt.distinct {
            plan = PhysPlan::Distinct {
                input: Box::new(plan),
            };
        }
    }

    if let Some(n) = stmt.limit {
        plan = PhysPlan::Limit {
            input: Box::new(plan),
            n,
        };
    }

    Ok(plan)
}

/// Choose an index access path: the first unused `col = literal` conjunct
/// over an indexed column of this table turns the scan into an
/// [`PhysPlan::IndexScan`] (consuming the conjunct).
fn pick_index_access(
    catalog: &Catalog,
    table: &str,
    alias: &str,
    schema: &Schema,
    conjuncts: &mut [Conjunct],
) -> Option<PhysPlan> {
    for c in conjuncts.iter_mut().filter(|c| !c.used) {
        let Expr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } = &c.expr
        else {
            continue;
        };
        for (col_side, lit_side) in [(lhs, rhs), (rhs, lhs)] {
            let (Expr::Column(col), Expr::Literal(lit)) = (col_side.as_ref(), lit_side.as_ref())
            else {
                continue;
            };
            if schema
                .try_resolve(col.qualifier.as_deref(), &col.name)
                .is_none()
            {
                continue;
            }
            if !catalog.has_index(table, &col.name) {
                continue;
            }
            c.used = true;
            return Some(PhysPlan::IndexScan {
                table: table.to_string(),
                alias: alias.to_string(),
                column: col.name.clone(),
                key: crate::expr::literal_value(lit),
                schema: schema.clone(),
            });
        }
    }
    None
}

/// Attach every unused conjunct fully resolvable against `schema`.
fn attach_filters(
    mut node: PhysPlan,
    conjuncts: &mut [Conjunct],
    schema: &Schema,
) -> Result<PhysPlan> {
    for c in conjuncts.iter_mut().filter(|c| !c.used) {
        let all_resolve = c.expr.columns().iter().all(|col| {
            schema
                .try_resolve(col.qualifier.as_deref(), &col.name)
                .is_some()
        });
        if all_resolve && !c.expr.contains_aggregate() {
            c.used = true;
            node = PhysPlan::Filter {
                input: Box::new(node),
                predicate: c.expr.clone(),
            };
        }
    }
    Ok(node)
}

/// Join two subtrees, turning newly-resolvable conjuncts into the join
/// predicate (none → cross product).
fn join_with_predicates(
    left: PhysPlan,
    right: PhysPlan,
    combined: &Schema,
    conjuncts: &mut [Conjunct],
) -> Result<PhysPlan> {
    let mut preds = Vec::new();
    for c in conjuncts.iter_mut().filter(|c| !c.used) {
        let all_resolve = c.expr.columns().iter().all(|col| {
            combined
                .try_resolve(col.qualifier.as_deref(), &col.name)
                .is_some()
        });
        if all_resolve && !c.expr.contains_aggregate() {
            c.used = true;
            preds.push(c.expr.clone());
        }
    }
    Ok(match Expr::join_conjuncts(preds) {
        Some(predicate) => PhysPlan::NestedLoopJoin {
            left: Box::new(left),
            right: Box::new(right),
            predicate,
        },
        None => PhysPlan::CrossProduct {
            left: Box::new(left),
            right: Box::new(right),
        },
    })
}

/// Does a column reference denote `alias.Ti` (or unqualified `Ti` when
/// this is the only virtual table)? Returns the 1-based index.
fn t_index(col: &ColumnRef, alias: &str, only_virtual: bool) -> Option<usize> {
    let name = col.name.as_str();
    let rest = name.strip_prefix(['T', 't'])?;
    if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let idx: usize = rest.parse().ok()?;
    if idx == 0 {
        return None;
    }
    match &col.qualifier {
        Some(q) if q.eq_ignore_ascii_case(alias) => Some(idx),
        Some(_) => None,
        None if only_virtual => Some(idx),
        None => None,
    }
}

/// Does a column reference denote `alias.<field>`?
fn is_vcol(col: &ColumnRef, alias: &str, field: &str, only_virtual: bool) -> bool {
    if !col.name.eq_ignore_ascii_case(field) {
        return false;
    }
    match &col.qualifier {
        Some(q) => q.eq_ignore_ascii_case(alias),
        None => only_virtual,
    }
}

/// Binding analysis for one virtual table reference (§3).
#[allow(clippy::too_many_arguments)]
fn analyze_virtual(
    stmt: &SelectStmt,
    conjuncts: &mut [Conjunct],
    kind: VTableKind,
    engine: String,
    alias: &str,
    supports_near: bool,
    only_virtual: bool,
    left_schema: &Schema,
) -> Result<EvSpec> {
    // 1. How many T columns does this query use? (The virtual table is an
    //    "infinite family" — the column count is query-dependent, §3.)
    let mut n = 0usize;
    let mut visit = |e: &Expr| {
        for col in e.columns() {
            if let Some(i) = t_index(col, alias, only_virtual) {
                n = n.max(i);
            }
        }
    };
    for item in &stmt.items {
        if let SelectItem::Expr { expr, .. } = item {
            visit(expr);
        }
    }
    if let Some(w) = &stmt.where_clause {
        visit(w);
    }
    for o in &stmt.order_by {
        visit(&o.expr);
    }

    // 2. Bind each Ti from an equality conjunct.
    let mut bindings: Vec<Option<EvBinding>> = vec![None; n];
    let mut template: Option<String> = None;
    let mut rank_limit: Option<u32> = None;

    for c in conjuncts.iter_mut().filter(|c| !c.used) {
        let Expr::Binary { op, lhs, rhs } = &c.expr else {
            continue;
        };
        // Normalize so the virtual column is on the left.
        let sides = [
            (lhs.as_ref(), rhs.as_ref(), *op),
            (rhs.as_ref(), lhs.as_ref(), flip(*op)),
        ];
        for (vside, other, op) in sides {
            let Expr::Column(vcol) = vside else { continue };

            // Ti = <const | earlier column>
            if op == BinOp::Eq {
                if let Some(i) = t_index(vcol, alias, only_virtual) {
                    let binding = match other {
                        Expr::Literal(lit) => {
                            Some(EvBinding::Const(crate::expr::literal_value(lit)))
                        }
                        Expr::Column(c2) => {
                            if t_index(c2, alias, only_virtual).is_some() {
                                None // Ti = Tj is not a binding
                            } else {
                                left_schema
                                    .try_resolve(c2.qualifier.as_deref(), &c2.name)
                                    .map(|_| EvBinding::Column(c2.clone()))
                            }
                        }
                        _ => None,
                    };
                    if let Some(b) = binding {
                        if bindings[i - 1].is_none() {
                            bindings[i - 1] = Some(b);
                            c.used = true;
                            break;
                        }
                    }
                }
                // SearchExp = 'literal'
                if is_vcol(vcol, alias, "SearchExp", only_virtual) {
                    if let Expr::Literal(Literal::Str(s)) = other {
                        template = Some(s.clone());
                        c.used = true;
                        break;
                    }
                }
            }

            // Rank <= k / Rank < k → engine-side rank bound.
            if kind == VTableKind::WebPages
                && is_vcol(vcol, alias, "Rank", only_virtual)
                && matches!(op, BinOp::LtEq | BinOp::Lt)
            {
                if let Expr::Literal(Literal::Int(k)) = other {
                    let bound = match op {
                        BinOp::LtEq => *k,
                        _ => *k - 1,
                    };
                    if bound >= 0 {
                        let bound = bound as u32;
                        rank_limit = Some(rank_limit.map_or(bound, |cur| cur.min(bound)));
                        c.used = true;
                        break;
                    }
                }
            }
        }
    }

    // 3. Every referenced Ti must be bound (the columns are engine inputs).
    let bindings: Vec<EvBinding> = bindings
        .into_iter()
        .enumerate()
        .map(|(i, b)| {
            b.ok_or_else(|| {
                WsqError::Plan(format!(
                    "virtual table '{alias}': T{} is not bound to a constant or an \
                     earlier table's column",
                    i + 1
                ))
            })
        })
        .collect::<Result<Vec<_>>>()?;

    if bindings.is_empty() && template.is_none() {
        return Err(WsqError::Plan(format!(
            "virtual table '{alias}': no search terms bound (reference T1 or bind \
             SearchExp)"
        )));
    }

    Ok(EvSpec {
        kind,
        engine,
        alias: alias.to_string(),
        template,
        bindings,
        rank_limit: rank_limit.unwrap_or(DEFAULT_RANK_LIMIT),
        supports_near,
        prefetch: PrefetchHint::default(),
    })
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::LtEq => BinOp::GtEq,
        BinOp::Gt => BinOp::Lt,
        BinOp::GtEq => BinOp::LtEq,
        other => other,
    }
}

/// Expand `*` and name every select item. Column references are validated
/// against `schema` here so planning (not just execution) rejects unknown
/// columns — view definitions rely on this.
fn expand_items(
    items: &[SelectItem],
    schema: &Schema,
    has_agg: bool,
) -> Result<Vec<(Expr, String)>> {
    let mut out = Vec::new();
    for item in items {
        if let SelectItem::Expr { expr, .. } = item {
            for col in expr.columns() {
                schema.resolve(col.qualifier.as_deref(), &col.name)?;
            }
        }
        match item {
            SelectItem::Star => {
                if has_agg {
                    return Err(WsqError::Plan(
                        "SELECT * cannot be combined with aggregation".to_string(),
                    ));
                }
                for (_, col) in schema.iter() {
                    out.push((
                        Expr::Column(ColumnRef {
                            qualifier: col.qualifier.clone(),
                            name: col.name.clone(),
                        }),
                        col.name.clone(),
                    ));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = match alias {
                    Some(a) => a.clone(),
                    None => match expr {
                        Expr::Column(c) => c.name.clone(),
                        other => other.to_string(),
                    },
                };
                out.push((expr.clone(), name));
            }
        }
    }
    Ok(out)
}

/// Output schema of a projection.
fn project_schema(items: &[(Expr, String)], input: &Schema) -> Schema {
    Schema::new(
        items
            .iter()
            .map(|(e, name)| {
                let dt = crate::expr::infer_type(e, input).unwrap_or(wsq_common::DataType::Varchar);
                wsq_common::Column::new(name.clone(), dt)
            })
            .collect(),
    )
}

/// Plan GROUP BY / aggregate queries: Aggregate computes raw aggregates
/// under synthetic names, a Project above computes the final expressions.
fn plan_aggregation(
    input: PhysPlan,
    stmt: &SelectStmt,
    items: &[(Expr, String)],
) -> Result<PhysPlan> {
    let in_schema = input.schema();

    // Validate grouping columns resolve.
    for g in &stmt.group_by {
        in_schema.resolve(g.qualifier.as_deref(), &g.name)?;
    }

    // Collect distinct aggregate calls across all select items.
    let mut aggs: Vec<(AggFunc, Option<Expr>, String)> = Vec::new();
    let mut rewritten_items: Vec<(Expr, String)> = Vec::new();
    for (expr, name) in items {
        let rewritten = rewrite_aggs(expr, &mut aggs)?;
        // Non-aggregate select columns must appear in GROUP BY.
        if !expr.contains_aggregate() {
            if let Expr::Column(c) = expr {
                let in_group = stmt.group_by.iter().any(|g| {
                    g.name.eq_ignore_ascii_case(&c.name)
                        && match (&g.qualifier, &c.qualifier) {
                            (Some(a), Some(b)) => a.eq_ignore_ascii_case(b),
                            _ => true,
                        }
                });
                if !in_group {
                    return Err(WsqError::Plan(format!(
                        "column '{c}' must appear in GROUP BY or inside an aggregate"
                    )));
                }
            } else {
                return Err(WsqError::Plan(format!(
                    "non-aggregate expression '{expr}' requires GROUP BY column"
                )));
            }
        }
        rewritten_items.push((rewritten, name.clone()));
    }

    // HAVING: rewrite its aggregate calls against the same synthetic
    // columns and filter between the Aggregate and the final Project.
    let having = stmt
        .having
        .as_ref()
        .map(|h| rewrite_aggs(h, &mut aggs))
        .transpose()?;

    let mut agg_plan = PhysPlan::Aggregate {
        input: Box::new(input),
        group_by: stmt.group_by.clone(),
        aggs: aggs.clone(),
    };
    if let Some(h) = having {
        agg_plan = PhysPlan::Filter {
            input: Box::new(agg_plan),
            predicate: strip_qualifiers_in_group_refs(h, &stmt.group_by),
        };
    }
    let agg_schema = agg_plan.schema();

    // Rewrite grouped column references to the aggregate's output names
    // (unqualified group column names).
    let final_items: Vec<(Expr, String)> = rewritten_items
        .into_iter()
        .map(|(e, name)| (strip_qualifiers_in_group_refs(e, &stmt.group_by), name))
        .collect();
    let schema = project_schema(&final_items, &agg_schema);
    Ok(PhysPlan::Project {
        input: Box::new(agg_plan),
        items: final_items,
        schema,
    })
}

/// Replace aggregate calls with references to synthetic columns, adding
/// each distinct call to `aggs`.
fn rewrite_aggs(expr: &Expr, aggs: &mut Vec<(AggFunc, Option<Expr>, String)>) -> Result<Expr> {
    Ok(match expr {
        Expr::Agg { func, arg } => {
            let arg_expr = arg.as_ref().map(|a| a.as_ref().clone());
            // Reuse an identical aggregate if present.
            let pos = aggs
                .iter()
                .position(|(f, a, _)| f == func && a == &arg_expr)
                .unwrap_or_else(|| {
                    let name = format!("#agg{}", aggs.len());
                    aggs.push((*func, arg_expr.clone(), name));
                    aggs.len() - 1
                });
            Expr::Column(ColumnRef {
                qualifier: None,
                name: aggs[pos].2.clone(),
            })
        }
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(rewrite_aggs(lhs, aggs)?),
            rhs: Box::new(rewrite_aggs(rhs, aggs)?),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(rewrite_aggs(expr, aggs)?),
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(rewrite_aggs(expr, aggs)?),
            pattern: Box::new(rewrite_aggs(pattern, aggs)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(rewrite_aggs(expr, aggs)?),
            list: list
                .iter()
                .map(|e| rewrite_aggs(e, aggs))
                .collect::<Result<Vec<_>>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(rewrite_aggs(expr, aggs)?),
            low: Box::new(rewrite_aggs(low, aggs)?),
            high: Box::new(rewrite_aggs(high, aggs)?),
            negated: *negated,
        },
        other => other.clone(),
    })
}

/// After aggregation, group columns are exposed unqualified; strip
/// qualifiers from references to them.
fn strip_qualifiers_in_group_refs(expr: Expr, group_by: &[ColumnRef]) -> Expr {
    match expr {
        Expr::Column(c) => {
            if group_by
                .iter()
                .any(|g| g.name.eq_ignore_ascii_case(&c.name))
            {
                Expr::Column(ColumnRef {
                    qualifier: None,
                    name: c.name,
                })
            } else {
                Expr::Column(c)
            }
        }
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op,
            lhs: Box::new(strip_qualifiers_in_group_refs(*lhs, group_by)),
            rhs: Box::new(strip_qualifiers_in_group_refs(*rhs, group_by)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op,
            expr: Box::new(strip_qualifiers_in_group_refs(*expr, group_by)),
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(strip_qualifiers_in_group_refs(*expr, group_by)),
            pattern: Box::new(strip_qualifiers_in_group_refs(*pattern, group_by)),
            negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(strip_qualifiers_in_group_refs(*expr, group_by)),
            list: list
                .into_iter()
                .map(|e| strip_qualifiers_in_group_refs(e, group_by))
                .collect(),
            negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(strip_qualifiers_in_group_refs(*expr, group_by)),
            low: Box::new(strip_qualifiers_in_group_refs(*low, group_by)),
            high: Box::new(strip_qualifiers_in_group_refs(*high, group_by)),
            negated,
        },
        other => other,
    }
}

/// Rewrite an ORDER BY key for a below-projection sort: ordinals and
/// output-name references become the corresponding select item's
/// expression; everything else passes through to resolve against the
/// input schema.
fn dealias_order_key(expr: &Expr, items: &[(Expr, String)]) -> Result<Expr> {
    if let Expr::Literal(Literal::Int(k)) = expr {
        if *k >= 1 && (*k as usize) <= items.len() {
            return Ok(items[*k as usize - 1].0.clone());
        }
        return Err(WsqError::Plan(format!(
            "ORDER BY ordinal {k} out of range (1..={})",
            items.len()
        )));
    }
    if let Expr::Column(c) = expr {
        if c.qualifier.is_none() {
            if let Some((e, _)) = items
                .iter()
                .find(|(_, name)| name.eq_ignore_ascii_case(&c.name))
            {
                return Ok(e.clone());
            }
        }
    }
    Ok(expr.clone())
}

/// Resolve an ORDER BY key against the projected output: ordinals, output
/// names/aliases, or syntactic equality with a select item.
fn rewrite_order_key(expr: &Expr, items: &[(Expr, String)], out_schema: &Schema) -> Result<Expr> {
    // Ordinal.
    if let Expr::Literal(Literal::Int(k)) = expr {
        if *k >= 1 && (*k as usize) <= out_schema.len() {
            return Ok(expr.clone());
        }
        return Err(WsqError::Plan(format!(
            "ORDER BY ordinal {k} out of range (1..={})",
            out_schema.len()
        )));
    }
    // Syntactic match with a select item → its output name.
    if let Some((_, name)) = items.iter().find(|(e, _)| e == expr) {
        return Ok(Expr::Column(ColumnRef {
            qualifier: None,
            name: name.clone(),
        }));
    }
    // A name in the output schema (alias or passed-through column).
    if let Expr::Column(c) = expr {
        if out_schema
            .try_resolve(c.qualifier.as_deref(), &c.name)
            .is_some()
        {
            return Ok(expr.clone());
        }
        if c.qualifier.is_some() && out_schema.try_resolve(None, &c.name).is_some() {
            return Ok(Expr::Column(ColumnRef {
                qualifier: None,
                name: c.name.clone(),
            }));
        }
    }
    Err(WsqError::Plan(format!(
        "ORDER BY key '{expr}' does not reference the select list"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engines::EngineRegistry;
    use std::sync::Arc;
    use wsq_common::{Column, DataType};
    use wsq_pump::{SearchRequest, SearchResult, SearchService, ServiceReply};

    struct Dummy;
    impl SearchService for Dummy {
        fn execute(&self, _req: &SearchRequest) -> ServiceReply {
            ServiceReply::instant(SearchResult::Count(0))
        }
    }

    fn setup() -> (Catalog, EngineRegistry) {
        let pool = Arc::new(wsq_storage::BufferPool::new(16));
        let f1 = pool.register_file(Box::new(wsq_storage::MemStorage::new()));
        let f2 = pool.register_file(Box::new(wsq_storage::MemStorage::new()));
        let f3 = pool.register_file(Box::new(wsq_storage::MemStorage::new()));
        let f4 = pool.register_file(Box::new(wsq_storage::MemStorage::new()));
        let mut catalog = Catalog::create(pool, f1, f2, f3, f4).unwrap();
        catalog
            .create_table(
                "States",
                &Schema::new(vec![
                    Column::new("Name", DataType::Varchar),
                    Column::new("Population", DataType::Int),
                ]),
            )
            .unwrap();
        let mut engines = EngineRegistry::new();
        engines.register("AV", Arc::new(Dummy), true);
        engines.register("Google", Arc::new(Dummy), false);
        (catalog, engines)
    }

    fn plan(sql: &str) -> crate::plan::PhysPlan {
        let (catalog, engines) = setup();
        let stmt = match wsq_sql::parse_one(sql).unwrap() {
            wsq_sql::Statement::Select(s) => s,
            _ => panic!(),
        };
        plan_select(&stmt, &catalog, &engines).unwrap()
    }

    fn plan_err(sql: &str) -> String {
        let (catalog, engines) = setup();
        let stmt = match wsq_sql::parse_one(sql).unwrap() {
            wsq_sql::Statement::Select(s) => s,
            _ => panic!(),
        };
        plan_select(&stmt, &catalog, &engines)
            .unwrap_err()
            .to_string()
    }

    fn find_spec(p: &PhysPlan) -> &EvSpec {
        match p {
            PhysPlan::EVScan(s) | PhysPlan::AEVScan(s) => s,
            PhysPlan::Filter { input, .. }
            | PhysPlan::Project { input, .. }
            | PhysPlan::Sort { input, .. }
            | PhysPlan::Limit { input, .. } => find_spec(input),
            PhysPlan::DependentJoin { left, right } => {
                if let Some(s) = try_find(right) {
                    s
                } else {
                    find_spec(left)
                }
            }
            other => panic!("no spec in {other}"),
        }
    }

    fn try_find(p: &PhysPlan) -> Option<&EvSpec> {
        match p {
            PhysPlan::EVScan(s) | PhysPlan::AEVScan(s) => Some(s),
            _ => None,
        }
    }

    #[test]
    fn virtual_name_parsing() {
        assert!(matches!(
            parse_virtual_name("WebCount"),
            Some((VTableKind::WebCount, None))
        ));
        assert!(matches!(
            parse_virtual_name("webpages_google"),
            Some((VTableKind::WebPages, Some("google")))
        ));
        assert!(parse_virtual_name("WebCount_").is_none());
        assert!(parse_virtual_name("WebCounter").is_none());
        assert!(parse_virtual_name("States").is_none());
    }

    #[test]
    fn default_rank_limit_applied() {
        let p = plan("SELECT URL FROM States, WebPages WHERE Name = T1");
        let spec = find_spec(&p);
        assert_eq!(spec.rank_limit, DEFAULT_RANK_LIMIT);
        // An explicit bound replaces it; the tighter bound wins.
        let p = plan("SELECT URL FROM States, WebPages WHERE Name = T1 AND Rank <= 7 AND Rank < 5");
        assert_eq!(find_spec(&p).rank_limit, 4);
    }

    #[test]
    fn default_template_depends_on_engine() {
        let p = plan("SELECT Count FROM States, WebCount WHERE Name = T1 AND T2 = 'x'");
        assert_eq!(find_spec(&p).effective_template(), "%1 near %2");
        let p = plan("SELECT Count FROM States, WebCount_Google WHERE Name = T1 AND T2 = 'x'");
        let spec = find_spec(&p);
        assert_eq!(spec.engine, "Google");
        assert!(!spec.supports_near);
        assert_eq!(spec.effective_template(), "%1 %2");
    }

    #[test]
    fn explicit_searchexp_consumed() {
        let p = plan(
            "SELECT Count FROM States, WebCount \
             WHERE SearchExp = '%2 AND %1' AND Name = T1 AND T2 = 'ski'",
        );
        let spec = find_spec(&p);
        assert_eq!(spec.template.as_deref(), Some("%2 AND %1"));
        assert_eq!(spec.bindings.len(), 2);
    }

    #[test]
    fn binding_errors_are_specific() {
        let err = plan_err("SELECT Count FROM States, WebCount WHERE T2 = 'x'");
        assert!(err.contains("T1"), "{err}");
        let err = plan_err("SELECT Count, T3 FROM States, WebCount WHERE Name = T1 AND T2 = 'x'");
        assert!(err.contains("T3"), "{err}");
        // Ti = Tj is not a binding.
        let err = plan_err("SELECT Count FROM States, WebCount WHERE T1 = T2");
        assert!(err.contains("T1") || err.contains("T2"), "{err}");
    }

    #[test]
    fn gap_in_t_indexes_is_an_error() {
        // Referencing T3 forces T1..T3 to exist; T2 unbound → error.
        let err = plan_err("SELECT Count FROM States, WebCount WHERE Name = T1 AND T3 = 'x'");
        assert!(err.contains("T2"), "{err}");
    }

    #[test]
    fn reversed_equality_binds_too() {
        let p = plan("SELECT Count FROM States, WebCount WHERE T1 = Name AND 'ski' = T2");
        let spec = find_spec(&p);
        assert_eq!(spec.bindings.len(), 2);
        assert!(matches!(spec.bindings[0], EvBinding::Column(_)));
        assert!(matches!(spec.bindings[1], EvBinding::Const(_)));
    }

    #[test]
    fn duplicate_alias_rejected() {
        let err = plan_err("SELECT 1 FROM States, States");
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn having_requires_group_context() {
        // HAVING forces aggregation planning; a bare column must then be
        // grouped.
        let err = plan_err("SELECT Name FROM States HAVING COUNT(*) > 1");
        assert!(err.contains("GROUP BY"), "{err}");
    }
}
