//! The search-engine registry: maps destination names (`"AV"`, `"Google"`)
//! to their services and capabilities.

use std::collections::HashMap;
use std::sync::Arc;
use wsq_common::{Result, WsqError};
use wsq_pump::SearchService;

/// A registered search engine.
#[derive(Clone)]
pub struct EngineEntry {
    /// The service executing requests (shared with the ReqPump).
    pub service: Arc<dyn SearchService>,
    /// Does the engine support the `NEAR` operator? Decides the default
    /// `SearchExp` template (paper §3 footnote 1).
    pub supports_near: bool,
}

/// Registry of search engines available to WSQ queries.
///
/// Virtual table references resolve here: `WebCount`/`WebPages` use the
/// default engine; `WebCount_<E>`/`WebPages_<E>` use engine `E`.
#[derive(Clone, Default)]
pub struct EngineRegistry {
    engines: HashMap<String, EngineEntry>,
    default: Option<String>,
}

impl EngineRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register engine `name`. The first registered engine becomes the
    /// default for unsuffixed `WebCount`/`WebPages` references.
    pub fn register(&mut self, name: &str, service: Arc<dyn SearchService>, supports_near: bool) {
        if self.default.is_none() {
            self.default = Some(name.to_string());
        }
        self.engines.insert(
            name.to_string(),
            EngineEntry {
                service,
                supports_near,
            },
        );
    }

    /// Override which engine is the default.
    pub fn set_default(&mut self, name: &str) -> Result<()> {
        if !self.engines.contains_key(name) {
            return Err(WsqError::Plan(format!("unknown engine '{name}'")));
        }
        self.default = Some(name.to_string());
        Ok(())
    }

    /// Look up an engine, case-insensitively.
    pub fn get(&self, name: &str) -> Result<(&str, &EngineEntry)> {
        if let Some((k, e)) = self.engines.get_key_value(name) {
            return Ok((k.as_str(), e));
        }
        // Case-insensitive fallback.
        for (k, e) in &self.engines {
            if k.eq_ignore_ascii_case(name) {
                return Ok((k.as_str(), e));
            }
        }
        Err(WsqError::Plan(format!("unknown search engine '{name}'")))
    }

    /// The default engine's name.
    pub fn default_name(&self) -> Result<&str> {
        self.default
            .as_deref()
            .ok_or_else(|| WsqError::Plan("no search engine registered".to_string()))
    }

    /// All registered engine names.
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.engines.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Is the registry empty?
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsq_pump::{SearchRequest, SearchResult, ServiceReply};

    struct Dummy;
    impl SearchService for Dummy {
        fn execute(&self, _req: &SearchRequest) -> ServiceReply {
            ServiceReply::instant(SearchResult::Count(0))
        }
    }

    #[test]
    fn first_registration_is_default() {
        let mut r = EngineRegistry::new();
        assert!(r.default_name().is_err());
        r.register("AV", Arc::new(Dummy), true);
        r.register("Google", Arc::new(Dummy), false);
        assert_eq!(r.default_name().unwrap(), "AV");
        r.set_default("Google").unwrap();
        assert_eq!(r.default_name().unwrap(), "Google");
        assert!(r.set_default("Bing").is_err());
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let mut r = EngineRegistry::new();
        r.register("Google", Arc::new(Dummy), false);
        let (name, entry) = r.get("google").unwrap();
        assert_eq!(name, "Google");
        assert!(!entry.supports_near);
        assert!(r.get("altavista").is_err());
    }

    #[test]
    fn names_sorted() {
        let mut r = EngineRegistry::new();
        r.register("Google", Arc::new(Dummy), false);
        r.register("AV", Arc::new(Dummy), true);
        assert_eq!(r.names(), vec!["AV", "Google"]);
    }
}
