//! An analytical cost model for plans with asynchronous iteration — the
//! paper's declared future work ("fully addressing cost-based query
//! optimization in the presence of asynchronous iteration … is beyond the
//! scope of this paper", §4.5).
//!
//! The model estimates, for a physical plan:
//!
//! * **cardinality** per operator (textbook selectivity heuristics);
//! * **external calls** — one per dependent-join outer row per virtual
//!   scan (times are dominated by these, §4);
//! * **synchronous wall time** — calls are strictly sequential:
//!   `calls × latency`;
//! * **asynchronous wall time** — calls overlap within each *wave*. A wave
//!   ends at every ReqSync that actually waits (one below another, e.g.
//!   when a binding depends on an earlier call's result, adds a wave).
//!   Per wave the pump's concurrency cap batches the calls:
//!   `waves × latency × ceil(calls_per_wave / max_concurrent)`.
//!
//! The estimates are deliberately coarse — their purpose is *ranking*
//! alternatives (sync vs async, Full vs InsertionOnly placement), which
//! the `cost_model_ranks_strategies` tests and the ablation harness
//! validate against measured times.

use crate::exec::TableSource;
use crate::plan::{PhysPlan, VTableKind};
use wsq_sql::ast::{BinOp, Expr};

/// Environment parameters for the model.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Expected per-request search latency, seconds.
    pub latency_secs: f64,
    /// ReqPump global concurrency cap.
    pub max_concurrent: usize,
    /// CPU cost per tuple processed locally, seconds.
    pub local_row_secs: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            latency_secs: 1.0, // the paper's 1999 search latency
            max_concurrent: 64,
            local_row_secs: 10e-6,
        }
    }
}

impl CostParams {
    /// Calibrate the model from live observability data: the median of
    /// the `wsq_call_latency_seconds` histogram replaces the paper's
    /// fixed 1-second guess, so rankings track the latency the deployed
    /// services actually exhibit. Falls back to [`CostParams::default`]
    /// for any parameter the registry cannot supply (obs disabled, or no
    /// completed calls yet).
    pub fn calibrated(obs: &wsq_obs::Obs, max_concurrent: usize) -> CostParams {
        let mut p = CostParams {
            max_concurrent: max_concurrent.max(1),
            ..CostParams::default()
        };
        if let Some(m) = obs.metrics() {
            if let Some(p50) = m.call_latency.snapshot().quantile(0.5) {
                p.latency_secs = p50.as_secs_f64().max(1e-6);
            }
        }
        p
    }
}

/// The model's output for one plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated external search calls.
    pub external_calls: f64,
    /// Sequential latency waves under asynchronous iteration.
    pub waves: u32,
    /// Estimated wall seconds, synchronous execution.
    pub sync_secs: f64,
    /// Estimated wall seconds, asynchronous execution.
    pub async_secs: f64,
    /// Estimated local processing seconds (both modes).
    pub local_secs: f64,
}

impl CostEstimate {
    /// The model's predicted improvement factor (Table 1's last column).
    pub fn improvement(&self) -> f64 {
        (self.sync_secs + self.local_secs) / (self.async_secs + self.local_secs).max(1e-12)
    }
}

/// Selectivity heuristics (System-R vintage).
fn selectivity(pred: &Expr) -> f64 {
    match pred {
        Expr::Binary { op, lhs, rhs } => match op {
            BinOp::Eq => 0.1,
            BinOp::NotEq => 0.9,
            BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => 0.33,
            BinOp::And => selectivity(lhs) * selectivity(rhs),
            BinOp::Or => (selectivity(lhs) + selectivity(rhs)).min(1.0),
            _ => 0.5,
        },
        Expr::Unary { .. } => 0.5,
        Expr::Like { negated, .. } => {
            if *negated {
                0.8
            } else {
                0.2
            }
        }
        Expr::InList { list, negated, .. } => {
            let s = (0.1 * list.len() as f64).min(1.0);
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        Expr::Between { negated, .. } => {
            if *negated {
                0.7
            } else {
                0.3
            }
        }
        _ => 0.5,
    }
}

struct Acc {
    rows: f64,
    /// Asynchronous calls (AEVScan → ReqPump; overlap within a wave).
    calls: f64,
    /// Blocking calls (EVScan; strictly sequential in both "modes").
    blocking_calls: f64,
    /// Latency waves already *completed* inside this subtree (closed by a
    /// ReqSync).
    waves: u32,
    /// Are there registered calls not yet waited on (open wave)?
    open_calls: bool,
    local_rows: f64,
}

fn walk(plan: &PhysPlan, tables: &dyn TableSource) -> Acc {
    match plan {
        PhysPlan::SeqScan { table, .. } => {
            let rows = tables
                .table(table)
                .ok()
                .and_then(|(heap, _)| heap.len().ok())
                .unwrap_or(1000) as f64;
            Acc {
                rows,
                calls: 0.0,
                blocking_calls: 0.0,
                waves: 0,
                open_calls: false,
                local_rows: rows,
            }
        }
        PhysPlan::IndexScan { table, .. } => {
            let rows = tables
                .table(table)
                .ok()
                .and_then(|(heap, _)| heap.len().ok())
                .unwrap_or(1000) as f64;
            let rows = (rows * 0.1).max(1.0);
            Acc {
                rows,
                calls: 0.0,
                blocking_calls: 0.0,
                waves: 0,
                open_calls: false,
                local_rows: rows,
            }
        }
        PhysPlan::Values { rows, .. } => Acc {
            rows: rows.len() as f64,
            calls: 0.0,
            blocking_calls: 0.0,
            waves: 0,
            open_calls: false,
            local_rows: rows.len() as f64,
        },
        // A bare scan estimates one invocation's output; the enclosing
        // dependent join scales by outer cardinality. EVScans block the
        // processor per call; AEVScans register and move on.
        PhysPlan::EVScan(spec) | PhysPlan::AEVScan(spec) => {
            let rows = match spec.kind {
                VTableKind::WebCount => 1.0,
                // Assume engines usually fill most of the rank budget.
                VTableKind::WebPages => spec.rank_limit as f64 * 0.8,
            };
            let asynchronous = matches!(plan, PhysPlan::AEVScan(_));
            Acc {
                rows,
                calls: if asynchronous { 1.0 } else { 0.0 },
                blocking_calls: if asynchronous { 0.0 } else { 1.0 },
                waves: 0,
                open_calls: asynchronous,
                local_rows: rows,
            }
        }
        PhysPlan::Filter { input, predicate } => {
            let mut a = walk(input, tables);
            a.rows *= selectivity(predicate);
            a
        }
        PhysPlan::Project { input, .. } => walk(input, tables),
        PhysPlan::DependentJoin { left, right } => {
            let l = walk(left, tables);
            let r = walk(right, tables);
            Acc {
                rows: l.rows * r.rows,
                calls: l.calls + l.rows * r.calls,
                blocking_calls: l.blocking_calls + l.rows * r.blocking_calls,
                waves: l.waves + r.waves,
                open_calls: l.open_calls || r.open_calls,
                local_rows: l.local_rows + l.rows * r.rows,
            }
        }
        PhysPlan::ParallelDependentJoin { left, spec, .. } => {
            let l = walk(left, tables);
            let rows = match spec.kind {
                VTableKind::WebCount => 1.0,
                VTableKind::WebPages => spec.rank_limit as f64 * 0.8,
            };
            // Calls overlap within the join (one wave per join), so model
            // them as one closed asynchronous wave.
            Acc {
                rows: l.rows * rows,
                calls: l.calls + l.rows,
                blocking_calls: l.blocking_calls,
                waves: l.waves + 1,
                open_calls: l.open_calls,
                local_rows: l.local_rows + l.rows * rows,
            }
        }
        PhysPlan::NestedLoopJoin {
            left,
            right,
            predicate,
        } => {
            let l = walk(left, tables);
            let r = walk(right, tables);
            Acc {
                rows: l.rows * r.rows * selectivity(predicate),
                calls: l.calls + r.calls,
                blocking_calls: l.blocking_calls + r.blocking_calls,
                waves: l.waves + r.waves,
                open_calls: l.open_calls || r.open_calls,
                local_rows: l.local_rows + r.local_rows + l.rows * r.rows,
            }
        }
        PhysPlan::CrossProduct { left, right } => {
            let l = walk(left, tables);
            let r = walk(right, tables);
            Acc {
                rows: l.rows * r.rows,
                calls: l.calls + r.calls,
                blocking_calls: l.blocking_calls + r.blocking_calls,
                waves: l.waves + r.waves,
                open_calls: l.open_calls || r.open_calls,
                local_rows: l.local_rows + r.local_rows + l.rows * r.rows,
            }
        }
        PhysPlan::Sort { input, .. }
        | PhysPlan::Distinct { input }
        | PhysPlan::Aggregate { input, .. } => {
            let mut a = walk(input, tables);
            a.local_rows += a.rows;
            if matches!(plan, PhysPlan::Aggregate { .. }) {
                a.rows = (a.rows * 0.1).max(1.0);
            }
            a
        }
        PhysPlan::Limit { input, n } => {
            let mut a = walk(input, tables);
            a.rows = a.rows.min(*n as f64);
            a
        }
        PhysPlan::ReqSync { input, .. } => {
            let mut a = walk(input, tables);
            if a.open_calls {
                // This synchronizer closes one latency wave.
                a.waves += 1;
                a.open_calls = false;
            }
            a
        }
    }
}

/// Estimate a plan's cost using parameters calibrated from the live obs
/// registry (see [`CostParams::calibrated`]).
pub fn estimate_calibrated(
    plan: &PhysPlan,
    tables: &dyn TableSource,
    obs: &wsq_obs::Obs,
    max_concurrent: usize,
) -> CostEstimate {
    estimate(plan, tables, &CostParams::calibrated(obs, max_concurrent))
}

/// Estimate a plan's cost. `tables` supplies stored-table cardinalities.
pub fn estimate(plan: &PhysPlan, tables: &dyn TableSource, params: &CostParams) -> CostEstimate {
    let a = walk(plan, tables);
    // A still-open wave at the root would mean placeholders escape the
    // plan; the asyncify pass guarantees this never happens, but count it
    // defensively.
    let waves = a.waves + u32::from(a.open_calls);
    let total_calls = a.calls + a.blocking_calls;
    let sync_secs = total_calls * params.latency_secs;
    let per_wave_calls = if waves > 0 {
        a.calls / waves as f64
    } else {
        0.0
    };
    let batches = (per_wave_calls / params.max_concurrent.max(1) as f64)
        .ceil()
        .max(if a.calls > 0.0 { 1.0 } else { 0.0 });
    // Overlapped waves plus any blocking (EVScan) calls, which serialize.
    let async_secs =
        waves as f64 * params.latency_secs * batches + a.blocking_calls * params.latency_secs;
    CostEstimate {
        rows: a.rows,
        external_calls: total_calls,
        waves,
        sync_secs,
        async_secs,
        local_secs: a.local_rows * params.local_row_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn calibration_uses_observed_median_latency() {
        let obs = wsq_obs::Obs::enabled();
        let m = obs.metrics().unwrap();
        for _ in 0..20 {
            m.call_latency.observe(Duration::from_millis(80));
        }
        let p = CostParams::calibrated(&obs, 32);
        assert_eq!(p.max_concurrent, 32);
        // The p50 interpolates within the (50ms, 100ms] bucket — far from
        // the 1-second default, close to the observed 80ms.
        assert!(
            p.latency_secs > 0.01 && p.latency_secs < 0.2,
            "latency_secs = {}",
            p.latency_secs
        );
        // Untouched parameters keep their defaults.
        assert_eq!(p.local_row_secs, CostParams::default().local_row_secs);
    }

    #[test]
    fn calibration_falls_back_without_samples() {
        let d = CostParams::default();
        assert_eq!(
            CostParams::calibrated(&wsq_obs::Obs::disabled(), 64).latency_secs,
            d.latency_secs
        );
        assert_eq!(
            CostParams::calibrated(&wsq_obs::Obs::enabled(), 0).max_concurrent,
            1
        );
    }
}
