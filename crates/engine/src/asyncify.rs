//! The asynchronous-iteration plan transformation (paper §4.5):
//! **ReqSync Insertion**, **Percolation**, and **Consolidation**.
//!
//! The implementation folds the three steps into one bottom-up pass. Each
//! subtree is rewritten into a *core* plan plus a set of **pending** items
//! that are still being pulled upward:
//!
//! * a pending `Sync` is a ReqSync whose insertion point is still rising
//!   (percolation in progress);
//! * a pending `Carried` is a clashing selection that was pulled up out of
//!   the way (§4.5.2: "if O is a … selection, we can pull O above its
//!   parent first"), including join predicates rewritten into selections
//!   over cross-products.
//!
//! Pending items are *flushed* (materialized into the tree) at clash
//! points: order/cardinality-sensitive operators (`Sort`, `Aggregate`,
//! `Distinct`, `Limit` — case 3 of the clash rules, extended to ordering),
//! projections that drop or compute over placeholder attributes (cases 1
//! and 2), and dependent joins whose bindings read placeholder attributes
//! (case 1). Flushing merges every pending `Sync` into a **single**
//! ReqSync — which is exactly Consolidation.

use crate::plan::{BufferMode, EvBinding, EvSpec, PhysPlan, PlacementStrategy, PrefetchHint};
use wsq_sql::ast::{ColumnRef, Expr};

/// Rewrite a synchronous plan into its asynchronous-iteration form.
pub fn asyncify(plan: PhysPlan, strategy: PlacementStrategy, mode: BufferMode) -> PhysPlan {
    asyncify_with_cap(plan, strategy, mode, None)
}

/// [`asyncify`], additionally stamping every emitted ReqSync with an
/// admission-control cap on buffered incomplete tuples
/// (`QueryOptions::reqsync_cap`; `None` = unbounded).
pub fn asyncify_with_cap(
    plan: PhysPlan,
    strategy: PlacementStrategy,
    mode: BufferMode,
    cap: Option<usize>,
) -> PhysPlan {
    asyncify_with_opts(plan, strategy, mode, cap, PrefetchHint::default())
}

/// [`asyncify_with_cap`], additionally stamping a [`PrefetchHint`] onto
/// every emitted `AEVScan` (DESIGN.md §12). The requested depth is
/// clamped against the ReqSync admission cap: a prefetching join may
/// never hold more registered-but-undemanded calls than the §11 stall
/// handshake would have admitted, so `depth <= cap` whenever a cap is
/// set. The window is normalized to at least 1.
pub fn asyncify_with_opts(
    plan: PhysPlan,
    strategy: PlacementStrategy,
    mode: BufferMode,
    cap: Option<usize>,
    prefetch: PrefetchHint,
) -> PhysPlan {
    let mut ctx = Ctx {
        strategy,
        mode,
        cap,
        prefetch: PrefetchHint {
            depth: match cap {
                Some(c) => prefetch.depth.min(c),
                None => prefetch.depth,
            },
            window: prefetch.window.max(1),
            adaptive: prefetch.adaptive,
        },
    };
    let (core, pending) = ctx.lift(plan);
    consolidate_adjacent(ctx.flush(core, pending))
}

/// Final Consolidation sweep: merge directly-adjacent ReqSync pairs
/// (their attribute sets union — §4.5.3). The lift pass already
/// consolidates at each flush point; this catches pairs formed when an
/// input plan carried its own ReqSyncs (e.g. re-asyncification).
fn consolidate_adjacent(plan: PhysPlan) -> PhysPlan {
    use PhysPlan::*;
    let map = |p: Box<PhysPlan>| Box::new(consolidate_adjacent(*p));
    match plan {
        ReqSync {
            input,
            attrs,
            mode,
            cap,
        } => {
            let inner = consolidate_adjacent(*input);
            if let ReqSync {
                input: inner_input,
                attrs: inner_attrs,
                cap: inner_cap,
                ..
            } = inner
            {
                let mut merged = attrs;
                for a in inner_attrs {
                    if !merged.contains(&a) {
                        merged.push(a);
                    }
                }
                ReqSync {
                    input: inner_input,
                    attrs: merged,
                    mode,
                    // The merged operator keeps the tighter cap: the pair
                    // buffered independently before, so either bound alone
                    // was already a promise to the administrator.
                    cap: match (cap, inner_cap) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (a, b) => a.or(b),
                    },
                }
            } else {
                ReqSync {
                    input: Box::new(inner),
                    attrs,
                    mode,
                    cap,
                }
            }
        }
        Filter { input, predicate } => Filter {
            input: map(input),
            predicate,
        },
        Project {
            input,
            items,
            schema,
        } => Project {
            input: map(input),
            items,
            schema,
        },
        DependentJoin { left, right } => DependentJoin {
            left: map(left),
            right: map(right),
        },
        ParallelDependentJoin {
            left,
            spec,
            threads,
        } => ParallelDependentJoin {
            left: map(left),
            spec,
            threads,
        },
        NestedLoopJoin {
            left,
            right,
            predicate,
        } => NestedLoopJoin {
            left: map(left),
            right: map(right),
            predicate,
        },
        CrossProduct { left, right } => CrossProduct {
            left: map(left),
            right: map(right),
        },
        Sort { input, keys } => Sort {
            input: map(input),
            keys,
        },
        Aggregate {
            input,
            group_by,
            aggs,
        } => Aggregate {
            input: map(input),
            group_by,
            aggs,
        },
        Distinct { input } => Distinct { input: map(input) },
        Limit { input, n } => Limit {
            input: map(input),
            n,
        },
        leaf => leaf,
    }
}

/// An item still percolating upward.
#[derive(Debug)]
enum Pending {
    /// A ReqSync for the given placeholder attributes.
    Sync(Vec<ColumnRef>),
    /// A clashing selection pulled above the rising ReqSyncs.
    Carried(Expr),
}

struct Ctx {
    strategy: PlacementStrategy,
    mode: BufferMode,
    cap: Option<usize>,
    prefetch: PrefetchHint,
}

/// Case-insensitive column-reference equality (SQL identifier semantics).
fn same_ref(a: &ColumnRef, b: &ColumnRef) -> bool {
    if !a.name.eq_ignore_ascii_case(&b.name) {
        return false;
    }
    match (&a.qualifier, &b.qualifier) {
        (Some(x), Some(y)) => x.eq_ignore_ascii_case(y),
        (None, None) => true,
        // An unqualified reference may denote a qualified attribute.
        _ => true,
    }
}

/// Does `expr` reference any of `attrs`?
fn refs_any(expr: &Expr, attrs: &[ColumnRef]) -> bool {
    expr.columns()
        .iter()
        .any(|c| attrs.iter().any(|a| same_ref(c, a)))
}

/// All placeholder attributes across the pending set.
fn pending_attrs(pending: &[Pending]) -> Vec<ColumnRef> {
    pending
        .iter()
        .flat_map(|p| match p {
            Pending::Sync(attrs) => attrs.clone(),
            Pending::Carried(_) => vec![],
        })
        .collect()
}

impl Ctx {
    /// Materialize all pending items above `core`: one consolidated
    /// ReqSync, then the carried selections (in their original order).
    fn flush(&self, core: PhysPlan, pending: Vec<Pending>) -> PhysPlan {
        let mut attrs: Vec<ColumnRef> = Vec::new();
        let mut filters: Vec<Expr> = Vec::new();
        for p in pending {
            match p {
                Pending::Sync(a) => {
                    for c in a {
                        if !attrs.iter().any(|x| x == &c) {
                            attrs.push(c);
                        }
                    }
                }
                Pending::Carried(e) => filters.push(e),
            }
        }
        let mut plan = core;
        if !attrs.is_empty() {
            plan = PhysPlan::ReqSync {
                input: Box::new(plan),
                attrs,
                mode: self.mode,
                cap: self.cap,
            };
        }
        for predicate in filters {
            plan = PhysPlan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }
        plan
    }

    fn lift(&mut self, plan: PhysPlan) -> (PhysPlan, Vec<Pending>) {
        match plan {
            // Leaves.
            p @ (PhysPlan::SeqScan { .. }
            | PhysPlan::IndexScan { .. }
            | PhysPlan::Values { .. }) => (p, vec![]),

            // Insertion: every external scan becomes asynchronous, with a
            // ReqSync born directly above it (here: as a pending item).
            // The scan also receives the (cap-clamped) prefetch hint.
            PhysPlan::EVScan(spec) | PhysPlan::AEVScan(spec) => {
                let mut spec = spec;
                spec.prefetch = self.prefetch;
                let attrs = spec.external_attrs();
                (PhysPlan::AEVScan(spec), vec![Pending::Sync(attrs)])
            }

            PhysPlan::Filter { input, predicate } => {
                let (core, pending) = self.lift(*input);
                if refs_any(&predicate, &pending_attrs(&pending)) {
                    // Clash case 1: pull the selection above the rising
                    // ReqSync instead of blocking it.
                    let mut pending = pending;
                    pending.push(Pending::Carried(predicate));
                    (core, pending)
                } else {
                    (
                        PhysPlan::Filter {
                            input: Box::new(core),
                            predicate,
                        },
                        pending,
                    )
                }
            }

            PhysPlan::DependentJoin { left, right } => {
                let (l, mut pl) = self.lift(*left);
                let (r, pr) = self.lift(*right);
                // If the inner scan's bindings read placeholder attributes
                // of the left side, those calls must resolve before the
                // join can re-bind: flush the left pending set below.
                let binding_cols = binding_columns(&r);
                let attrs = pending_attrs(&pl);
                let l = if binding_cols
                    .iter()
                    .any(|c| attrs.iter().any(|a| same_ref(c, a)))
                {
                    let flushed = self.flush(l, std::mem::take(&mut pl));
                    pl = vec![];
                    flushed
                } else {
                    l
                };
                let mut pending = pl;
                pending.extend(pr);
                let join = PhysPlan::DependentJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                };
                if self.strategy == PlacementStrategy::InsertionOnly {
                    // Conservative placement: pin the ReqSync right above
                    // this dependent join (Figure 7(b) style).
                    (self.flush(join, pending), vec![])
                } else {
                    (join, pending)
                }
            }

            PhysPlan::NestedLoopJoin {
                left,
                right,
                predicate,
            } => {
                let (l, pl) = self.lift(*left);
                let (r, pr) = self.lift(*right);
                let mut pending = pl;
                pending.extend(pr);
                if refs_any(&predicate, &pending_attrs(&pending)) {
                    // Clash: rewrite the join as a selection over a
                    // cross-product and carry the selection upward
                    // (§4.5.2, demonstrated in Figure 8).
                    pending.push(Pending::Carried(predicate));
                    (
                        PhysPlan::CrossProduct {
                            left: Box::new(l),
                            right: Box::new(r),
                        },
                        pending,
                    )
                } else {
                    (
                        PhysPlan::NestedLoopJoin {
                            left: Box::new(l),
                            right: Box::new(r),
                            predicate,
                        },
                        pending,
                    )
                }
            }

            PhysPlan::CrossProduct { left, right } => {
                let (l, pl) = self.lift(*left);
                let (r, pr) = self.lift(*right);
                let mut pending = pl;
                pending.extend(pr);
                (
                    PhysPlan::CrossProduct {
                        left: Box::new(l),
                        right: Box::new(r),
                    },
                    pending,
                )
            }

            // A parallel dependent join performs and completes its calls
            // internally (blocking threads): nothing percolates out of it.
            PhysPlan::ParallelDependentJoin {
                left,
                spec,
                threads,
            } => {
                let (l, pl) = self.lift(*left);
                (
                    PhysPlan::ParallelDependentJoin {
                        left: Box::new(self.flush(l, pl)),
                        spec,
                        threads,
                    },
                    vec![],
                )
            }

            PhysPlan::Project {
                input,
                items,
                schema,
            } => {
                let (core, pending) = self.lift(*input);
                if pending.is_empty() {
                    return (
                        PhysPlan::Project {
                            input: Box::new(core),
                            items,
                            schema,
                        },
                        vec![],
                    );
                }
                // The ReqSyncs may rise above the projection only if every
                // placeholder attribute passes through untouched (as a
                // plain column item) and no carried selections are in
                // flight (their predicates reference pre-projection
                // names). Otherwise flush below (clash cases 1 and 2).
                let has_carried = pending.iter().any(|p| matches!(p, Pending::Carried(_)));
                let attrs = pending_attrs(&pending);
                let renames: Option<Vec<(ColumnRef, ColumnRef)>> = attrs
                    .iter()
                    .map(|a| {
                        // Reject if any item computes over the attribute.
                        let computed = items.iter().any(|(e, _)| {
                            !matches!(e, Expr::Column(_)) && refs_any(e, std::slice::from_ref(a))
                        });
                        if computed {
                            return None;
                        }
                        items
                            .iter()
                            .find(|(e, _)| matches!(e, Expr::Column(c) if same_ref(c, a)))
                            .map(|(_, name)| {
                                (
                                    a.clone(),
                                    ColumnRef {
                                        qualifier: None,
                                        name: name.clone(),
                                    },
                                )
                            })
                    })
                    .collect();
                match renames {
                    Some(renames) if !has_carried => {
                        let renamed: Vec<Pending> = pending
                            .into_iter()
                            .map(|p| match p {
                                Pending::Sync(attrs) => Pending::Sync(
                                    attrs
                                        .into_iter()
                                        .map(|a| {
                                            renames
                                                .iter()
                                                .find(|(from, _)| from == &a)
                                                .map(|(_, to)| to.clone())
                                                .unwrap_or(a)
                                        })
                                        .collect(),
                                ),
                                carried => carried,
                            })
                            .collect();
                        (
                            PhysPlan::Project {
                                input: Box::new(core),
                                items,
                                schema,
                            },
                            renamed,
                        )
                    }
                    _ => {
                        let flushed = self.flush(core, pending);
                        (
                            PhysPlan::Project {
                                input: Box::new(flushed),
                                items,
                                schema,
                            },
                            vec![],
                        )
                    }
                }
            }

            // Order/cardinality-sensitive operators: clash case 3 (and its
            // ordering analogue). Everything pending materializes below.
            PhysPlan::Sort { input, keys } => {
                let (core, pending) = self.lift(*input);
                (
                    PhysPlan::Sort {
                        input: Box::new(self.flush(core, pending)),
                        keys,
                    },
                    vec![],
                )
            }
            PhysPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let (core, pending) = self.lift(*input);
                (
                    PhysPlan::Aggregate {
                        input: Box::new(self.flush(core, pending)),
                        group_by,
                        aggs,
                    },
                    vec![],
                )
            }
            PhysPlan::Distinct { input } => {
                let (core, pending) = self.lift(*input);
                (
                    PhysPlan::Distinct {
                        input: Box::new(self.flush(core, pending)),
                    },
                    vec![],
                )
            }
            PhysPlan::Limit { input, n } => {
                let (core, pending) = self.lift(*input);
                (
                    PhysPlan::Limit {
                        input: Box::new(self.flush(core, pending)),
                        n,
                    },
                    vec![],
                )
            }

            // An existing ReqSync (re-asyncifying an async plan): keep it
            // where it is, absorbing any rising Sync it already covers so
            // the transformation is idempotent.
            PhysPlan::ReqSync {
                input,
                attrs,
                mode,
                cap,
            } => {
                let (core, pending) = self.lift(*input);
                let (absorbed, remaining): (Vec<_>, Vec<_>) =
                    pending.into_iter().partition(|p| match p {
                        Pending::Sync(a) => a.iter().all(|x| attrs.iter().any(|y| same_ref(x, y))),
                        Pending::Carried(_) => false,
                    });
                drop(absorbed);
                (
                    PhysPlan::ReqSync {
                        input: Box::new(self.flush(core, remaining)),
                        attrs,
                        mode,
                        cap: cap.or(self.cap),
                    },
                    vec![],
                )
            }
        }
    }
}

/// Rewrite every `DependentJoin` over a virtual scan into a
/// [`PhysPlan::ParallelDependentJoin`] with the given thread cap — the
/// parallel-DBMS-style execution the paper compares asynchronous
/// iteration against.
pub fn parallelize(plan: PhysPlan, threads: usize) -> PhysPlan {
    use PhysPlan::*;
    let map = |p: Box<PhysPlan>| Box::new(parallelize(*p, threads));
    match plan {
        DependentJoin { left, right } => {
            let left = map(left);
            match *right {
                EVScan(spec) | AEVScan(spec) => ParallelDependentJoin {
                    left,
                    spec,
                    threads,
                },
                other => DependentJoin {
                    left,
                    right: Box::new(parallelize(other, threads)),
                },
            }
        }
        ParallelDependentJoin {
            left,
            spec,
            threads: t,
        } => ParallelDependentJoin {
            left: map(left),
            spec,
            threads: t,
        },
        Filter { input, predicate } => Filter {
            input: map(input),
            predicate,
        },
        Project {
            input,
            items,
            schema,
        } => Project {
            input: map(input),
            items,
            schema,
        },
        NestedLoopJoin {
            left,
            right,
            predicate,
        } => NestedLoopJoin {
            left: map(left),
            right: map(right),
            predicate,
        },
        CrossProduct { left, right } => CrossProduct {
            left: map(left),
            right: map(right),
        },
        Sort { input, keys } => Sort {
            input: map(input),
            keys,
        },
        Aggregate {
            input,
            group_by,
            aggs,
        } => Aggregate {
            input: map(input),
            group_by,
            aggs,
        },
        Distinct { input } => Distinct { input: map(input) },
        Limit { input, n } => Limit {
            input: map(input),
            n,
        },
        ReqSync {
            input,
            attrs,
            mode,
            cap,
        } => ReqSync {
            input: map(input),
            attrs,
            mode,
            cap,
        },
        leaf => leaf,
    }
}

/// The column bindings an inner virtual scan reads from its outer input.
fn binding_columns(right: &PhysPlan) -> Vec<ColumnRef> {
    fn find_spec(p: &PhysPlan) -> Option<&EvSpec> {
        match p {
            PhysPlan::EVScan(s) | PhysPlan::AEVScan(s) => Some(s),
            PhysPlan::Filter { input, .. } | PhysPlan::ReqSync { input, .. } => find_spec(input),
            _ => None,
        }
    }
    match find_spec(right) {
        Some(spec) => spec
            .bindings
            .iter()
            .filter_map(|b| match b {
                EvBinding::Column(c) => Some(c.clone()),
                EvBinding::Const(_) => None,
            })
            .collect(),
        None => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::VTableKind;
    use wsq_common::{Column, DataType, Schema};
    use wsq_sql::ast::BinOp;

    fn scan(name: &str, cols: &[&str]) -> PhysPlan {
        PhysPlan::SeqScan {
            table: name.to_string(),
            alias: name.to_string(),
            schema: Schema::new(
                cols.iter()
                    .map(|c| Column::qualified(name, *c, DataType::Varchar))
                    .collect(),
            ),
        }
    }

    fn webcount(alias: &str, bind_col: (&str, &str)) -> PhysPlan {
        PhysPlan::EVScan(EvSpec {
            kind: VTableKind::WebCount,
            engine: "AV".into(),
            alias: alias.into(),
            template: None,
            bindings: vec![EvBinding::Column(ColumnRef {
                qualifier: Some(bind_col.0.into()),
                name: bind_col.1.into(),
            })],
            rank_limit: 19,
            supports_near: true,
            prefetch: PrefetchHint::default(),
        })
    }

    fn webpages(alias: &str, engine: &str, bind_col: (&str, &str)) -> PhysPlan {
        PhysPlan::EVScan(EvSpec {
            kind: VTableKind::WebPages,
            engine: engine.into(),
            alias: alias.into(),
            template: None,
            bindings: vec![EvBinding::Column(ColumnRef {
                qualifier: Some(bind_col.0.into()),
                name: bind_col.1.into(),
            })],
            rank_limit: 3,
            supports_near: true,
            prefetch: PrefetchHint::default(),
        })
    }

    fn dj(left: PhysPlan, right: PhysPlan) -> PhysPlan {
        PhysPlan::DependentJoin {
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    fn count_kind(plan: &PhysPlan, want: &str) -> usize {
        plan.count_nodes(&|p| {
            matches!(
                (p, want),
                (PhysPlan::ReqSync { .. }, "reqsync")
                    | (PhysPlan::AEVScan(_), "aevscan")
                    | (PhysPlan::EVScan(_), "evscan")
                    | (PhysPlan::CrossProduct { .. }, "cross")
                    | (PhysPlan::NestedLoopJoin { .. }, "nlj")
            )
        })
    }

    /// Figure 3: Sort over Sigs ⋈ WebCount → ReqSync lands below the Sort.
    #[test]
    fn figure3_reqsync_below_sort() {
        let plan = PhysPlan::Sort {
            keys: vec![(Expr::qualified("WebCount", "Count"), true)],
            input: Box::new(dj(
                scan("Sigs", &["Name"]),
                webcount("WebCount", ("Sigs", "Name")),
            )),
        };
        let out = asyncify(plan, PlacementStrategy::Full, BufferMode::Full);
        assert_eq!(count_kind(&out, "aevscan"), 1);
        assert_eq!(count_kind(&out, "evscan"), 0);
        assert_eq!(count_kind(&out, "reqsync"), 1);
        // Shape: Sort → ReqSync → DependentJoin.
        match &out {
            PhysPlan::Sort { input, .. } => match input.as_ref() {
                PhysPlan::ReqSync { input, attrs, .. } => {
                    assert_eq!(attrs.len(), 1);
                    assert!(matches!(input.as_ref(), PhysPlan::DependentJoin { .. }));
                }
                other => panic!("expected ReqSync under Sort, got:\n{other}"),
            },
            other => panic!("expected Sort at root, got:\n{other}"),
        }
    }

    /// Figures 5/6: two stacked dependent joins → ONE consolidated ReqSync
    /// above both.
    #[test]
    fn figure6_consolidation() {
        let plan = dj(
            dj(
                scan("Sigs", &["Name"]),
                webpages("AV", "AV", ("Sigs", "Name")),
            ),
            webpages("G", "Google", ("Sigs", "Name")),
        );
        let out = asyncify(plan, PlacementStrategy::Full, BufferMode::Full);
        assert_eq!(count_kind(&out, "reqsync"), 1, "plan:\n{out}");
        assert_eq!(count_kind(&out, "aevscan"), 2);
        // The single ReqSync is the root and carries both attr sets.
        match &out {
            PhysPlan::ReqSync { attrs, .. } => {
                assert_eq!(attrs.len(), 6); // URL/Rank/Date × 2 engines
            }
            other => panic!("expected consolidated ReqSync at root:\n{other}"),
        }
    }

    /// InsertionOnly strategy (Figure 7(b) flavor): one ReqSync pinned
    /// above each dependent join.
    #[test]
    fn insertion_only_pins_two_reqsyncs() {
        let plan = dj(
            dj(
                scan("Sigs", &["Name"]),
                webpages("AV", "AV", ("Sigs", "Name")),
            ),
            webpages("G", "Google", ("Sigs", "Name")),
        );
        let out = asyncify(plan, PlacementStrategy::InsertionOnly, BufferMode::Full);
        assert_eq!(count_kind(&out, "reqsync"), 2, "plan:\n{out}");
    }

    /// Figure 8: a join whose predicate reads placeholder attributes is
    /// rewritten into a selection over a cross-product, with the selection
    /// re-attached above the consolidated ReqSync.
    #[test]
    fn figure8_join_becomes_select_over_cross_product() {
        let join = PhysPlan::NestedLoopJoin {
            left: Box::new(dj(
                scan("Sigs", &["Name"]),
                webpages("S", "AV", ("Sigs", "Name")),
            )),
            right: Box::new(dj(
                scan("CSFields", &["Name"]),
                webpages("C", "AV", ("CSFields", "Name")),
            )),
            predicate: Expr::binary(
                BinOp::Eq,
                Expr::qualified("S", "URL"),
                Expr::qualified("C", "URL"),
            ),
        };
        let out = asyncify(join, PlacementStrategy::Full, BufferMode::Full);
        assert_eq!(count_kind(&out, "nlj"), 0);
        assert_eq!(count_kind(&out, "cross"), 1);
        assert_eq!(count_kind(&out, "reqsync"), 1);
        // Select → ReqSync → CrossProduct.
        match &out {
            PhysPlan::Filter { input, predicate } => {
                assert_eq!(predicate.to_string(), "(S.URL = C.URL)");
                assert!(matches!(input.as_ref(), PhysPlan::ReqSync { .. }));
            }
            other => panic!("expected Select at root:\n{other}"),
        }
    }

    /// A filter on non-placeholder columns stays put (below the ReqSync).
    #[test]
    fn independent_filter_not_carried() {
        let plan = PhysPlan::Filter {
            predicate: Expr::binary(
                BinOp::Eq,
                Expr::qualified("Sigs", "Name"),
                Expr::Literal(wsq_sql::ast::Literal::Str("SIGMOD".into())),
            ),
            input: Box::new(dj(
                scan("Sigs", &["Name"]),
                webcount("WebCount", ("Sigs", "Name")),
            )),
        };
        let out = asyncify(plan, PlacementStrategy::Full, BufferMode::Full);
        match &out {
            PhysPlan::ReqSync { input, .. } => {
                assert!(matches!(input.as_ref(), PhysPlan::Filter { .. }));
            }
            other => panic!("expected ReqSync above the independent filter:\n{other}"),
        }
    }

    /// A filter on placeholder attributes is carried above the ReqSync.
    #[test]
    fn dependent_filter_carried_above() {
        let plan = PhysPlan::Filter {
            predicate: Expr::binary(
                BinOp::Gt,
                Expr::qualified("WebCount", "Count"),
                Expr::Literal(wsq_sql::ast::Literal::Int(100)),
            ),
            input: Box::new(dj(
                scan("Sigs", &["Name"]),
                webcount("WebCount", ("Sigs", "Name")),
            )),
        };
        let out = asyncify(plan, PlacementStrategy::Full, BufferMode::Full);
        match &out {
            PhysPlan::Filter { input, .. } => {
                assert!(matches!(input.as_ref(), PhysPlan::ReqSync { .. }));
            }
            other => panic!("expected carried Select at root:\n{other}"),
        }
    }

    /// Bindings that read another scan's placeholder attributes force the
    /// upstream ReqSync to resolve first (it flushes below the join).
    #[test]
    fn binding_on_placeholder_blocks_percolation() {
        // WebPages S feeds its URL into WebCount's T1.
        let inner = PhysPlan::EVScan(EvSpec {
            kind: VTableKind::WebCount,
            engine: "AV".into(),
            alias: "WC".into(),
            template: None,
            bindings: vec![EvBinding::Column(ColumnRef {
                qualifier: Some("S".into()),
                name: "URL".into(),
            })],
            rank_limit: 19,
            supports_near: true,
            prefetch: PrefetchHint::default(),
        });
        let plan = dj(
            dj(
                scan("Sigs", &["Name"]),
                webpages("S", "AV", ("Sigs", "Name")),
            ),
            inner,
        );
        let out = asyncify(plan, PlacementStrategy::Full, BufferMode::Full);
        assert_eq!(count_kind(&out, "reqsync"), 2, "plan:\n{out}");
        // The outer (root) ReqSync covers only the WebCount attrs.
        match &out {
            PhysPlan::ReqSync { attrs, input, .. } => {
                assert_eq!(attrs.len(), 1);
                assert_eq!(attrs[0].to_string(), "WC.Count");
                // Inside, the WebPages ReqSync sits below the outer join.
                assert!(matches!(input.as_ref(), PhysPlan::DependentJoin { .. }));
            }
            other => panic!("unexpected root:\n{other}"),
        }
    }

    /// Aggregation clashes (case 3): the ReqSync flushes below it.
    #[test]
    fn aggregate_blocks_percolation() {
        let plan = PhysPlan::Aggregate {
            input: Box::new(dj(
                scan("Sigs", &["Name"]),
                webcount("WebCount", ("Sigs", "Name")),
            )),
            group_by: vec![],
            aggs: vec![(wsq_sql::ast::AggFunc::Count, None, "n".into())],
        };
        let out = asyncify(plan, PlacementStrategy::Full, BufferMode::Full);
        match &out {
            PhysPlan::Aggregate { input, .. } => {
                assert!(matches!(input.as_ref(), PhysPlan::ReqSync { .. }));
            }
            other => panic!("expected Aggregate at root:\n{other}"),
        }
    }

    /// A projection passing attributes through as plain columns lets the
    /// ReqSync rise above it, with attribute names rewritten.
    #[test]
    fn projection_passthrough_renames_attrs() {
        let input = dj(
            scan("Sigs", &["Name"]),
            webcount("WebCount", ("Sigs", "Name")),
        );
        let schema = Schema::new(vec![
            Column::new("Name", DataType::Varchar),
            Column::new("Cnt", DataType::Int),
        ]);
        let plan = PhysPlan::Project {
            input: Box::new(input),
            items: vec![
                (Expr::qualified("Sigs", "Name"), "Name".into()),
                (Expr::qualified("WebCount", "Count"), "Cnt".into()),
            ],
            schema,
        };
        let out = asyncify(plan, PlacementStrategy::Full, BufferMode::Full);
        match &out {
            PhysPlan::ReqSync { attrs, input, .. } => {
                assert_eq!(attrs[0].to_string(), "Cnt");
                assert!(matches!(input.as_ref(), PhysPlan::Project { .. }));
            }
            other => panic!("expected ReqSync above Project:\n{other}"),
        }
    }

    /// A projection computing over an attribute (Count/Population) blocks
    /// the ReqSync below it (clash case 1).
    #[test]
    fn projection_computation_blocks() {
        let input = dj(
            scan("States", &["Name", "Population"]),
            webcount("WebCount", ("States", "Name")),
        );
        let schema = Schema::new(vec![Column::new("C", DataType::Int)]);
        let plan = PhysPlan::Project {
            input: Box::new(input),
            items: vec![(
                Expr::binary(
                    BinOp::Div,
                    Expr::qualified("WebCount", "Count"),
                    Expr::qualified("States", "Population"),
                ),
                "C".into(),
            )],
            schema,
        };
        let out = asyncify(plan, PlacementStrategy::Full, BufferMode::Full);
        match &out {
            PhysPlan::Project { input, .. } => {
                assert!(matches!(input.as_ref(), PhysPlan::ReqSync { .. }));
            }
            other => panic!("expected Project at root:\n{other}"),
        }
    }

    /// No virtual tables → asyncify is the identity.
    #[test]
    fn pure_local_plan_unchanged() {
        let plan = PhysPlan::Filter {
            predicate: Expr::binary(
                BinOp::Eq,
                Expr::qualified("A", "x"),
                Expr::qualified("B", "x"),
            ),
            input: Box::new(PhysPlan::CrossProduct {
                left: Box::new(scan("A", &["x"])),
                right: Box::new(scan("B", &["x"])),
            }),
        };
        let out = asyncify(plan.clone(), PlacementStrategy::Full, BufferMode::Full);
        assert_eq!(out, plan);
    }

    /// The prefetch hint is stamped onto every AEVScan, with its depth
    /// clamped to the ReqSync admission cap and its window floored at 1.
    #[test]
    fn prefetch_hint_stamped_and_clamped() {
        let plan = dj(
            scan("Sigs", &["Name"]),
            webcount("WebCount", ("Sigs", "Name")),
        );
        let hint = PrefetchHint {
            depth: 16,
            window: 0,
            adaptive: true,
        };
        let out = asyncify_with_opts(
            plan.clone(),
            PlacementStrategy::Full,
            BufferMode::Full,
            Some(4),
            hint,
        );
        let seen = out.count_nodes(&|p| {
            if let PhysPlan::AEVScan(spec) = p {
                assert_eq!(spec.prefetch.depth, 4, "depth must clamp to cap");
                assert_eq!(spec.prefetch.window, 1, "window floors at 1");
                assert!(spec.prefetch.adaptive);
                true
            } else {
                false
            }
        });
        assert_eq!(seen, 1);

        // Uncapped: the requested depth survives; plain asyncify leaves
        // prefetch off.
        let out = asyncify_with_opts(
            plan.clone(),
            PlacementStrategy::Full,
            BufferMode::Full,
            None,
            hint,
        );
        out.count_nodes(&|p| {
            if let PhysPlan::AEVScan(spec) = p {
                assert_eq!(spec.prefetch.depth, 16);
            }
            false
        });
        let out = asyncify(plan, PlacementStrategy::Full, BufferMode::Full);
        out.count_nodes(&|p| {
            if let PhysPlan::AEVScan(spec) = p {
                assert_eq!(spec.prefetch, PrefetchHint::default());
            }
            false
        });
    }

    /// Asyncify is idempotent on already-asynchronous plans.
    #[test]
    fn idempotent() {
        let plan = PhysPlan::Sort {
            keys: vec![(Expr::qualified("WebCount", "Count"), true)],
            input: Box::new(dj(
                scan("Sigs", &["Name"]),
                webcount("WebCount", ("Sigs", "Name")),
            )),
        };
        let once = asyncify(plan, PlacementStrategy::Full, BufferMode::Full);
        let twice = asyncify(once.clone(), PlacementStrategy::Full, BufferMode::Full);
        assert_eq!(once, twice);
    }
}
