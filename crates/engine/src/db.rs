//! The database driver: file management, DDL/DML, and query execution.

use crate::builder::plan_select;
use crate::catalog::Catalog;
use crate::engines::EngineRegistry;
use crate::exec::{self, ExecContext, TableSource};
use crate::plan::{BufferMode, ExecutionMode, PhysPlan, PlacementStrategy};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use wsq_common::{Column, Result, Schema, Tuple, Value, WsqError};
use wsq_pump::ReqPump;
use wsq_sql::ast::{Literal, SelectStmt, Statement};
use wsq_storage::btree::BTree;
use wsq_storage::buffer::BufferPool;
use wsq_storage::codec;
use wsq_storage::disk::{FileStorage, MemStorage, Storage};
use wsq_storage::heap::HeapFile;

/// Options controlling how SELECTs execute.
#[derive(Debug, Clone, Copy)]
pub struct QueryOptions {
    /// Synchronous (blocking EVScan), asynchronous iteration, or parallel
    /// dependent joins.
    pub mode: ExecutionMode,
    /// ReqSync placement strategy (asynchronous mode only).
    pub strategy: PlacementStrategy,
    /// ReqSync buffering discipline.
    pub buffer: BufferMode,
    /// Worker-thread cap for [`ExecutionMode::ParallelJoins`].
    pub parallel_threads: usize,
    /// Admission-control cap on incomplete tuples buffered per ReqSync
    /// (`None` = unbounded). When the buffer fills, the operator stops
    /// pulling from its child — stalling the AEVScan side so no new
    /// external calls register — until completions drain it below the
    /// low-water mark (half the cap).
    pub reqsync_cap: Option<usize>,
    /// Ahead-of-need prefetch lookahead per dependent join (asynchronous
    /// mode only; `0` disables). Clamped to `reqsync_cap` by the planner
    /// so prefetch can never admit calls admission control would refuse.
    pub prefetch_depth: usize,
    /// Per-destination submission-window advice stamped into the plan
    /// (`1` = per-request dispatch). The pump's own
    /// `PumpConfig::submission_window` governs actual batching; this
    /// field only records the planner's intent in the `PrefetchHint`.
    pub prefetch_window: usize,
    /// Let the histogram-driven controller vary the lookahead between 1
    /// and `prefetch_depth` (no effect while `prefetch_depth` is 0).
    pub prefetch_adaptive: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            mode: ExecutionMode::default(),
            strategy: PlacementStrategy::default(),
            buffer: BufferMode::default(),
            parallel_threads: 16,
            reqsync_cap: None,
            prefetch_depth: 0,
            prefetch_window: 1,
            prefetch_adaptive: false,
        }
    }
}

/// Rows + schema produced by a query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output schema.
    pub schema: Schema,
    /// Result rows.
    pub rows: Vec<Tuple>,
}

impl QueryResult {
    /// Render as an aligned text table (examples / REPL output).
    pub fn to_table(&self) -> String {
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|t| t.values().iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&headers, &widths));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// A streaming query cursor (see [`Database::open_query`]).
pub struct Cursor {
    schema: Schema,
    executor: Box<dyn crate::exec::Executor>,
    done: bool,
}

impl Cursor {
    /// The result schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Fetch the next row, or `None` when exhausted.
    pub fn next_row(&mut self) -> Result<Option<Tuple>> {
        if self.done {
            return Ok(None);
        }
        match self.executor.next()? {
            Some(t) => Ok(Some(t)),
            None => {
                self.done = true;
                self.executor.close()?;
                Ok(None)
            }
        }
    }

    /// Abandon the cursor early, releasing resources (pending pump
    /// registrations are released by the operators' `close`).
    pub fn finish(mut self) -> Result<()> {
        if !self.done {
            self.done = true;
            self.executor.close()?;
        }
        Ok(())
    }
}

/// The outcome of running one statement.
#[derive(Debug)]
pub enum StatementResult {
    /// SELECT output.
    Rows(QueryResult),
    /// Rows affected by DML/DDL.
    Affected(usize),
}

enum Backing {
    Mem,
    Dir(PathBuf),
}

/// A WSQ database: Redbase-style storage + catalog + indexes + query
/// engine.
pub struct Database {
    pool: Arc<BufferPool>,
    backing: Backing,
    catalog: Catalog,
    tables: HashMap<String, Arc<HeapFile>>,
    /// `(table, column)` (lowercased) → B+-tree index.
    indexes: HashMap<(String, String), Arc<BTree>>,
}

const POOL_PAGES: usize = 256;

impl Database {
    /// A fresh, fully in-memory database.
    pub fn open_in_memory() -> Result<Database> {
        let pool = Arc::new(BufferPool::new(POOL_PAGES));
        let relcat = pool.register_file(Box::new(MemStorage::new()));
        let attrcat = pool.register_file(Box::new(MemStorage::new()));
        let indexcat = pool.register_file(Box::new(MemStorage::new()));
        let viewcat = pool.register_file(Box::new(MemStorage::new()));
        let catalog = Catalog::create(pool.clone(), relcat, attrcat, indexcat, viewcat)?;
        Ok(Database {
            pool,
            backing: Backing::Mem,
            catalog,
            tables: HashMap::new(),
            indexes: HashMap::new(),
        })
    }

    /// Open (or create) a database directory on disk.
    pub fn open(dir: impl AsRef<Path>) -> Result<Database> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let relcat_path = dir.join("relcat.rdb");
        let existing = relcat_path.exists();
        let pool = Arc::new(BufferPool::new(POOL_PAGES));
        let relcat = pool.register_file(Box::new(FileStorage::open(&relcat_path)?));
        let attrcat = pool.register_file(Box::new(FileStorage::open(dir.join("attrcat.rdb"))?));
        let indexcat = pool.register_file(Box::new(FileStorage::open(dir.join("indexcat.rdb"))?));
        let viewcat = pool.register_file(Box::new(FileStorage::open(dir.join("viewcat.rdb"))?));
        let catalog = if existing {
            Catalog::open(pool.clone(), relcat, attrcat, indexcat, viewcat)?
        } else {
            Catalog::create(pool.clone(), relcat, attrcat, indexcat, viewcat)?
        };
        let mut db = Database {
            pool,
            backing: Backing::Dir(dir),
            catalog,
            tables: HashMap::new(),
            indexes: HashMap::new(),
        };
        // Open every cataloged table's heap, then its indexes.
        for name in db.catalog.table_names() {
            let storage = db.table_storage(&name)?;
            let file = db.pool.register_file(storage);
            let heap = HeapFile::open(db.pool.clone(), file)?;
            db.tables.insert(name.clone(), Arc::new(heap));
            for col in db.catalog.indexes_on(&name) {
                let storage = db.index_storage(&name, &col)?;
                let file = db.pool.register_file(storage);
                let tree = BTree::open(db.pool.clone(), file)?;
                db.indexes.insert((name.clone(), col), Arc::new(tree));
            }
        }
        Ok(db)
    }

    fn table_storage(&self, name: &str) -> Result<Box<dyn Storage>> {
        match &self.backing {
            Backing::Mem => Ok(Box::new(MemStorage::new())),
            Backing::Dir(dir) => Ok(Box::new(FileStorage::open(
                dir.join(format!("{name}.tbl")),
            )?)),
        }
    }

    fn index_storage(&self, table: &str, column: &str) -> Result<Box<dyn Storage>> {
        match &self.backing {
            Backing::Mem => Ok(Box::new(MemStorage::new())),
            Backing::Dir(dir) => Ok(Box::new(FileStorage::open(
                dir.join(format!("{table}_{column}.idx")),
            )?)),
        }
    }

    /// The catalog (read-only access).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Buffer pool statistics.
    pub fn pool_stats(&self) -> wsq_storage::buffer::PoolStats {
        self.pool.stats()
    }

    /// Create a table.
    pub fn create_table(&mut self, name: &str, schema: &Schema) -> Result<()> {
        if crate::builder::parse_virtual_name(name).is_some() {
            return Err(WsqError::Catalog(format!(
                "'{name}' is a reserved virtual table name"
            )));
        }
        self.catalog.create_table(name, schema)?;
        let key = name.to_ascii_lowercase();
        let storage = self.table_storage(&key)?;
        let file = self.pool.register_file(storage);
        let heap = HeapFile::create(self.pool.clone(), file)?;
        self.tables.insert(key, Arc::new(heap));
        Ok(())
    }

    /// Drop a table, its file, and its indexes.
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let index_cols = self.catalog.indexes_on(&key);
        self.catalog.drop_table(name)?;
        for col in index_cols {
            self.remove_index_file(&key, &col)?;
        }
        if let Some(heap) = self.tables.remove(&key) {
            let file = heap.file_id();
            drop(heap);
            self.pool.unregister_file(file)?;
        }
        if let Backing::Dir(dir) = &self.backing {
            let path = dir.join(format!("{key}.tbl"));
            if path.exists() {
                std::fs::remove_file(path)?;
            }
        }
        Ok(())
    }

    /// Create a B+-tree index on `table.column`, backfilling existing rows.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<()> {
        self.catalog.create_index(table, column)?;
        let tkey = table.to_ascii_lowercase();
        let ckey = column.to_ascii_lowercase();
        let storage = self.index_storage(&tkey, &ckey)?;
        let file = self.pool.register_file(storage);
        let tree = Arc::new(BTree::create(self.pool.clone(), file)?);

        // Backfill.
        let schema = self.catalog.table_schema(table)?.clone();
        let col_idx = schema.resolve(None, column)?;
        let heap = self.heap(table)?;
        for rec in heap.scan() {
            let (rid, bytes) = rec?;
            let tuple = codec::decode(&schema, &bytes)?;
            tree.insert(&codec::encode_key(tuple.get(col_idx))?, rid)?;
        }
        self.indexes.insert((tkey, ckey), tree);
        Ok(())
    }

    /// Drop an index.
    pub fn drop_index(&mut self, table: &str, column: &str) -> Result<()> {
        self.catalog.drop_index(table, column)?;
        self.remove_index_file(&table.to_ascii_lowercase(), &column.to_ascii_lowercase())
    }

    fn remove_index_file(&mut self, tkey: &str, ckey: &str) -> Result<()> {
        if let Some(tree) = self.indexes.remove(&(tkey.to_string(), ckey.to_string())) {
            let file = tree.file_id();
            drop(tree);
            self.pool.unregister_file(file)?;
        }
        if let Backing::Dir(dir) = &self.backing {
            let path = dir.join(format!("{tkey}_{ckey}.idx"));
            if path.exists() {
                std::fs::remove_file(path)?;
            }
        }
        Ok(())
    }

    /// The open index on `table.column`, if any.
    pub fn index(&self, table: &str, column: &str) -> Option<Arc<BTree>> {
        self.indexes
            .get(&(table.to_ascii_lowercase(), column.to_ascii_lowercase()))
            .cloned()
    }

    fn heap(&self, table: &str) -> Result<Arc<HeapFile>> {
        self.tables
            .get(&table.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| WsqError::Catalog(format!("no such table '{table}'")))
    }

    /// Indexes on `table` as `(column offset, tree)` pairs.
    fn table_indexes(&self, table: &str, schema: &Schema) -> Result<Vec<(usize, Arc<BTree>)>> {
        let mut out = Vec::new();
        for col in self.catalog.indexes_on(table) {
            let idx = schema.resolve(None, &col)?;
            let tree = self.index(table, &col).ok_or_else(|| {
                WsqError::Catalog(format!("index file for {table}.{col} missing"))
            })?;
            out.push((idx, tree));
        }
        Ok(out)
    }

    /// Insert tuples (validated against the stored schema), maintaining
    /// all indexes.
    pub fn insert(&mut self, table: &str, tuples: &[Tuple]) -> Result<usize> {
        let schema = self.catalog.table_schema(table)?.clone();
        let heap = self.heap(table)?;
        let indexes = self.table_indexes(table, &schema)?;
        for t in tuples {
            let bytes = codec::encode(&schema, t)?;
            let rid = heap.insert(&bytes)?;
            for (col, tree) in &indexes {
                tree.insert(&codec::encode_key(t.get(*col))?, rid)?;
            }
        }
        Ok(tuples.len())
    }

    /// Delete rows matching `predicate` (all rows when `None`), returning
    /// the count. Indexes are maintained.
    pub fn delete_rows(
        &mut self,
        table: &str,
        predicate: Option<&wsq_sql::ast::Expr>,
    ) -> Result<usize> {
        let schema = self.catalog.table_schema(table)?.clone();
        let heap = self.heap(table)?;
        let indexes = self.table_indexes(table, &schema)?;
        let pred = predicate
            .map(|p| crate::expr::compile(p, &schema))
            .transpose()?;
        let mut victims = Vec::new();
        for rec in heap.scan() {
            let (rid, bytes) = rec?;
            let tuple = codec::decode(&schema, &bytes)?;
            let hit = match &pred {
                Some(p) => p.eval_bool(&tuple)?,
                None => true,
            };
            if hit {
                victims.push((rid, tuple));
            }
        }
        for (rid, tuple) in &victims {
            heap.delete(*rid)?;
            for (col, tree) in &indexes {
                tree.delete(&codec::encode_key(tuple.get(*col))?, *rid)?;
            }
        }
        Ok(victims.len())
    }

    /// Update rows matching `predicate`: apply `SET col = expr`
    /// assignments (expressions see the old row). Indexes are maintained;
    /// rows may move if they grow. Returns the affected count.
    pub fn update_rows(
        &mut self,
        table: &str,
        sets: &[(String, wsq_sql::ast::Expr)],
        predicate: Option<&wsq_sql::ast::Expr>,
    ) -> Result<usize> {
        let schema = self.catalog.table_schema(table)?.clone();
        let heap = self.heap(table)?;
        let indexes = self.table_indexes(table, &schema)?;
        let pred = predicate
            .map(|p| crate::expr::compile(p, &schema))
            .transpose()?;
        let assignments = sets
            .iter()
            .map(|(col, e)| {
                Ok((
                    schema.resolve(None, col)?,
                    crate::expr::compile(e, &schema)?,
                ))
            })
            .collect::<Result<Vec<_>>>()?;

        let mut victims = Vec::new();
        for rec in heap.scan() {
            let (rid, bytes) = rec?;
            let tuple = codec::decode(&schema, &bytes)?;
            let hit = match &pred {
                Some(p) => p.eval_bool(&tuple)?,
                None => true,
            };
            if hit {
                victims.push((rid, tuple));
            }
        }
        let count = victims.len();
        for (rid, old) in victims {
            let mut new = old.clone();
            for (col, expr) in &assignments {
                let v = expr.eval(&old)?;
                // Type-check against the declared column type (NULL is ok).
                let declared = schema.column(*col).dtype;
                let v = match (declared, v) {
                    (wsq_common::DataType::Float, Value::Int(i)) => Value::Float(i as f64),
                    (_, v @ Value::Null) => v,
                    (dt, v) if v.data_type() == Some(dt) => v,
                    (dt, v) => {
                        return Err(WsqError::Type(format!(
                            "UPDATE {table}.{}: {v} is not {dt}",
                            schema.column(*col).name
                        )))
                    }
                };
                new.set(*col, v);
            }
            let bytes = codec::encode(&schema, &new)?;
            let new_rid = heap.update(rid, &bytes)?;
            for (col, tree) in &indexes {
                let old_key = codec::encode_key(old.get(*col))?;
                let new_key = codec::encode_key(new.get(*col))?;
                if old_key != new_key || rid != new_rid {
                    tree.delete(&old_key, rid)?;
                    tree.insert(&new_key, new_rid)?;
                }
            }
        }
        Ok(count)
    }

    /// Number of rows in a stored table.
    pub fn row_count(&self, table: &str) -> Result<u64> {
        self.tables
            .get(&table.to_ascii_lowercase())
            .ok_or_else(|| WsqError::Catalog(format!("no such table '{table}'")))?
            .len()
    }

    /// Plan a SELECT under `opts` (including the asynchronous-iteration
    /// transformation when requested).
    pub fn plan_query(
        &self,
        stmt: &SelectStmt,
        engines: &EngineRegistry,
        opts: QueryOptions,
    ) -> Result<PhysPlan> {
        let plan = plan_select(stmt, &self.catalog, engines)?;
        Ok(match opts.mode {
            ExecutionMode::Synchronous => plan,
            ExecutionMode::Asynchronous => {
                let plan = crate::asyncify::asyncify_with_opts(
                    plan,
                    opts.strategy,
                    opts.buffer,
                    opts.reqsync_cap,
                    crate::plan::PrefetchHint {
                        depth: opts.prefetch_depth,
                        window: opts.prefetch_window,
                        adaptive: opts.prefetch_adaptive,
                    },
                );
                // Debug-assert gate: the placeholder-dataflow verifier
                // (wsq-analyze) rejects any clash-rule violation the
                // transformation might have emitted, and proves the
                // stamped caps honour the session's reqsync_cap.
                if cfg!(debug_assertions) {
                    crate::verify_gate::check(&plan, opts.reqsync_cap)?;
                }
                plan
            }
            ExecutionMode::ParallelJoins => {
                crate::asyncify::parallelize(plan, opts.parallel_threads)
            }
        })
    }

    /// Execute a SELECT. Uncorrelated subqueries (`(SELECT …)` scalars and
    /// `IN (SELECT …)`) are evaluated first and folded into literals.
    pub fn run_query(
        &self,
        stmt: &SelectStmt,
        engines: &EngineRegistry,
        pump: &Arc<ReqPump>,
        opts: QueryOptions,
    ) -> Result<QueryResult> {
        let stmt = self.resolve_subqueries(stmt, engines, pump, opts)?;
        let plan = self.plan_query(&stmt, engines, opts)?;
        self.run_plan(&plan, engines, pump)
    }

    /// Fold uncorrelated subqueries into literals by evaluating them.
    fn resolve_subqueries(
        &self,
        stmt: &SelectStmt,
        engines: &EngineRegistry,
        pump: &Arc<ReqPump>,
        opts: QueryOptions,
    ) -> Result<SelectStmt> {
        let mut out = stmt.clone();
        let resolve = |e: &mut wsq_sql::ast::Expr| -> Result<()> {
            *e = self.fold_subqueries(
                std::mem::replace(e, wsq_sql::ast::Expr::Literal(Literal::Null)),
                engines,
                pump,
                opts,
            )?;
            Ok(())
        };
        if let Some(w) = &mut out.where_clause {
            resolve(w)?;
        }
        if let Some(h) = &mut out.having {
            resolve(h)?;
        }
        for item in &mut out.items {
            if let wsq_sql::ast::SelectItem::Expr { expr, .. } = item {
                resolve(expr)?;
            }
        }
        for o in &mut out.order_by {
            resolve(&mut o.expr)?;
        }
        Ok(out)
    }

    fn fold_subqueries(
        &self,
        e: wsq_sql::ast::Expr,
        engines: &EngineRegistry,
        pump: &Arc<ReqPump>,
        opts: QueryOptions,
    ) -> Result<wsq_sql::ast::Expr> {
        use wsq_sql::ast::Expr as E;
        let fold = |e: Box<E>| -> Result<Box<E>> {
            Ok(Box::new(self.fold_subqueries(*e, engines, pump, opts)?))
        };
        Ok(match e {
            E::Subquery(q) => {
                let result = self.run_query(&q, engines, pump, opts)?;
                if result.schema.len() != 1 {
                    return Err(WsqError::Plan(format!(
                        "scalar subquery must produce one column, got {}",
                        result.schema.len()
                    )));
                }
                if result.rows.len() > 1 {
                    return Err(WsqError::Exec(format!(
                        "scalar subquery produced {} rows",
                        result.rows.len()
                    )));
                }
                let v = result
                    .rows
                    .first()
                    .map(|t| t.get(0).clone())
                    .unwrap_or(Value::Null);
                E::Literal(value_to_literal(v)?)
            }
            E::InSubquery {
                expr,
                query,
                negated,
            } => {
                let result = self.run_query(&query, engines, pump, opts)?;
                if result.schema.len() != 1 {
                    return Err(WsqError::Plan(format!(
                        "IN subquery must produce one column, got {}",
                        result.schema.len()
                    )));
                }
                let list = result
                    .rows
                    .into_iter()
                    .map(|t| Ok(E::Literal(value_to_literal(t.get(0).clone())?)))
                    .collect::<Result<Vec<_>>>()?;
                E::InList {
                    expr: fold(expr)?,
                    list,
                    negated,
                }
            }
            E::Binary { op, lhs, rhs } => E::Binary {
                op,
                lhs: fold(lhs)?,
                rhs: fold(rhs)?,
            },
            E::Unary { op, expr } => E::Unary {
                op,
                expr: fold(expr)?,
            },
            E::Like {
                expr,
                pattern,
                negated,
            } => E::Like {
                expr: fold(expr)?,
                pattern: fold(pattern)?,
                negated,
            },
            E::InList {
                expr,
                list,
                negated,
            } => E::InList {
                expr: fold(expr)?,
                list: list
                    .into_iter()
                    .map(|e| self.fold_subqueries(e, engines, pump, opts))
                    .collect::<Result<Vec<_>>>()?,
                negated,
            },
            E::Between {
                expr,
                low,
                high,
                negated,
            } => E::Between {
                expr: fold(expr)?,
                low: fold(low)?,
                high: fold(high)?,
                negated,
            },
            E::Agg { func, arg } => E::Agg {
                func,
                arg: arg.map(fold).transpose()?,
            },
            leaf @ (E::Column(_) | E::Literal(_)) => leaf,
        })
    }

    /// Open a streaming cursor over a SELECT: rows are produced on demand,
    /// so with [`BufferMode::Streaming`] the first row can arrive long
    /// before the last external call completes (§4.1's non-materializing
    /// ReqSync). The cursor owns its executor tree and is independent of
    /// `self` afterwards.
    pub fn open_query(
        &self,
        stmt: &SelectStmt,
        engines: &EngineRegistry,
        pump: &Arc<ReqPump>,
        opts: QueryOptions,
    ) -> Result<Cursor> {
        let stmt = self.resolve_subqueries(stmt, engines, pump, opts)?;
        let plan = self.plan_query(&stmt, engines, opts)?;
        let ctx = ExecContext {
            tables: self,
            pump: pump.clone(),
            engines,
        };
        let mut executor = exec::build(&plan, &ctx)?;
        executor.open()?;
        Ok(Cursor {
            schema: plan.schema(),
            executor,
            done: false,
        })
    }

    /// Execute a SELECT with EXPLAIN-ANALYZE instrumentation: returns the
    /// rows plus a per-operator report (rows produced, `next` calls,
    /// re-opens, inclusive wall time).
    pub fn analyze_query(
        &self,
        stmt: &SelectStmt,
        engines: &EngineRegistry,
        pump: &Arc<ReqPump>,
        opts: QueryOptions,
    ) -> Result<(QueryResult, String)> {
        let stmt = self.resolve_subqueries(stmt, engines, pump, opts)?;
        let plan = self.plan_query(&stmt, engines, opts)?;
        let ctx = ExecContext {
            tables: self,
            pump: pump.clone(),
            engines,
        };
        let instr = exec::Instrumentation::new();
        let mut executor = exec::build_instrumented(&plan, &ctx, &instr)?;
        let before = pump.stats();
        let rows = exec::collect(executor.as_mut())?;
        let after = pump.stats();
        instr.note_counters(
            "pump",
            &[
                ("registered", after.registered - before.registered),
                ("launched", after.launched - before.launched),
                ("completed", after.completed - before.completed),
                ("coalesced", after.coalesced - before.coalesced),
                ("peak_in_flight", after.peak_in_flight),
                ("peak_queued", after.peak_queued),
            ],
        );
        Ok((
            QueryResult {
                schema: plan.schema(),
                rows,
            },
            instr.report(),
        ))
    }

    /// Execute an already-built plan.
    pub fn run_plan(
        &self,
        plan: &PhysPlan,
        engines: &EngineRegistry,
        pump: &Arc<ReqPump>,
    ) -> Result<QueryResult> {
        let ctx = ExecContext {
            tables: self,
            pump: pump.clone(),
            engines,
        };
        let mut exec = exec::build(plan, &ctx)?;
        let rows = exec::collect(exec.as_mut())?;
        Ok(QueryResult {
            schema: plan.schema(),
            rows,
        })
    }

    /// Execute one parsed statement.
    pub fn run_statement(
        &mut self,
        stmt: &Statement,
        engines: &EngineRegistry,
        pump: &Arc<ReqPump>,
        opts: QueryOptions,
    ) -> Result<StatementResult> {
        match stmt {
            Statement::CreateTable { name, columns } => {
                let schema = Schema::new(
                    columns
                        .iter()
                        .map(|c| Column::new(c.name.clone(), c.dtype))
                        .collect(),
                );
                self.create_table(name, &schema)?;
                Ok(StatementResult::Affected(0))
            }
            Statement::DropTable { name } => {
                self.drop_table(name)?;
                Ok(StatementResult::Affected(0))
            }
            Statement::Insert { table, rows } => {
                let schema = self.catalog.table_schema(table)?.clone();
                let tuples = rows
                    .iter()
                    .map(|r| literal_row(r, &schema, table))
                    .collect::<Result<Vec<_>>>()?;
                let n = self.insert(table, &tuples)?;
                Ok(StatementResult::Affected(n))
            }
            Statement::CreateIndex { table, column } => {
                self.create_index(table, column)?;
                Ok(StatementResult::Affected(0))
            }
            Statement::DropIndex { table, column } => {
                self.drop_index(table, column)?;
                Ok(StatementResult::Affected(0))
            }
            Statement::Delete { table, predicate } => {
                let predicate = predicate
                    .as_ref()
                    .map(|p| self.fold_subqueries(p.clone(), engines, pump, opts))
                    .transpose()?;
                Ok(StatementResult::Affected(
                    self.delete_rows(table, predicate.as_ref())?,
                ))
            }
            Statement::Update {
                table,
                sets,
                predicate,
            } => {
                let predicate = predicate
                    .as_ref()
                    .map(|p| self.fold_subqueries(p.clone(), engines, pump, opts))
                    .transpose()?;
                let sets = sets
                    .iter()
                    .map(|(c, e)| {
                        Ok((
                            c.clone(),
                            self.fold_subqueries(e.clone(), engines, pump, opts)?,
                        ))
                    })
                    .collect::<Result<Vec<_>>>()?;
                Ok(StatementResult::Affected(self.update_rows(
                    table,
                    &sets,
                    predicate.as_ref(),
                )?))
            }
            Statement::InsertSelect { table, query } => {
                let schema = self.catalog.table_schema(table)?.clone();
                let result = self.run_query(query, engines, pump, opts)?;
                if result.schema.len() != schema.len() {
                    return Err(WsqError::Plan(format!(
                        "INSERT INTO '{table}' SELECT: query produces {} columns, \
                         table has {}",
                        result.schema.len(),
                        schema.len()
                    )));
                }
                // Coerce per the declared column types (Int → Float only).
                let tuples = result
                    .rows
                    .into_iter()
                    .map(|t| {
                        let vals = t
                            .into_values()
                            .into_iter()
                            .zip(schema.columns())
                            .map(|(v, col)| match (col.dtype, v) {
                                (wsq_common::DataType::Float, Value::Int(i)) => {
                                    Ok(Value::Float(i as f64))
                                }
                                (_, v @ Value::Null) => Ok(v),
                                (dt, v) if v.data_type() == Some(dt) => Ok(v),
                                (dt, v) => Err(WsqError::Type(format!(
                                    "INSERT INTO '{table}.{}': {v} is not {dt}",
                                    col.name
                                ))),
                            })
                            .collect::<Result<Vec<_>>>()?;
                        Ok(Tuple::new(vals))
                    })
                    .collect::<Result<Vec<_>>>()?;
                let n = self.insert(table, &tuples)?;
                Ok(StatementResult::Affected(n))
            }
            Statement::CreateView { name, query } => {
                if crate::builder::parse_virtual_name(name).is_some() {
                    return Err(WsqError::Catalog(format!(
                        "'{name}' is a reserved virtual table name"
                    )));
                }
                // Validate the definition by planning it now, and require
                // unique output names so view columns are addressable.
                let plan = self.plan_query(query, engines, opts)?;
                let schema = plan.schema();
                let mut seen = std::collections::HashSet::new();
                for (_, c) in schema.iter() {
                    if !seen.insert(c.name.to_ascii_lowercase()) {
                        return Err(WsqError::Plan(format!(
                            "view '{name}': duplicate output column '{}'                              (add AS aliases)",
                            c.name
                        )));
                    }
                }
                // Store the definition as SQL text (reparsed on use).
                let definition = stmt_to_sql(query);
                self.catalog.create_view(name, &definition)?;
                Ok(StatementResult::Affected(0))
            }
            Statement::DropView { name } => {
                self.catalog.drop_view(name)?;
                Ok(StatementResult::Affected(0))
            }
            Statement::ShowTables => {
                let schema = Schema::new(vec![Column::new("Table", wsq_common::DataType::Varchar)]);
                let rows = self
                    .catalog
                    .table_names()
                    .into_iter()
                    .map(|n| Tuple::new(vec![Value::from(n)]))
                    .collect();
                Ok(StatementResult::Rows(QueryResult { schema, rows }))
            }
            Statement::Describe { table } => {
                let t_schema = self.catalog.table_schema(table)?.clone();
                let schema = Schema::new(vec![
                    Column::new("Column", wsq_common::DataType::Varchar),
                    Column::new("Type", wsq_common::DataType::Varchar),
                    Column::new("Indexed", wsq_common::DataType::Int),
                ]);
                let rows = t_schema
                    .columns()
                    .iter()
                    .map(|c| {
                        Tuple::new(vec![
                            Value::from(c.name.as_str()),
                            Value::from(c.dtype.to_string()),
                            Value::Int(i64::from(self.catalog.has_index(table, &c.name))),
                        ])
                    })
                    .collect();
                Ok(StatementResult::Rows(QueryResult { schema, rows }))
            }
            Statement::Select(sel) => Ok(StatementResult::Rows(
                self.run_query(sel, engines, pump, opts)?,
            )),
        }
    }

    /// Parse and execute a `;`-separated SQL script, returning the result
    /// of each statement.
    pub fn run_sql(
        &mut self,
        sql: &str,
        engines: &EngineRegistry,
        pump: &Arc<ReqPump>,
        opts: QueryOptions,
    ) -> Result<Vec<StatementResult>> {
        let stmts = wsq_sql::parse(sql)?;
        stmts
            .iter()
            .map(|s| self.run_statement(s, engines, pump, opts))
            .collect()
    }

    /// Estimate a SELECT's cost under `opts` (see [`crate::cost`]).
    pub fn estimate_query(
        &self,
        sql: &str,
        engines: &EngineRegistry,
        opts: QueryOptions,
        params: &crate::cost::CostParams,
    ) -> Result<crate::cost::CostEstimate> {
        match wsq_sql::parse_one(sql)? {
            Statement::Select(sel) => {
                let plan = self.plan_query(&sel, engines, opts)?;
                Ok(crate::cost::estimate(&plan, self, params))
            }
            _ => Err(WsqError::Plan(
                "cost estimation requires a SELECT".to_string(),
            )),
        }
    }

    /// EXPLAIN: the plan text for a SELECT under `opts`.
    pub fn explain(
        &self,
        sql: &str,
        engines: &EngineRegistry,
        opts: QueryOptions,
    ) -> Result<String> {
        match wsq_sql::parse_one(sql)? {
            Statement::Select(sel) => Ok(self.plan_query(&sel, engines, opts)?.display()),
            _ => Err(WsqError::Plan("EXPLAIN requires a SELECT".to_string())),
        }
    }

    /// Flush all dirty pages to stable storage.
    pub fn flush(&self) -> Result<()> {
        self.pool.flush_all()
    }
}

/// Render a SELECT back to SQL text (view definitions are persisted as
/// SQL and reparsed on use; `SelectStmt::Display` round-trips).
fn stmt_to_sql(stmt: &SelectStmt) -> String {
    stmt.to_string()
}

/// Convert a runtime value back to a literal (for subquery folding).
fn value_to_literal(v: Value) -> Result<Literal> {
    Ok(match v {
        Value::Null => Literal::Null,
        Value::Int(i) => Literal::Int(i),
        Value::Float(f) => Literal::Float(f),
        Value::Str(s) => Literal::Str(s),
        Value::Pending(p) => {
            return Err(WsqError::Exec(format!(
                "subquery produced unresolved placeholder {p}"
            )))
        }
    })
}

/// Convert a literal row to a typed tuple, coercing ints to declared
/// float columns.
fn literal_row(row: &[Literal], schema: &Schema, table: &str) -> Result<Tuple> {
    if row.len() != schema.len() {
        return Err(WsqError::Plan(format!(
            "INSERT into '{table}': expected {} values, got {}",
            schema.len(),
            row.len()
        )));
    }
    let vals = row
        .iter()
        .zip(schema.columns())
        .map(|(lit, col)| {
            let v = crate::expr::literal_value(lit);
            match (col.dtype, v) {
                (wsq_common::DataType::Float, wsq_common::Value::Int(i)) => {
                    Ok(wsq_common::Value::Float(i as f64))
                }
                (_, v @ wsq_common::Value::Null) => Ok(v),
                (dt, v) => {
                    if v.data_type() == Some(dt) {
                        Ok(v)
                    } else {
                        Err(WsqError::Type(format!(
                            "INSERT into '{table}.{}': {v} is not {dt}",
                            col.name
                        )))
                    }
                }
            }
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(Tuple::new(vals))
}

impl TableSource for Database {
    fn table(&self, name: &str) -> Result<(Arc<HeapFile>, Schema)> {
        let heap = self.heap(name)?;
        let schema = self.catalog.table_schema(name)?.clone();
        Ok((heap, schema))
    }

    fn table_index(&self, table: &str, column: &str) -> Option<Arc<BTree>> {
        self.index(table, column)
    }
}
