//! Post-`asyncify` plan verification hook.
//!
//! The static verifier lives in `wsq-analyze`, which depends on this
//! crate for [`PhysPlan`] — so the engine cannot call it directly
//! without a dependency cycle. Instead the engine exposes a process-wide
//! gate slot: `wsq_analyze::install_plan_gate` (invoked from
//! `Wsq::build`) installs the verifier here, and
//! [`Database::plan_query`](crate::db::Database::plan_query) runs it on
//! every asynchronous plan in debug builds. Release builds skip the
//! check (the transformation is property-tested against the same
//! verifier), and plans built before any gate is installed pass
//! unchecked.

use crate::plan::PhysPlan;
use std::sync::OnceLock;
use wsq_common::{Result, WsqError};

/// A plan verifier. The second argument is the session's declared
/// `reqsync_cap` at planning time, so the verifier can prove the
/// stamped plan honours it (resource-bound rules). `Err` carries the
/// human-readable violation list.
pub type PlanGate = fn(&PhysPlan, Option<usize>) -> std::result::Result<(), String>;

static GATE: OnceLock<PlanGate> = OnceLock::new();

/// Install the process-wide plan gate. First caller wins; later calls
/// are no-ops (the verifier is stateless, so racing installs are
/// harmless).
pub fn install(gate: PlanGate) {
    let _ = GATE.set(gate);
}

/// Run the installed gate (if any) against `plan` with the session's
/// declared `reqsync_cap`, mapping violations to [`WsqError::Plan`].
pub fn check(plan: &PhysPlan, declared_cap: Option<usize>) -> Result<()> {
    if let Some(gate) = GATE.get() {
        if let Err(msg) = gate(plan, declared_cap) {
            return Err(WsqError::Plan(format!(
                "asyncify emitted an invalid plan (verifier): {msg}"
            )));
        }
    }
    Ok(())
}
