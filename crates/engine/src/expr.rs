//! Compiled expressions: AST expressions resolved against a schema into an
//! evaluable form with column offsets.
//!
//! Compilation happens once per executor build; evaluation is a cheap tree
//! walk with no name lookups (perf-book: do the work once, outside the
//! per-tuple loop).

use wsq_common::{DataType, Result, Schema, Tuple, Value, WsqError};
use wsq_sql::ast::{BinOp, Expr, Literal, UnOp};

/// A compiled, offset-resolved expression.
#[derive(Debug, Clone)]
pub enum CExpr {
    /// Tuple value at an offset.
    Column(usize),
    /// Constant.
    Const(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<CExpr>,
        /// Right operand.
        rhs: Box<CExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<CExpr>,
    },
    /// SQL LIKE pattern match.
    Like {
        /// Tested expression.
        expr: Box<CExpr>,
        /// Pattern expression.
        pattern: Box<CExpr>,
        /// `NOT LIKE`?
        negated: bool,
    },
    /// Membership test.
    InList {
        /// Tested expression.
        expr: Box<CExpr>,
        /// Candidates.
        list: Vec<CExpr>,
        /// `NOT IN`?
        negated: bool,
    },
    /// Inclusive range test.
    Between {
        /// Tested expression.
        expr: Box<CExpr>,
        /// Lower bound.
        low: Box<CExpr>,
        /// Upper bound.
        high: Box<CExpr>,
        /// `NOT BETWEEN`?
        negated: bool,
    },
}

/// Convert an AST literal to a runtime value.
pub fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Int(i) => Value::Int(*i),
        Literal::Float(f) => Value::Float(*f),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Null => Value::Null,
    }
}

/// Compile `expr` against `schema`. Aggregate calls are rejected — the
/// planner rewrites them into plain column references before compilation.
pub fn compile(expr: &Expr, schema: &Schema) -> Result<CExpr> {
    match expr {
        Expr::Column(c) => {
            let idx = schema.resolve(c.qualifier.as_deref(), &c.name)?;
            Ok(CExpr::Column(idx))
        }
        Expr::Literal(l) => Ok(CExpr::Const(literal_value(l))),
        Expr::Binary { op, lhs, rhs } => Ok(CExpr::Binary {
            op: *op,
            lhs: Box::new(compile(lhs, schema)?),
            rhs: Box::new(compile(rhs, schema)?),
        }),
        Expr::Unary { op, expr } => Ok(CExpr::Unary {
            op: *op,
            expr: Box::new(compile(expr, schema)?),
        }),
        Expr::Agg { .. } => Err(WsqError::Plan(
            "aggregate call outside of GROUP BY planning".to_string(),
        )),
        Expr::Subquery(_) | Expr::InSubquery { .. } => Err(WsqError::Plan(
            "subquery was not folded before compilation (only uncorrelated \
             subqueries are supported, and EXPLAIN cannot evaluate them)"
                .to_string(),
        )),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Ok(CExpr::Like {
            expr: Box::new(compile(expr, schema)?),
            pattern: Box::new(compile(pattern, schema)?),
            negated: *negated,
        }),
        Expr::InList {
            expr,
            list,
            negated,
        } => Ok(CExpr::InList {
            expr: Box::new(compile(expr, schema)?),
            list: list
                .iter()
                .map(|e| compile(e, schema))
                .collect::<Result<Vec<_>>>()?,
            negated: *negated,
        }),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Ok(CExpr::Between {
            expr: Box::new(compile(expr, schema)?),
            low: Box::new(compile(low, schema)?),
            high: Box::new(compile(high, schema)?),
            negated: *negated,
        }),
    }
}

/// SQL LIKE matching: `%` matches any run (including empty), `_` any one
/// character. Case-sensitive, over chars.
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some(('%', rest)) => {
                // Greedily try every split point.
                (0..=t.len()).any(|k| rec(&t[k..], rest))
            }
            Some(('_', rest)) => !t.is_empty() && rec(&t[1..], rest),
            Some((c, rest)) => t.first() == Some(c) && rec(&t[1..], rest),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

impl CExpr {
    /// Evaluate against a tuple.
    pub fn eval(&self, tuple: &Tuple) -> Result<Value> {
        match self {
            CExpr::Column(i) => Ok(tuple.get(*i).clone()),
            CExpr::Const(v) => Ok(v.clone()),
            CExpr::Unary { op, expr } => {
                let v = expr.eval(tuple)?;
                match op {
                    UnOp::Neg => match v {
                        Value::Int(i) => Ok(Value::Int(-i)),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        Value::Null => Ok(Value::Null),
                        other => Err(WsqError::Type(format!("cannot negate {other}"))),
                    },
                    UnOp::Not => {
                        let b = truthy(&v)?;
                        Ok(Value::Int(i64::from(!b)))
                    }
                }
            }
            CExpr::Binary { op, lhs, rhs } => {
                let l = lhs.eval(tuple)?;
                // Short-circuit logical operators.
                match op {
                    BinOp::And => {
                        if !truthy(&l)? {
                            return Ok(Value::Int(0));
                        }
                        return Ok(Value::Int(i64::from(truthy(&rhs.eval(tuple)?)?)));
                    }
                    BinOp::Or => {
                        if truthy(&l)? {
                            return Ok(Value::Int(1));
                        }
                        return Ok(Value::Int(i64::from(truthy(&rhs.eval(tuple)?)?)));
                    }
                    _ => {}
                }
                let r = rhs.eval(tuple)?;
                if op.is_comparison() {
                    // SQL-ish: comparisons involving NULL are false.
                    if l.is_null() || r.is_null() {
                        return Ok(Value::Int(0));
                    }
                    let ord = l.compare(&r)?;
                    let b = match op {
                        BinOp::Eq => ord == std::cmp::Ordering::Equal,
                        BinOp::NotEq => ord != std::cmp::Ordering::Equal,
                        BinOp::Lt => ord == std::cmp::Ordering::Less,
                        BinOp::LtEq => ord != std::cmp::Ordering::Greater,
                        BinOp::Gt => ord == std::cmp::Ordering::Greater,
                        BinOp::GtEq => ord != std::cmp::Ordering::Less,
                        _ => unreachable!(),
                    };
                    return Ok(Value::Int(i64::from(b)));
                }
                arith(*op, &l, &r)
            }
            CExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(tuple)?;
                let p = pattern.eval(tuple)?;
                if v.is_null() || p.is_null() {
                    return Ok(Value::Int(0));
                }
                let b = like_match(v.as_str()?, p.as_str()?);
                Ok(Value::Int(i64::from(b != *negated)))
            }
            CExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(tuple)?;
                if v.is_null() {
                    return Ok(Value::Int(0));
                }
                let mut found = false;
                for e in list {
                    let candidate = e.eval(tuple)?;
                    if !candidate.is_null() && v.sql_eq(&candidate)? {
                        found = true;
                        break;
                    }
                }
                Ok(Value::Int(i64::from(found != *negated)))
            }
            CExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(tuple)?;
                let lo = low.eval(tuple)?;
                let hi = high.eval(tuple)?;
                if v.is_null() || lo.is_null() || hi.is_null() {
                    return Ok(Value::Int(0));
                }
                let b = v.compare(&lo)? != std::cmp::Ordering::Less
                    && v.compare(&hi)? != std::cmp::Ordering::Greater;
                Ok(Value::Int(i64::from(b != *negated)))
            }
        }
    }

    /// Evaluate as a predicate.
    pub fn eval_bool(&self, tuple: &Tuple) -> Result<bool> {
        truthy(&self.eval(tuple)?)
    }
}

fn truthy(v: &Value) -> Result<bool> {
    match v {
        Value::Int(i) => Ok(*i != 0),
        Value::Float(f) => Ok(*f != 0.0),
        Value::Null => Ok(false),
        other => Err(WsqError::Type(format!("{other} is not a boolean"))),
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // String concatenation via `+`.
    if op == BinOp::Add {
        if let (Value::Str(a), Value::Str(b)) = (l, r) {
            return Ok(Value::Str(format!("{a}{b}")));
        }
    }
    let float = matches!(l, Value::Float(_)) || matches!(r, Value::Float(_));
    if float {
        let a = l.as_float()?;
        let b = r.as_float()?;
        let v = match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => {
                if b == 0.0 {
                    return Ok(Value::Null);
                }
                a / b
            }
            other => {
                return Err(WsqError::Type(format!(
                    "operator {} is not arithmetic",
                    other.symbol()
                )))
            }
        };
        Ok(Value::Float(v))
    } else {
        let a = l.as_int()?;
        let b = r.as_int()?;
        let v = match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return Ok(Value::Null);
                }
                a.wrapping_div(b)
            }
            other => {
                return Err(WsqError::Type(format!(
                    "operator {} is not arithmetic",
                    other.symbol()
                )))
            }
        };
        Ok(Value::Int(v))
    }
}

/// Infer the output type of an AST expression against a schema (used to
/// build projection schemas). `None` means "unknown/NULL".
pub fn infer_type(expr: &Expr, schema: &Schema) -> Option<DataType> {
    match expr {
        Expr::Column(c) => schema
            .try_resolve(c.qualifier.as_deref(), &c.name)
            .map(|i| schema.column(i).dtype),
        Expr::Literal(Literal::Int(_)) => Some(DataType::Int),
        Expr::Literal(Literal::Float(_)) => Some(DataType::Float),
        Expr::Literal(Literal::Str(_)) => Some(DataType::Varchar),
        Expr::Literal(Literal::Null) => None,
        Expr::Unary {
            op: UnOp::Neg,
            expr,
        } => infer_type(expr, schema),
        Expr::Unary { op: UnOp::Not, .. } => Some(DataType::Int),
        Expr::Binary { op, lhs, rhs } => {
            if op.is_comparison() || matches!(op, BinOp::And | BinOp::Or) {
                return Some(DataType::Int);
            }
            match (infer_type(lhs, schema), infer_type(rhs, schema)) {
                (Some(DataType::Float), _) | (_, Some(DataType::Float)) => Some(DataType::Float),
                (Some(DataType::Varchar), _) | (_, Some(DataType::Varchar)) => {
                    Some(DataType::Varchar)
                }
                (Some(DataType::Int), _) | (_, Some(DataType::Int)) => Some(DataType::Int),
                _ => None,
            }
        }
        Expr::Agg { func, arg } => match func {
            wsq_sql::ast::AggFunc::Count => Some(DataType::Int),
            wsq_sql::ast::AggFunc::Avg => Some(DataType::Float),
            _ => arg.as_ref().and_then(|a| infer_type(a, schema)),
        },
        Expr::Like { .. } | Expr::InList { .. } | Expr::Between { .. } => Some(DataType::Int),
        Expr::Subquery(_) => None,
        Expr::InSubquery { .. } => Some(DataType::Int),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsq_common::Column;
    use wsq_sql::parse_one;
    use wsq_sql::Statement;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::qualified("T", "a", DataType::Int),
            Column::qualified("T", "b", DataType::Float),
            Column::qualified("T", "s", DataType::Varchar),
        ])
    }

    fn tuple() -> Tuple {
        Tuple::new(vec![Value::Int(6), Value::Float(1.5), Value::from("hi")])
    }

    /// Parse `SELECT <expr> FROM T` and return the expression.
    fn expr(text: &str) -> Expr {
        match parse_one(&format!("SELECT {text} FROM T")).unwrap() {
            Statement::Select(s) => match s.items.into_iter().next().unwrap() {
                wsq_sql::SelectItem::Expr { expr, .. } => expr,
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    fn eval(text: &str) -> Value {
        compile(&expr(text), &schema())
            .unwrap()
            .eval(&tuple())
            .unwrap()
    }

    #[test]
    fn arithmetic_int_and_float() {
        assert_eq!(eval("a + 2"), Value::Int(8));
        assert_eq!(eval("a / 4"), Value::Int(1)); // integer division
        assert_eq!(eval("a * b"), Value::Float(9.0));
        assert_eq!(eval("-a"), Value::Int(-6));
        assert_eq!(eval("a - 10"), Value::Int(-4));
    }

    #[test]
    fn division_by_zero_yields_null() {
        assert_eq!(eval("a / 0"), Value::Null);
        assert_eq!(eval("b / 0.0"), Value::Null);
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval("a > 5"), Value::Int(1));
        assert_eq!(eval("a <= 5"), Value::Int(0));
        assert_eq!(eval("s = 'hi'"), Value::Int(1));
        assert_eq!(eval("s <> 'hi'"), Value::Int(0));
        assert_eq!(eval("a = 6.0"), Value::Int(1)); // cross-type numeric
    }

    #[test]
    fn null_comparisons_are_false() {
        assert_eq!(eval("a = NULL"), Value::Int(0));
        assert_eq!(eval("NULL = NULL"), Value::Int(0));
        assert_eq!(eval("a <> NULL"), Value::Int(0));
    }

    #[test]
    fn logic_short_circuits() {
        assert_eq!(eval("a > 5 AND s = 'hi'"), Value::Int(1));
        assert_eq!(eval("a > 9 AND s"), Value::Int(0)); // rhs not evaluated
        assert_eq!(eval("a > 5 OR s"), Value::Int(1));
        assert_eq!(eval("NOT a > 5"), Value::Int(0));
    }

    #[test]
    fn string_concat() {
        assert_eq!(eval("s + '!'"), Value::from("hi!"));
    }

    #[test]
    fn unknown_column_fails_compile() {
        assert!(compile(&expr("nope"), &schema()).is_err());
        assert!(compile(&expr("U.a"), &schema()).is_err());
    }

    #[test]
    fn aggregates_rejected_at_compile() {
        assert!(compile(&expr("COUNT(*)"), &schema()).is_err());
    }

    #[test]
    fn like_matching() {
        assert!(like_match("New Mexico", "New%"));
        assert!(like_match("New Mexico", "%Mexico"));
        assert!(like_match("New Mexico", "%w M%"));
        assert!(like_match("New Mexico", "New Mexic_"));
        assert!(like_match("", "%"));
        assert!(like_match("abc", "___"));
        assert!(!like_match("abc", "__"));
        assert!(!like_match("abc", "ABC")); // case-sensitive
        assert!(like_match("a%b", "a%b")); // literal text still matches itself
        assert!(like_match("aaa", "%a%a%"));
    }

    #[test]
    fn like_in_between_eval() {
        assert_eq!(eval("s LIKE 'h%'"), Value::Int(1));
        assert_eq!(eval("s NOT LIKE 'h%'"), Value::Int(0));
        assert_eq!(eval("s LIKE '_i'"), Value::Int(1));
        assert_eq!(eval("a IN (1, 6, 9)"), Value::Int(1));
        assert_eq!(eval("a NOT IN (1, 6, 9)"), Value::Int(0));
        assert_eq!(eval("a IN (1, 2)"), Value::Int(0));
        assert_eq!(eval("s IN ('hi', 'ho')"), Value::Int(1));
        assert_eq!(eval("a BETWEEN 5 AND 7"), Value::Int(1));
        assert_eq!(eval("a BETWEEN 7 AND 9"), Value::Int(0));
        assert_eq!(eval("a NOT BETWEEN 7 AND 9"), Value::Int(1));
        assert_eq!(eval("b BETWEEN 1 AND a"), Value::Int(1));
        // NULL participants → false.
        assert_eq!(eval("s LIKE NULL"), Value::Int(0));
        assert_eq!(eval("NULL IN (1)"), Value::Int(0));
        assert_eq!(eval("a BETWEEN NULL AND 9"), Value::Int(0));
    }

    #[test]
    fn type_inference() {
        let s = schema();
        assert_eq!(infer_type(&expr("a + 1"), &s), Some(DataType::Int));
        assert_eq!(infer_type(&expr("a + b"), &s), Some(DataType::Float));
        assert_eq!(infer_type(&expr("a > 1"), &s), Some(DataType::Int));
        assert_eq!(infer_type(&expr("s"), &s), Some(DataType::Varchar));
        assert_eq!(infer_type(&expr("NULL"), &s), None);
    }
}
