//! The WSQ query engine: catalog, planner, Volcano executors, and the
//! paper's asynchronous-iteration machinery (`AEVScan`, `ReqSync`, plan
//! transformation).
//!
//! The crate mirrors the architecture of the paper's prototype (Redbase +
//! WSQ extensions):
//!
//! * [`catalog`] — `relcat`/`attrcat`-style system catalog.
//! * [`builder`] — AST → physical plan, with virtual-table binding
//!   analysis (§3).
//! * [`plan`] — the physical plan tree, including [`plan::EvSpec`] (the
//!   `WebCount`/`WebPages` scan specification) and EXPLAIN rendering.
//! * [`mod@asyncify`] — ReqSync Insertion / Percolation / Consolidation
//!   (§4.5).
//! * [`exec`] — iterator-model executors, including the dependent join,
//!   `EVScan`/`AEVScan`, and `ReqSync` (§4.1–§4.4).
//! * [`db`] — the database driver ([`db::Database`]).
//! * [`engines`] — the search-engine registry.

pub mod asyncify;
pub mod builder;
pub mod catalog;
pub mod cost;
pub mod db;
pub mod engines;
pub mod exec;
pub mod expr;
pub mod plan;
pub mod verify_gate;

pub use asyncify::asyncify;
pub use builder::{parse_virtual_name, plan_select, DEFAULT_RANK_LIMIT};
pub use cost::{estimate, CostEstimate, CostParams};
pub use db::{Database, QueryOptions, QueryResult, StatementResult};
pub use engines::{EngineEntry, EngineRegistry};
pub use plan::{BufferMode, ExecutionMode, PhysPlan, PlacementStrategy};
