//! System catalog, bootstrapped Redbase-style from system heap files:
//! `relcat` (one record per relation), `attrcat` (one per attribute),
//! `indexcat` (one per index), and `viewcat` (one per view).

use std::collections::HashMap;
use std::sync::Arc;
use wsq_common::{Column, DataType, Result, Schema, Tuple, Value, WsqError};
use wsq_storage::buffer::BufferPool;
use wsq_storage::codec;
use wsq_storage::heap::HeapFile;
use wsq_storage::page::FileId;

/// Schema of the `relcat` system table.
fn relcat_schema() -> Schema {
    Schema::new(vec![Column::new("relname", DataType::Varchar)])
}

/// Schema of the `attrcat` system table.
fn attrcat_schema() -> Schema {
    Schema::new(vec![
        Column::new("relname", DataType::Varchar),
        Column::new("attrname", DataType::Varchar),
        Column::new("position", DataType::Int),
        Column::new("attrtype", DataType::Varchar),
    ])
}

fn type_name(dt: DataType) -> &'static str {
    match dt {
        DataType::Int => "INT",
        DataType::Float => "FLOAT",
        DataType::Varchar => "VARCHAR",
    }
}

fn parse_type(s: &str) -> Result<DataType> {
    match s {
        "INT" => Ok(DataType::Int),
        "FLOAT" => Ok(DataType::Float),
        "VARCHAR" => Ok(DataType::Varchar),
        other => Err(WsqError::Catalog(format!("corrupt attrcat type '{other}'"))),
    }
}

/// Schema of the `indexcat` system table.
fn indexcat_schema() -> Schema {
    Schema::new(vec![
        Column::new("relname", DataType::Varchar),
        Column::new("attrname", DataType::Varchar),
    ])
}

/// Schema of the `viewcat` system table.
fn viewcat_schema() -> Schema {
    Schema::new(vec![
        Column::new("viewname", DataType::Varchar),
        Column::new("definition", DataType::Varchar),
    ])
}

/// The system catalog: stored tables, their indexes, and views.
///
/// Four system heaps, each in its own buffer-pool file: `relcat` (one
/// record per relation), `attrcat` (one per attribute), `indexcat` (one
/// per index, Redbase's IX bookkeeping), and `viewcat` (one per view,
/// holding its defining SQL). In-memory caches mirror the heap contents
/// for fast lookup.
pub struct Catalog {
    relcat: HeapFile,
    attrcat: HeapFile,
    indexcat: HeapFile,
    viewcat: HeapFile,
    cache: HashMap<String, Schema>,
    /// table (lowercased) → indexed columns (lowercased).
    index_cache: HashMap<String, Vec<String>>,
    /// view (lowercased) → defining SQL text.
    view_cache: HashMap<String, String>,
}

impl Catalog {
    /// Bootstrap a brand-new catalog in the four (empty) files.
    pub fn create(
        pool: Arc<BufferPool>,
        relcat_file: FileId,
        attrcat_file: FileId,
        indexcat_file: FileId,
        viewcat_file: FileId,
    ) -> Result<Self> {
        let relcat = HeapFile::create(pool.clone(), relcat_file)?;
        let attrcat = HeapFile::create(pool.clone(), attrcat_file)?;
        let indexcat = HeapFile::create(pool.clone(), indexcat_file)?;
        let viewcat = HeapFile::create(pool, viewcat_file)?;
        Ok(Catalog {
            relcat,
            attrcat,
            indexcat,
            viewcat,
            cache: HashMap::new(),
            index_cache: HashMap::new(),
            view_cache: HashMap::new(),
        })
    }

    /// Open an existing catalog, loading the caches from the heaps.
    pub fn open(
        pool: Arc<BufferPool>,
        relcat_file: FileId,
        attrcat_file: FileId,
        indexcat_file: FileId,
        viewcat_file: FileId,
    ) -> Result<Self> {
        let relcat = HeapFile::open(pool.clone(), relcat_file)?;
        let attrcat = HeapFile::open(pool.clone(), attrcat_file)?;
        let indexcat = HeapFile::open(pool.clone(), indexcat_file)?;
        let viewcat = HeapFile::open(pool, viewcat_file)?;
        let mut cache = HashMap::new();

        // Gather attributes per relation first.
        let aschema = attrcat_schema();
        let mut attrs: HashMap<String, Vec<(i64, String, DataType)>> = HashMap::new();
        for rec in attrcat.scan() {
            let (_, bytes) = rec?;
            let t = codec::decode(&aschema, &bytes)?;
            let rel = t.get(0).as_str()?.to_string();
            let name = t.get(1).as_str()?.to_string();
            let pos = t.get(2).as_int()?;
            let dt = parse_type(t.get(3).as_str()?)?;
            attrs.entry(rel).or_default().push((pos, name, dt));
        }

        let rschema = relcat_schema();
        for rec in relcat.scan() {
            let (_, bytes) = rec?;
            let t = codec::decode(&rschema, &bytes)?;
            let rel = t.get(0).as_str()?.to_string();
            let mut cols = attrs.remove(&rel).unwrap_or_default();
            cols.sort_by_key(|(p, _, _)| *p);
            let schema = Schema::new(
                cols.into_iter()
                    .map(|(_, name, dt)| Column::new(name, dt))
                    .collect(),
            );
            cache.insert(rel.to_ascii_lowercase(), schema);
        }
        let ischema = indexcat_schema();
        let mut index_cache: HashMap<String, Vec<String>> = HashMap::new();
        for rec in indexcat.scan() {
            let (_, bytes) = rec?;
            let t = codec::decode(&ischema, &bytes)?;
            index_cache
                .entry(t.get(0).as_str()?.to_ascii_lowercase())
                .or_default()
                .push(t.get(1).as_str()?.to_ascii_lowercase());
        }
        let vschema = viewcat_schema();
        let mut view_cache: HashMap<String, String> = HashMap::new();
        for rec in viewcat.scan() {
            let (_, bytes) = rec?;
            let t = codec::decode(&vschema, &bytes)?;
            view_cache.insert(
                t.get(0).as_str()?.to_ascii_lowercase(),
                t.get(1).as_str()?.to_string(),
            );
        }
        Ok(Catalog {
            relcat,
            attrcat,
            indexcat,
            viewcat,
            cache,
            index_cache,
            view_cache,
        })
    }

    /// Register a view with its defining SQL text.
    pub fn create_view(&mut self, name: &str, definition: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.cache.contains_key(&key) {
            return Err(WsqError::Catalog(format!(
                "a table named '{name}' already exists"
            )));
        }
        if self.view_cache.contains_key(&key) {
            return Err(WsqError::Catalog(format!("view '{name}' already exists")));
        }
        let vschema = viewcat_schema();
        self.viewcat.insert(&codec::encode(
            &vschema,
            &Tuple::new(vec![Value::from(key.as_str()), Value::from(definition)]),
        )?)?;
        self.view_cache.insert(key, definition.to_string());
        Ok(())
    }

    /// Remove a view.
    pub fn drop_view(&mut self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.view_cache.remove(&key).is_none() {
            return Err(WsqError::Catalog(format!("no such view '{name}'")));
        }
        let vschema = viewcat_schema();
        let mut rids = Vec::new();
        for rec in self.viewcat.scan() {
            let (rid, bytes) = rec?;
            let t = codec::decode(&vschema, &bytes)?;
            if t.get(0).as_str()?.eq_ignore_ascii_case(&key) {
                rids.push(rid);
            }
        }
        for rid in rids {
            self.viewcat.delete(rid)?;
        }
        Ok(())
    }

    /// The defining SQL of a view, if `name` is one.
    pub fn view_definition(&self, name: &str) -> Option<&str> {
        self.view_cache
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Names of all views (lowercased), sorted.
    pub fn view_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.view_cache.keys().cloned().collect();
        names.sort();
        names
    }

    /// Register an index on `table.column`.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<()> {
        let tkey = table.to_ascii_lowercase();
        let ckey = column.to_ascii_lowercase();
        let schema = self
            .cache
            .get(&tkey)
            .ok_or_else(|| WsqError::Catalog(format!("no such table '{table}'")))?;
        schema.resolve(None, column)?;
        if self.has_index(table, column) {
            return Err(WsqError::Catalog(format!(
                "index on {table}({column}) already exists"
            )));
        }
        let ischema = indexcat_schema();
        self.indexcat.insert(&codec::encode(
            &ischema,
            &Tuple::new(vec![Value::from(tkey.as_str()), Value::from(ckey.as_str())]),
        )?)?;
        self.index_cache.entry(tkey).or_default().push(ckey);
        Ok(())
    }

    /// Unregister an index.
    pub fn drop_index(&mut self, table: &str, column: &str) -> Result<()> {
        let tkey = table.to_ascii_lowercase();
        let ckey = column.to_ascii_lowercase();
        let cols = self.index_cache.get_mut(&tkey);
        let existed = cols
            .map(|cols| {
                let n = cols.len();
                cols.retain(|c| c != &ckey);
                cols.len() < n
            })
            .unwrap_or(false);
        if !existed {
            return Err(WsqError::Catalog(format!("no index on {table}({column})")));
        }
        self.delete_indexcat_records(&tkey, Some(&ckey))
    }

    fn delete_indexcat_records(&mut self, table: &str, column: Option<&str>) -> Result<()> {
        let ischema = indexcat_schema();
        let mut rids = Vec::new();
        for rec in self.indexcat.scan() {
            let (rid, bytes) = rec?;
            let t = codec::decode(&ischema, &bytes)?;
            let rel = t.get(0).as_str()?;
            let attr = t.get(1).as_str()?;
            if rel.eq_ignore_ascii_case(table)
                && column.is_none_or(|c| attr.eq_ignore_ascii_case(c))
            {
                rids.push(rid);
            }
        }
        for rid in rids {
            self.indexcat.delete(rid)?;
        }
        Ok(())
    }

    /// Does `table.column` have an index?
    pub fn has_index(&self, table: &str, column: &str) -> bool {
        self.index_cache
            .get(&table.to_ascii_lowercase())
            .is_some_and(|cols| cols.iter().any(|c| c.eq_ignore_ascii_case(column)))
    }

    /// Indexed columns of `table` (lowercased).
    pub fn indexes_on(&self, table: &str) -> Vec<String> {
        self.index_cache
            .get(&table.to_ascii_lowercase())
            .cloned()
            .unwrap_or_default()
    }

    /// Register a new table.
    pub fn create_table(&mut self, name: &str, schema: &Schema) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.cache.contains_key(&key) {
            return Err(WsqError::Catalog(format!("table '{name}' already exists")));
        }
        if self.view_cache.contains_key(&key) {
            return Err(WsqError::Catalog(format!(
                "a view named '{name}' already exists"
            )));
        }
        if schema.is_empty() {
            return Err(WsqError::Catalog(format!(
                "table '{name}' must have at least one column"
            )));
        }
        // Reject duplicate column names.
        let mut seen = std::collections::HashSet::new();
        for c in schema.columns() {
            if !seen.insert(c.name.to_ascii_lowercase()) {
                return Err(WsqError::Catalog(format!(
                    "duplicate column '{}' in table '{name}'",
                    c.name
                )));
            }
        }

        let rschema = relcat_schema();
        self.relcat.insert(&codec::encode(
            &rschema,
            &Tuple::new(vec![Value::from(name)]),
        )?)?;
        let aschema = attrcat_schema();
        for (i, c) in schema.iter() {
            let t = Tuple::new(vec![
                Value::from(name),
                Value::from(c.name.as_str()),
                Value::Int(i as i64),
                Value::from(type_name(c.dtype)),
            ]);
            self.attrcat.insert(&codec::encode(&aschema, &t)?)?;
        }
        self.cache.insert(key, schema.clone());
        Ok(())
    }

    /// Remove a table (and its index registrations) from the catalog.
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.cache.remove(&key).is_none() {
            return Err(WsqError::Catalog(format!("no such table '{name}'")));
        }
        self.index_cache.remove(&key);
        self.delete_indexcat_records(&key, None)?;
        // Delete relcat + attrcat records.
        let rschema = relcat_schema();
        let mut rids = Vec::new();
        for rec in self.relcat.scan() {
            let (rid, bytes) = rec?;
            let t = codec::decode(&rschema, &bytes)?;
            if t.get(0).as_str()?.eq_ignore_ascii_case(name) {
                rids.push(rid);
            }
        }
        for rid in rids {
            self.relcat.delete(rid)?;
        }
        let aschema = attrcat_schema();
        let mut rids = Vec::new();
        for rec in self.attrcat.scan() {
            let (rid, bytes) = rec?;
            let t = codec::decode(&aschema, &bytes)?;
            if t.get(0).as_str()?.eq_ignore_ascii_case(name) {
                rids.push(rid);
            }
        }
        for rid in rids {
            self.attrcat.delete(rid)?;
        }
        Ok(())
    }

    /// A table's stored schema (unqualified columns).
    pub fn table_schema(&self, name: &str) -> Result<&Schema> {
        self.cache
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| WsqError::Catalog(format!("no such table '{name}'")))
    }

    /// Does a table exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.cache.contains_key(&name.to_ascii_lowercase())
    }

    /// Names of all user tables (lowercased), sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.cache.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsq_storage::disk::MemStorage;

    fn fresh() -> (Arc<BufferPool>, Catalog) {
        let pool = Arc::new(BufferPool::new(16));
        let f1 = pool.register_file(Box::new(MemStorage::new()));
        let f2 = pool.register_file(Box::new(MemStorage::new()));
        let f3 = pool.register_file(Box::new(MemStorage::new()));
        let f4 = pool.register_file(Box::new(MemStorage::new()));
        let cat = Catalog::create(pool.clone(), f1, f2, f3, f4).unwrap();
        (pool, cat)
    }

    fn states_schema() -> Schema {
        Schema::new(vec![
            Column::new("Name", DataType::Varchar),
            Column::new("Population", DataType::Int),
            Column::new("Capital", DataType::Varchar),
        ])
    }

    #[test]
    fn create_lookup_drop() {
        let (_pool, mut cat) = fresh();
        cat.create_table("States", &states_schema()).unwrap();
        assert!(cat.has_table("states"));
        assert!(cat.has_table("STATES"));
        let s = cat.table_schema("States").unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.column(1).dtype, DataType::Int);
        cat.drop_table("states").unwrap();
        assert!(!cat.has_table("States"));
        assert!(cat.drop_table("States").is_err());
        assert!(cat.table_schema("States").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let (_pool, mut cat) = fresh();
        cat.create_table("T", &states_schema()).unwrap();
        assert!(cat.create_table("t", &states_schema()).is_err());
    }

    #[test]
    fn duplicate_column_rejected() {
        let (_pool, mut cat) = fresh();
        let bad = Schema::new(vec![
            Column::new("x", DataType::Int),
            Column::new("X", DataType::Float),
        ]);
        assert!(cat.create_table("T", &bad).is_err());
    }

    #[test]
    fn empty_schema_rejected() {
        let (_pool, mut cat) = fresh();
        assert!(cat.create_table("T", &Schema::empty()).is_err());
    }

    #[test]
    fn persists_across_reopen() {
        let pool = Arc::new(BufferPool::new(16));
        let f1 = pool.register_file(Box::new(MemStorage::new()));
        let f2 = pool.register_file(Box::new(MemStorage::new()));
        let f3 = pool.register_file(Box::new(MemStorage::new()));
        let f4 = pool.register_file(Box::new(MemStorage::new()));
        {
            let mut cat = Catalog::create(pool.clone(), f1, f2, f3, f4).unwrap();
            cat.create_table("States", &states_schema()).unwrap();
            cat.create_table(
                "Sigs",
                &Schema::new(vec![Column::new("Name", DataType::Varchar)]),
            )
            .unwrap();
            cat.create_index("States", "Name").unwrap();
            cat.create_index("States", "Capital").unwrap();
            cat.drop_index("States", "Capital").unwrap();
            cat.drop_table("Sigs").unwrap();
        }
        let cat = Catalog::open(pool, f1, f2, f3, f4).unwrap();
        assert!(cat.has_table("States"));
        assert!(!cat.has_table("Sigs"));
        let s = cat.table_schema("States").unwrap();
        assert_eq!(s.column(0).name, "Name");
        assert_eq!(s.column(2).name, "Capital");
        assert_eq!(cat.table_names(), vec!["states".to_string()]);
        assert!(cat.has_index("states", "NAME"));
        assert!(!cat.has_index("States", "Capital"));
        assert_eq!(cat.indexes_on("States"), vec!["name".to_string()]);
    }

    #[test]
    fn index_registration_rules() {
        let (_pool, mut cat) = fresh();
        cat.create_table("T", &states_schema()).unwrap();
        assert!(cat.create_index("Nope", "Name").is_err());
        assert!(cat.create_index("T", "Nope").is_err());
        cat.create_index("T", "Name").unwrap();
        assert!(cat.create_index("T", "name").is_err(), "duplicate");
        assert!(cat.drop_index("T", "Population").is_err());
        cat.drop_index("T", "NAME").unwrap();
        assert!(!cat.has_index("T", "Name"));
        // Dropping the table clears index registrations.
        cat.create_index("T", "Name").unwrap();
        cat.drop_table("T").unwrap();
        assert!(cat.indexes_on("T").is_empty());
    }
}
