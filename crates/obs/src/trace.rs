//! The trace ring buffer: a fixed-capacity, lock-light, drop-counting
//! record of per-call lifecycle events.
//!
//! # Protocol
//!
//! Writers reserve a global sequence number with one `fetch_add` on
//! `head`, then write their event into slot `seq % capacity` under that
//! slot's own mutex (per-slot locking — writers to different slots never
//! contend, and a snapshot reader only blocks one writer at a time).
//! A writer only stores its event if its sequence number is newer than
//! what the slot already holds, so a slow writer lapped by the ring can
//! never clobber fresher data.
//!
//! Because every reserved sequence number is written exactly once, the
//! number of *dropped* (overwritten) events is exactly
//! `head.saturating_sub(capacity)` — no separate drop counter can race.
//! The same protocol is model-checked under schedcheck in
//! `wsq-analyze::models::trace_ring_model`.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use wsq_common::CallId;

/// What happened to a call (or one of its tuples) at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The call was registered with the pump.
    Registered,
    /// A registration attached to an identical in-flight call instead of
    /// creating a new one.
    Coalesced,
    /// The call entered the pump's wait queue (capacity unavailable).
    Queued,
    /// The call was handed to its service.
    Launched,
    /// The service returned successfully.
    Completed,
    /// The service returned an error.
    Failed,
    /// A retry decorator re-issued the request after a failure.
    Retried,
    /// The call was released while still queued (never launched).
    Cancelled,
    /// ReqSync received the call's result (delivery to the operator).
    Delivered,
    /// A buffered tuple waiting on the call was patched with a value.
    Patched,
    /// A buffered tuple waiting on the call was cancelled (§4.3 case 1).
    TupleCancelled,
    /// ReqSync hit its buffer cap and stopped pulling from its child
    /// (admission control; the call is the first one it then waited on).
    Stalled,
    /// A stalled ReqSync drained below its low-water mark and resumed
    /// pulling from its child.
    Resumed,
    /// The call was registered ahead of demand by a prefetching scan
    /// (DESIGN.md §12).
    PrefetchIssued,
    /// The call was handed to its service as part of a windowed
    /// `execute_batch` dispatch (instead of a per-request `Launched`
    /// handoff; the `Launched` event still fires when capacity is taken).
    BatchLaunched,
}

impl EventKind {
    /// Short lower-case name used in trace rendering.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Registered => "registered",
            EventKind::Coalesced => "coalesced",
            EventKind::Queued => "queued",
            EventKind::Launched => "launched",
            EventKind::Completed => "completed",
            EventKind::Failed => "failed",
            EventKind::Retried => "retried",
            EventKind::Cancelled => "cancelled",
            EventKind::Delivered => "delivered",
            EventKind::Patched => "patched",
            EventKind::TupleCancelled => "tuple-cancelled",
            EventKind::Stalled => "stalled",
            EventKind::Resumed => "resumed",
            EventKind::PrefetchIssued => "prefetch-issued",
            EventKind::BatchLaunched => "batch-launched",
        }
    }
}

/// One recorded lifecycle event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Global sequence number (position in the ring's history).
    pub seq: u64,
    /// Monotonic timestamp, as elapsed time since the observability
    /// epoch ([`crate::Obs::enabled`] construction).
    pub at: Duration,
    /// The call this event belongs to.
    pub call: CallId,
    /// What happened.
    pub kind: EventKind,
    /// Optional annotation: the request display on `Registered`, the
    /// error text on `Failed`. Shared, so cloning a snapshot is cheap.
    pub label: Option<Arc<str>>,
}

struct Slot {
    /// Sequence number of the stored event; `u64::MAX` marks empty.
    seq: u64,
    event: Option<TraceEvent>,
}

/// The fixed-capacity circular event buffer.
pub struct TraceRing {
    slots: Box<[Mutex<Slot>]>,
    head: AtomicU64,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.capacity())
            .field("recorded", &self.position())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl TraceRing {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            slots: (0..capacity)
                .map(|_| {
                    Mutex::new(Slot {
                        seq: u64::MAX,
                        event: None,
                    })
                })
                .collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded; doubles as the "current position"
    /// marker for [`TraceRing::snapshot_since`].
    pub fn position(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Exact number of events lost to overwriting.
    pub fn dropped(&self) -> u64 {
        self.position().saturating_sub(self.capacity() as u64)
    }

    /// Record one event, assigning it the next sequence number.
    pub fn push(&self, at: Duration, call: CallId, kind: EventKind, label: Option<Arc<str>>) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let mut guard = slot.lock();
        // A writer lapped before acquiring the lock must not clobber the
        // fresher event already stored (its own event is simply dropped —
        // accounted for by `dropped()` since head already advanced).
        if guard.seq == u64::MAX || seq > guard.seq {
            guard.seq = seq;
            guard.event = Some(TraceEvent {
                seq,
                at,
                call,
                kind,
                label,
            });
        }
    }

    /// Every retained event with `seq >= since`, ordered by sequence
    /// number. Pass `0` for the full ring, or a saved
    /// [`TraceRing::position`] for a per-query window.
    pub fn snapshot_since(&self, since: u64) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = self
            .slots
            .iter()
            .filter_map(|s| {
                let guard = s.lock();
                guard.event.as_ref().filter(|e| e.seq >= since).cloned()
            })
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(n: u64) -> CallId {
        CallId(n)
    }

    #[test]
    fn records_and_snapshots_in_order() {
        let ring = TraceRing::new(8);
        ring.push(
            Duration::from_millis(1),
            cid(1),
            EventKind::Registered,
            None,
        );
        ring.push(Duration::from_millis(2), cid(1), EventKind::Launched, None);
        ring.push(Duration::from_millis(3), cid(1), EventKind::Completed, None);
        let events = ring.snapshot_since(0);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::Registered);
        assert_eq!(events[2].kind, EventKind::Completed);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overwrites_oldest_and_counts_drops_exactly() {
        let ring = TraceRing::new(4);
        for i in 0..10u64 {
            ring.push(Duration::from_millis(i), cid(i), EventKind::Queued, None);
        }
        assert_eq!(ring.dropped(), 6);
        let events = ring.snapshot_since(0);
        assert_eq!(events.len(), 4);
        // The survivors are the newest four, in order.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn snapshot_since_scopes_a_window() {
        let ring = TraceRing::new(16);
        ring.push(Duration::ZERO, cid(1), EventKind::Registered, None);
        let pos = ring.position();
        ring.push(Duration::ZERO, cid(2), EventKind::Registered, None);
        ring.push(Duration::ZERO, cid(2), EventKind::Launched, None);
        let window = ring.snapshot_since(pos);
        assert_eq!(window.len(), 2);
        assert!(window.iter().all(|e| e.call == cid(2)));
    }

    #[test]
    fn concurrent_writers_lose_nothing_below_capacity() {
        let ring = Arc::new(TraceRing::new(4096));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for i in 0..256u64 {
                        ring.push(
                            Duration::from_nanos(i),
                            cid(t * 1000 + i),
                            EventKind::Queued,
                            None,
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.position(), 8 * 256);
        assert_eq!(ring.dropped(), 0);
        assert_eq!(ring.snapshot_since(0).len(), 8 * 256);
    }
}
