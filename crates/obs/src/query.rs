//! Per-query measurement windows and trace timeline rendering.
//!
//! A [`QueryWindow`] brackets one query: it snapshots the latency
//! histograms, saves the trace position, and resets the in-flight
//! high-water mark when opened; when finished it subtracts the
//! snapshots ([`crate::HistogramSnapshot::delta`]) so the reported
//! p50/p95 describe exactly the calls this query launched, and reads
//! the per-query maximum and per-call timeline from the trace window.

use crate::metrics::HistogramSnapshot;
use crate::trace::{EventKind, TraceEvent};
use crate::Obs;
use std::collections::HashMap;
use std::fmt;
use std::time::Duration;
use wsq_common::CallId;

/// An open per-query measurement window; see [`Obs::begin_query`].
#[derive(Debug)]
pub struct QueryWindow {
    enabled: bool,
    start_pos: u64,
    started: Duration,
    call_latency0: HistogramSnapshot,
    queue_delay0: HistogramSnapshot,
    patch_delay0: HistogramSnapshot,
    stall_duration0: HistogramSnapshot,
    stalls0: u64,
    prefetch_issued0: u64,
    prefetch_wasted0: u64,
    batches0: u64,
}

impl QueryWindow {
    pub(crate) fn open(obs: &Obs) -> QueryWindow {
        match obs.metrics() {
            Some(m) => {
                m.in_flight.reset_high_water();
                m.reqsync_buffered.reset_high_water();
                QueryWindow {
                    enabled: true,
                    start_pos: obs.trace_position(),
                    started: obs.now(),
                    call_latency0: m.call_latency.snapshot(),
                    queue_delay0: m.queue_delay.snapshot(),
                    patch_delay0: m.patch_delay.snapshot(),
                    stall_duration0: m.stall_duration.snapshot(),
                    stalls0: m.reqsync_stalls.get(),
                    prefetch_issued0: m.prefetch_issued.get(),
                    prefetch_wasted0: m.prefetch_wasted.get(),
                    batches0: m.batch_size.snapshot().count,
                }
            }
            None => QueryWindow {
                enabled: false,
                start_pos: 0,
                started: Duration::ZERO,
                call_latency0: HistogramSnapshot::empty(),
                queue_delay0: HistogramSnapshot::empty(),
                patch_delay0: HistogramSnapshot::empty(),
                stall_duration0: HistogramSnapshot::empty(),
                stalls0: 0,
                prefetch_issued0: 0,
                prefetch_wasted0: 0,
                batches0: 0,
            },
        }
    }

    /// Close the window: record the query's wall time in
    /// `wsq_query_latency_seconds`, bump `wsq_queries_total`, and return
    /// the summary. `None` when the handle is disabled.
    pub fn finish(self, obs: &Obs) -> Option<QuerySummary> {
        if !self.enabled {
            return None;
        }
        let m = obs.metrics()?;
        let elapsed = obs.now().saturating_sub(self.started);
        m.queries.inc();
        m.query_latency.observe(elapsed);

        let calls = m.call_latency.snapshot().delta(&self.call_latency0);
        let queue = m.queue_delay.snapshot().delta(&self.queue_delay0);
        let patch = m.patch_delay.snapshot().delta(&self.patch_delay0);
        let stall = m.stall_duration.snapshot().delta(&self.stall_duration0);
        let events = obs.trace_events_since(self.start_pos);
        Some(QuerySummary {
            elapsed,
            calls: calls.count,
            call_p50: calls.quantile(0.5),
            call_p95: calls.quantile(0.95),
            call_max: max_call_latency(&events).or_else(|| calls.quantile(1.0)),
            queue_p95: queue.quantile(0.95),
            patch_p95: patch.quantile(0.95),
            max_concurrent: m.in_flight.high_water(),
            stalls: m.reqsync_stalls.get().saturating_sub(self.stalls0),
            stall_p95: stall.quantile(0.95),
            buffered_hw: m.reqsync_buffered.high_water(),
            events: events.len() as u64,
            dropped: obs.trace().map_or(0, |t| t.dropped()),
            prefetch_issued: m
                .prefetch_issued
                .get()
                .saturating_sub(self.prefetch_issued0),
            prefetch_wasted: m
                .prefetch_wasted
                .get()
                .saturating_sub(self.prefetch_wasted0),
            batches: m.batch_size.snapshot().count.saturating_sub(self.batches0),
        })
    }
}

/// What one query did, distilled from the metrics registry and the
/// trace window. Rendered as the `-- trace:` ANALYZE footer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySummary {
    /// End-to-end wall time.
    pub elapsed: Duration,
    /// External calls that completed (or failed) during the window.
    pub calls: u64,
    /// Median launch→completion latency (registry histogram delta).
    pub call_p50: Option<Duration>,
    /// 95th-percentile launch→completion latency.
    pub call_p95: Option<Duration>,
    /// Slowest single call, measured exactly from the trace window.
    pub call_max: Option<Duration>,
    /// 95th-percentile registration→launch delay (capacity wait).
    pub queue_p95: Option<Duration>,
    /// 95th-percentile tuple admission→patch delay in ReqSync.
    pub patch_p95: Option<Duration>,
    /// High-water mark of simultaneously in-flight calls.
    pub max_concurrent: i64,
    /// Admission-control stalls ReqSync operators took in the window.
    pub stalls: u64,
    /// 95th-percentile stall duration (stall → resume).
    pub stall_p95: Option<Duration>,
    /// High-water mark of buffered incomplete tuples (ReqSync occupancy;
    /// with `reqsync_buffer_cap` set this stays at or below the cap,
    /// barring §4.3 case-3 copy multiplication).
    pub buffered_hw: i64,
    /// Trace events the window captured.
    pub events: u64,
    /// Lifetime trace drops (non-zero means old windows were evicted).
    pub dropped: u64,
    /// Calls registered ahead of demand during the window (DESIGN §12).
    pub prefetch_issued: u64,
    /// Prefetched calls whose tuple was never consumed.
    pub prefetch_wasted: u64,
    /// Windowed `execute_batch` dispatches during the window.
    pub batches: u64,
}

impl fmt::Display for QuerySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "calls={} call_p50={} call_p95={} call_max={} queue_p95={} patch_p95={} max_concurrent={} stalls={} stall_p95={} buffered_hw={} events={} dropped={} prefetch_issued={} prefetch_wasted={} batches={}",
            self.calls,
            fmt_ms(self.call_p50),
            fmt_ms(self.call_p95),
            fmt_ms(self.call_max),
            fmt_ms(self.queue_p95),
            fmt_ms(self.patch_p95),
            self.max_concurrent,
            self.stalls,
            fmt_ms(self.stall_p95),
            self.buffered_hw,
            self.events,
            self.dropped,
            self.prefetch_issued,
            self.prefetch_wasted,
            self.batches,
        )
    }
}

fn fmt_ms(d: Option<Duration>) -> String {
    match d {
        Some(d) => format!("{:.1}ms", d.as_secs_f64() * 1_000.0),
        None => "-".to_string(),
    }
}

/// Exact per-query maximum call latency: the largest launched→finished
/// gap among calls whose both endpoints fall inside the event window.
fn max_call_latency(events: &[TraceEvent]) -> Option<Duration> {
    let mut launched: HashMap<CallId, Duration> = HashMap::new();
    let mut max: Option<Duration> = None;
    for e in events {
        match e.kind {
            EventKind::Launched => {
                launched.insert(e.call, e.at);
            }
            EventKind::Completed | EventKind::Failed => {
                if let Some(start) = launched.get(&e.call) {
                    let d = e.at.saturating_sub(*start);
                    if max.is_none_or(|m| d > m) {
                        max = Some(d);
                    }
                }
            }
            _ => {}
        }
    }
    max
}

/// Render a per-call timeline from a trace window, as shown by the
/// REPL's `.trace` command. Calls appear in first-event order; each
/// event line shows its offset from the window's first event, and
/// launches/completions are annotated with the queue and call
/// durations they imply.
pub fn render_timeline(events: &[TraceEvent], dropped: u64) -> String {
    if events.is_empty() {
        return "no trace events captured (observability disabled or no external calls)\n"
            .to_string();
    }
    let t0 = events[0].at;
    let mut order: Vec<CallId> = Vec::new();
    let mut per_call: HashMap<CallId, Vec<&TraceEvent>> = HashMap::new();
    for e in events {
        let entry = per_call.entry(e.call).or_default();
        if entry.is_empty() {
            order.push(e.call);
        }
        entry.push(e);
    }
    let mut out = format!(
        "{} calls, {} events ({} dropped)\n",
        order.len(),
        events.len(),
        dropped
    );
    for call in order {
        let evs = &per_call[&call];
        let label = evs.iter().find_map(|e| e.label.as_deref()).unwrap_or("");
        out.push_str(&format!("{call}  {label}\n"));
        let mut registered_at: Option<Duration> = None;
        let mut launched_at: Option<Duration> = None;
        for e in evs {
            let mut note = String::new();
            match e.kind {
                EventKind::Registered | EventKind::Queued => {
                    registered_at.get_or_insert(e.at);
                }
                EventKind::Launched => {
                    launched_at = Some(e.at);
                    if let Some(r) = registered_at {
                        note = format!("  (waited {})", fmt_rel(e.at.saturating_sub(r)));
                    }
                }
                EventKind::Completed | EventKind::Failed => {
                    if let Some(l) = launched_at {
                        note = format!("  (call {})", fmt_rel(e.at.saturating_sub(l)));
                    }
                }
                _ => {}
            }
            out.push_str(&format!(
                "  +{:>9} {}{}\n",
                fmt_rel(e.at.saturating_sub(t0)),
                e.kind.name(),
                note
            ));
        }
    }
    out
}

fn fmt_rel(d: Duration) -> String {
    format!("{:.3}ms", d.as_secs_f64() * 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn window_on_disabled_obs_yields_none() {
        let obs = Obs::disabled();
        let w = obs.begin_query();
        assert!(w.finish(&obs).is_none());
    }

    #[test]
    fn window_scopes_stats_to_one_query() {
        let obs = Obs::enabled();
        let m = obs.metrics().unwrap();
        // Noise from an earlier "query".
        m.call_latency.observe(Duration::from_secs(4));
        m.in_flight.add(50);
        m.in_flight.add(-50);

        let w = obs.begin_query();
        m.in_flight.add(3);
        obs.event(CallId(1), EventKind::Launched);
        m.call_latency.observe(Duration::from_millis(2));
        obs.event(CallId(1), EventKind::Completed);
        m.in_flight.add(-3);
        let s = w.finish(&obs).unwrap();

        assert_eq!(s.calls, 1);
        assert_eq!(s.max_concurrent, 3, "high-water reset scopes the mark");
        assert!(s.call_p95.unwrap() <= Duration::from_millis(3));
        // The exact max comes from the trace, not the lifetime histogram max.
        assert!(s.call_max.unwrap() < Duration::from_secs(1));
        assert_eq!(s.events, 2);
        assert_eq!(m.queries.get(), 1);
        assert_eq!(m.query_latency.snapshot().count, 1);
        let line = s.to_string();
        assert!(line.starts_with("calls=1 "));
        assert!(line.contains("max_concurrent=3"));
    }

    #[test]
    fn timeline_renders_waits_and_call_durations() {
        let mk = |seq, ms, call, kind, label: Option<&str>| TraceEvent {
            seq,
            at: Duration::from_millis(ms),
            call: CallId(call),
            kind,
            label: label.map(Arc::from),
        };
        let events = vec![
            mk(0, 10, 1, EventKind::Registered, Some("AV:count(\"Utah\")")),
            mk(1, 10, 1, EventKind::Queued, None),
            mk(2, 12, 1, EventKind::Launched, None),
            mk(3, 37, 1, EventKind::Completed, None),
            mk(4, 38, 1, EventKind::Delivered, None),
            mk(5, 38, 1, EventKind::Patched, None),
        ];
        let out = render_timeline(&events, 0);
        assert!(out.starts_with("1 calls, 6 events (0 dropped)"));
        assert!(out.contains("C1  AV:count(\"Utah\")"));
        assert!(out.contains("launched  (waited 2.000ms)"));
        assert!(out.contains("completed  (call 25.000ms)"));
        assert!(out.contains("patched"));
        assert!(render_timeline(&[], 0).contains("no trace events"));
    }
}
