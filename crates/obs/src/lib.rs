#![deny(missing_docs)]
//! Query-lifecycle observability for WSQ/DSQ: call tracing, a metrics
//! registry, and exposition (DESIGN.md §10).
//!
//! The paper's argument is about *where time goes* during asynchronous
//! iteration — launch latency, per-destination queue waits, ReqSync
//! stalls. This crate makes those visible without perturbing them:
//!
//! * [`TraceRing`] — a lock-light, fixed-capacity, drop-counting ring of
//!   per-[`CallId`] lifecycle events (registered → queued → launched →
//!   completed/failed → delivered → patched), timestamped against a
//!   monotonic epoch.
//! * [`metrics`] — atomic [`Counter`]s, [`Gauge`]s with high-water
//!   marks, and fixed-bucket latency [`Histogram`]s, pre-registered as
//!   the [`WellKnown`] set and fed by ReqPump, ReqSync, AEVScan, and the
//!   websim decorators.
//! * exposition — [`Obs::prometheus_text`], [`Obs::json_snapshot`], and
//!   the per-query [`QueryWindow`] summaries surfaced by `.stats`,
//!   `.trace`, and `Wsq::analyze`.
//!
//! # The no-op guarantee
//!
//! [`Obs`] is a cheap-clone handle wrapping `Option<Arc<..>>`.
//! [`Obs::disabled`] carries `None`, so every emission site costs one
//! null-check and branch — no clock read, no allocation, no atomics.
//! The `pump_cache` bench's ablation section verifies the end-to-end
//! overhead stays within noise (<2% on the miss-storm scenario).
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use wsq_common::CallId;
//! use wsq_obs::{EventKind, Obs};
//!
//! let obs = Obs::enabled();
//! obs.event_with(CallId(1), EventKind::Registered, || "AV:count(\"Utah\")".into());
//! obs.event(CallId(1), EventKind::Launched);
//! if let Some(m) = obs.metrics() {
//!     m.calls_launched.inc();
//!     m.call_latency.observe(Duration::from_millis(25));
//! }
//! obs.event(CallId(1), EventKind::Completed);
//!
//! let timeline = obs.trace_events_since(0);
//! assert_eq!(timeline.len(), 3);
//! assert!(obs.prometheus_text().contains("wsq_calls_launched_total 1"));
//!
//! // Disabled handles swallow everything for free.
//! let off = Obs::disabled();
//! off.event(CallId(2), EventKind::Registered);
//! assert!(off.metrics().is_none());
//! ```

pub mod metrics;
mod query;
mod trace;

pub use metrics::{
    bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, Metric, Registered, Registry,
    WellKnown, BUCKET_BOUNDS_US, BUCKET_COUNT,
};
pub use query::{render_timeline, QuerySummary, QueryWindow};
pub use trace::{EventKind, TraceEvent, TraceRing};

use std::cell::Cell;
use std::sync::Arc;
use std::time::{Duration, Instant};
use wsq_common::CallId;

/// Default trace ring capacity (events), enough for several hundred
/// WebCount-join queries before wrap-around.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// The shared observability state behind an enabled [`Obs`] handle.
#[derive(Debug)]
pub struct ObsCore {
    epoch: Instant,
    trace: TraceRing,
    registry: Registry,
    well: WellKnown,
}

/// The observability handle threaded through pump, engine, and websim.
///
/// Cheap to clone (one `Option<Arc>`); [`Obs::disabled`] (also the
/// [`Default`]) is a true no-op sink. Construct one per [`wsq` facade /
/// pump] instance and share it — timestamps and sequence numbers are
/// only comparable within one handle's epoch.
#[derive(Clone, Default)]
pub struct Obs {
    core: Option<Arc<ObsCore>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.core {
            Some(core) => f.debug_tuple("Obs").field(&core.trace).finish(),
            None => f.write_str("Obs(disabled)"),
        }
    }
}

impl Obs {
    /// A no-op sink: every emission is a null-check, nothing is stored.
    pub fn disabled() -> Obs {
        Obs { core: None }
    }

    /// An enabled handle with the [`DEFAULT_TRACE_CAPACITY`] ring.
    pub fn enabled() -> Obs {
        Obs::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled handle whose trace ring holds `trace_capacity` events.
    pub fn with_capacity(trace_capacity: usize) -> Obs {
        let registry = Registry::new();
        let well = WellKnown::register(&registry);
        Obs {
            core: Some(Arc::new(ObsCore {
                epoch: Instant::now(),
                trace: TraceRing::new(trace_capacity),
                registry,
                well,
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Elapsed time since this handle's epoch (zero when disabled).
    pub fn now(&self) -> Duration {
        match &self.core {
            Some(core) => core.epoch.elapsed(),
            None => Duration::ZERO,
        }
    }

    /// The well-known instrument set, or `None` when disabled. The
    /// idiomatic emission site is one `if let`:
    ///
    /// ```
    /// # use wsq_obs::Obs;
    /// # use std::time::Duration;
    /// # let obs = Obs::enabled();
    /// if let Some(m) = obs.metrics() {
    ///     m.call_latency.observe(Duration::from_millis(3));
    /// }
    /// ```
    pub fn metrics(&self) -> Option<&WellKnown> {
        self.core.as_deref().map(|c| &c.well)
    }

    /// The full metrics registry (for exposition), `None` when disabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.core.as_deref().map(|c| &c.registry)
    }

    /// The trace ring, `None` when disabled.
    pub fn trace(&self) -> Option<&TraceRing> {
        self.core.as_deref().map(|c| &c.trace)
    }

    /// Record an unlabelled lifecycle event for `call`.
    pub fn event(&self, call: CallId, kind: EventKind) {
        if let Some(core) = &self.core {
            core.trace.push(core.epoch.elapsed(), call, kind, None);
        }
    }

    /// Record a labelled lifecycle event; `label` is only invoked (and
    /// its string only allocated) when the handle is enabled.
    pub fn event_with(&self, call: CallId, kind: EventKind, label: impl FnOnce() -> Arc<str>) {
        if let Some(core) = &self.core {
            core.trace
                .push(core.epoch.elapsed(), call, kind, Some(label()));
        }
    }

    /// Current trace position (total events recorded); save it before a
    /// query and pass it to [`Obs::trace_events_since`] for a per-query
    /// timeline. Zero when disabled.
    pub fn trace_position(&self) -> u64 {
        self.core.as_deref().map_or(0, |c| c.trace.position())
    }

    /// All retained trace events with sequence number ≥ `since`,
    /// in order. Empty when disabled.
    pub fn trace_events_since(&self, since: u64) -> Vec<TraceEvent> {
        self.core
            .as_deref()
            .map_or_else(Vec::new, |c| c.trace.snapshot_since(since))
    }

    /// Open a per-query measurement window (snapshots the histograms,
    /// saves the trace position, resets the in-flight high-water mark).
    pub fn begin_query(&self) -> QueryWindow {
        QueryWindow::open(self)
    }

    /// Prometheus text-format dump of every registered metric. Empty
    /// when disabled.
    pub fn prometheus_text(&self) -> String {
        let Some(core) = self.core.as_deref() else {
            return String::new();
        };
        let mut out = String::new();
        for reg in core.registry.list() {
            match &reg.metric {
                Metric::Counter(c) => {
                    push_meta(&mut out, reg.name, reg.help, "counter");
                    out.push_str(&format!("{} {}\n", reg.name, c.get()));
                }
                Metric::Gauge(g) => {
                    push_meta(&mut out, reg.name, reg.help, "gauge");
                    out.push_str(&format!("{} {}\n", reg.name, g.get()));
                    out.push_str(&format!("{}_high_water {}\n", reg.name, g.high_water()));
                }
                Metric::Histogram(h) => {
                    push_meta(&mut out, reg.name, reg.help, "histogram");
                    let s = h.snapshot();
                    let mut cumulative = 0u64;
                    for (i, n) in s.buckets.iter().enumerate() {
                        cumulative += n;
                        let le = match BUCKET_BOUNDS_US.get(i) {
                            Some(us) => format!("{}", *us as f64 / 1_000_000.0),
                            None => "+Inf".to_string(),
                        };
                        out.push_str(&format!(
                            "{}_bucket{{le=\"{}\"}} {}\n",
                            reg.name, le, cumulative
                        ));
                    }
                    out.push_str(&format!("{}_sum {}\n", reg.name, s.sum_nanos as f64 / 1e9));
                    out.push_str(&format!("{}_count {}\n", reg.name, s.count));
                }
            }
        }
        out.push_str("# HELP wsq_trace_dropped_total Trace events lost to ring overwrite\n");
        out.push_str("# TYPE wsq_trace_dropped_total counter\n");
        out.push_str(&format!(
            "wsq_trace_dropped_total {}\n",
            core.trace.dropped()
        ));
        out
    }

    /// JSON snapshot of every registered metric plus trace-ring health.
    /// `"{}"` when disabled.
    pub fn json_snapshot(&self) -> String {
        let Some(core) = self.core.as_deref() else {
            return "{}".to_string();
        };
        let mut parts: Vec<String> = Vec::new();
        for reg in core.registry.list() {
            match &reg.metric {
                Metric::Counter(c) => parts.push(format!("\"{}\":{}", reg.name, c.get())),
                Metric::Gauge(g) => parts.push(format!(
                    "\"{}\":{{\"value\":{},\"high_water\":{}}}",
                    reg.name,
                    g.get(),
                    g.high_water()
                )),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let buckets: Vec<String> = s.buckets.iter().map(|n| n.to_string()).collect();
                    parts.push(format!(
                        "\"{}\":{{\"count\":{},\"sum_seconds\":{},\"max_seconds\":{},\"buckets\":[{}]}}",
                        reg.name,
                        s.count,
                        s.sum_nanos as f64 / 1e9,
                        s.max_nanos as f64 / 1e9,
                        buckets.join(",")
                    ));
                }
            }
        }
        parts.push(format!(
            "\"trace\":{{\"recorded\":{},\"dropped\":{},\"capacity\":{}}}",
            core.trace.position(),
            core.trace.dropped(),
            core.trace.capacity()
        ));
        format!("{{{}}}", parts.join(","))
    }
}

fn push_meta(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

thread_local! {
    static CURRENT_CALL: Cell<Option<CallId>> = const { Cell::new(None) };
}

/// Run `f` with `call` installed as the thread's current call, so
/// service decorators deep in the execute stack (retry, flaky, cache)
/// can attribute their trace events to the pump call that triggered
/// them. See [`current_call`].
pub fn call_scope<R>(call: CallId, f: impl FnOnce() -> R) -> R {
    CURRENT_CALL.with(|c| {
        let prev = c.replace(Some(call));
        let out = f();
        c.set(prev);
        out
    })
}

/// The call the current thread is executing on behalf of, if any — set
/// by the pump around `SearchService::execute` via [`call_scope`].
/// Decorators invoked outside a pump launch (e.g. the blocking EVScan
/// path) see `None` and skip their trace events; their counters still
/// count.
pub fn current_call() -> Option<CallId> {
    CURRENT_CALL.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        obs.event(CallId(1), EventKind::Registered);
        obs.event_with(CallId(1), EventKind::Failed, || {
            panic!("label closure must not run when disabled")
        });
        assert!(obs.metrics().is_none());
        assert!(obs.trace_events_since(0).is_empty());
        assert_eq!(obs.prometheus_text(), "");
        assert_eq!(obs.json_snapshot(), "{}");
        assert_eq!(format!("{obs:?}"), "Obs(disabled)");
    }

    #[test]
    fn enabled_records_events_and_metrics() {
        let obs = Obs::enabled();
        obs.event_with(CallId(7), EventKind::Registered, || "r".into());
        obs.event(CallId(7), EventKind::Launched);
        let m = obs.metrics().unwrap();
        m.calls_registered.inc();
        m.in_flight.add(1);
        let events = obs.trace_events_since(0);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].label.as_deref(), Some("r"));
        assert!(events[1].at >= events[0].at);
        let text = obs.prometheus_text();
        assert!(text.contains("wsq_calls_registered_total 1"));
        assert!(text.contains("wsq_calls_in_flight 1"));
        assert!(text.contains("wsq_trace_dropped_total 0"));
        let json = obs.json_snapshot();
        assert!(json.contains("\"wsq_calls_registered_total\":1"));
        assert!(json.contains("\"trace\":{\"recorded\":2"));
    }

    #[test]
    fn prometheus_histogram_buckets_are_cumulative() {
        let obs = Obs::enabled();
        let m = obs.metrics().unwrap();
        m.call_latency.observe(Duration::from_micros(40));
        m.call_latency.observe(Duration::from_millis(2));
        let text = obs.prometheus_text();
        assert!(text.contains("wsq_call_latency_seconds_bucket{le=\"0.00005\"} 1"));
        assert!(text.contains("wsq_call_latency_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("wsq_call_latency_seconds_count 2"));
    }

    #[test]
    fn call_scope_nests_and_restores() {
        assert_eq!(current_call(), None);
        call_scope(CallId(1), || {
            assert_eq!(current_call(), Some(CallId(1)));
            call_scope(CallId(2), || assert_eq!(current_call(), Some(CallId(2))));
            assert_eq!(current_call(), Some(CallId(1)));
        });
        assert_eq!(current_call(), None);
    }
}
