//! The metrics registry: atomic counters, gauges with high-water marks,
//! and fixed-bucket latency histograms.
//!
//! Hot paths never take a lock: every instrument is a handful of atomics
//! behind an `Arc`, and emitters hold the `Arc` directly (the registry
//! map is only locked at registration and exposition time). Histograms
//! use a fixed logarithmic bucket ladder ([`BUCKET_BOUNDS_US`]) so an
//! `observe` is one array index plus three `fetch_add`s, and snapshots
//! of two points in time can be subtracted to get an exact per-window
//! distribution (see [`HistogramSnapshot::delta`]).

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous value (in-flight calls, queue depth, buffer
/// occupancy) that additionally tracks its high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    high: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Add `delta` (may be negative) and update the high-water mark.
    pub fn add(&self, delta: i64) {
        let v = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.high.fetch_max(v, Ordering::Relaxed);
    }

    /// Set the gauge to `v` outright (still tracks the high-water mark).
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.high.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest value seen since construction or the last
    /// [`Gauge::reset_high_water`].
    pub fn high_water(&self) -> i64 {
        self.high.load(Ordering::Relaxed)
    }

    /// Reset the high-water mark to the current value, returning the old
    /// mark. Used to scope "max concurrent" readings to one query; with
    /// overlapping queries the mark is shared (documented in DESIGN §10).
    pub fn reset_high_water(&self) -> i64 {
        self.high
            .swap(self.value.load(Ordering::Relaxed), Ordering::Relaxed)
    }
}

/// Histogram bucket upper bounds in **microseconds** (a logarithmic
/// 1–2.5–5 ladder from 50µs to 5s). Values above the last bound land in
/// the overflow bucket, so there are `BUCKET_BOUNDS_US.len() + 1`
/// buckets in total.
pub const BUCKET_BOUNDS_US: [u64; 16] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000,
];

/// Total number of buckets, including the overflow bucket.
pub const BUCKET_COUNT: usize = BUCKET_BOUNDS_US.len() + 1;

/// The bucket index a duration falls into.
pub fn bucket_index(d: Duration) -> usize {
    let us = d.as_micros() as u64;
    BUCKET_BOUNDS_US
        .iter()
        .position(|&b| us <= b)
        .unwrap_or(BUCKET_BOUNDS_US.len())
}

/// A fixed-bucket latency histogram with atomic cells.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one duration.
    pub fn observe(&self, d: Duration) {
        let nanos = d.as_nanos() as u64;
        self.buckets[bucket_index(d)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// A point-in-time copy of the cells.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A frozen copy of a [`Histogram`]'s cells; supports window arithmetic
/// and quantile estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts ([`BUCKET_COUNT`] cells; the last is
    /// the overflow bucket).
    pub buckets: [u64; BUCKET_COUNT],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed durations, in nanoseconds.
    pub sum_nanos: u64,
    /// Largest single observation, in nanoseconds. **Not** window-scoped:
    /// [`HistogramSnapshot::delta`] keeps the later snapshot's lifetime
    /// maximum (bucket cells, count and sum are exact per window).
    pub max_nanos: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKET_COUNT],
            count: 0,
            sum_nanos: 0,
            max_nanos: 0,
        }
    }

    /// The observations recorded between `earlier` and `self` (cells are
    /// monotone, so plain subtraction is exact; `max_nanos` is carried
    /// from `self` — see the field docs).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
            count: self.count.saturating_sub(earlier.count),
            sum_nanos: self.sum_nanos.saturating_sub(earlier.sum_nanos),
            max_nanos: self.max_nanos,
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the bucket containing the target rank. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= target {
                let lo = if i == 0 { 0 } else { BUCKET_BOUNDS_US[i - 1] };
                let hi = BUCKET_BOUNDS_US.get(i).copied().unwrap_or_else(|| {
                    // Overflow bucket: bound it by the observed maximum.
                    (self.max_nanos / 1_000).max(lo)
                });
                let frac = (target - seen) as f64 / n as f64;
                let us = lo as f64 + (hi.saturating_sub(lo)) as f64 * frac;
                return Some(Duration::from_nanos((us * 1_000.0) as u64));
            }
            seen += n;
        }
        Some(Duration::from_nanos(self.max_nanos))
    }

    /// Mean observation, `None` when empty.
    pub fn mean(&self) -> Option<Duration> {
        self.sum_nanos
            .checked_div(self.count)
            .map(Duration::from_nanos)
    }
}

/// One registered instrument (for exposition walks).
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotone counter.
    Counter(Arc<Counter>),
    /// An instantaneous gauge.
    Gauge(Arc<Gauge>),
    /// A latency histogram.
    Histogram(Arc<Histogram>),
}

/// A named, documented instrument as stored in the registry.
#[derive(Debug, Clone)]
pub struct Registered {
    /// Exposition name (Prometheus conventions, e.g.
    /// `wsq_calls_launched_total`).
    pub name: &'static str,
    /// One-line help string.
    pub help: &'static str,
    /// The instrument itself.
    pub metric: Metric,
}

/// The registry: name → instrument. Locked only at registration and
/// exposition time; emitters keep `Arc` handles to the instruments.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<&'static str, Registered>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register (or fetch) a counter under `name`.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        let mut map = self.metrics.lock();
        let entry = map.entry(name).or_insert_with(|| Registered {
            name,
            help,
            metric: Metric::Counter(Arc::new(Counter::new())),
        });
        match &entry.metric {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} registered with a different type"),
        }
    }

    /// Register (or fetch) a gauge under `name`.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        let mut map = self.metrics.lock();
        let entry = map.entry(name).or_insert_with(|| Registered {
            name,
            help,
            metric: Metric::Gauge(Arc::new(Gauge::new())),
        });
        match &entry.metric {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} registered with a different type"),
        }
    }

    /// Register (or fetch) a histogram under `name`.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        let mut map = self.metrics.lock();
        let entry = map.entry(name).or_insert_with(|| Registered {
            name,
            help,
            metric: Metric::Histogram(Arc::new(Histogram::new())),
        });
        match &entry.metric {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} registered with a different type"),
        }
    }

    /// All registered instruments, name-ordered.
    pub fn list(&self) -> Vec<Registered> {
        self.metrics.lock().values().cloned().collect()
    }
}

/// Direct handles to every well-known instrument, pre-registered by
/// [`crate::Obs::enabled`] so hot paths never touch the registry map.
#[derive(Debug)]
pub struct WellKnown {
    /// External calls registered with the pump (incl. coalesced).
    pub calls_registered: Arc<Counter>,
    /// Registrations satisfied by attaching to an in-flight call.
    pub calls_coalesced: Arc<Counter>,
    /// Calls actually launched to a service.
    pub calls_launched: Arc<Counter>,
    /// Calls completed successfully.
    pub calls_completed: Arc<Counter>,
    /// Calls completed with an error.
    pub calls_failed: Arc<Counter>,
    /// Calls cancelled while still queued (released before launch).
    pub calls_cancelled: Arc<Counter>,
    /// Result-cache hits (ready entries plus coalesced followers).
    pub cache_hits: Arc<Counter>,
    /// Result-cache misses (inner-service invocations).
    pub cache_misses: Arc<Counter>,
    /// Cache followers that waited on an in-flight identical miss.
    pub cache_coalesced: Arc<Counter>,
    /// Retry attempts beyond the first (RetryService).
    pub retries: Arc<Counter>,
    /// Requests failed by injection (FlakyService).
    pub flaky_failures: Arc<Counter>,
    /// Placeholder tuples emitted by AEVScan operators.
    pub placeholder_tuples: Arc<Counter>,
    /// Buffered tuples patched with completed-call values by ReqSync.
    pub tuples_patched: Arc<Counter>,
    /// Buffered tuples cancelled by an empty external result.
    pub tuples_cancelled: Arc<Counter>,
    /// Queries executed through the facade.
    pub queries: Arc<Counter>,
    /// Calls currently in flight (gauge; high-water = max concurrency).
    pub in_flight: Arc<Gauge>,
    /// Calls waiting for launch capacity.
    pub queue_depth: Arc<Gauge>,
    /// Incomplete tuples buffered across live ReqSync operators.
    pub reqsync_buffered: Arc<Gauge>,
    /// Admission-control stalls: times a capped ReqSync stopped pulling
    /// from its child because its buffer was full.
    pub reqsync_stalls: Arc<Counter>,
    /// External calls registered ahead of demand by a prefetching scan.
    pub prefetch_issued: Arc<Counter>,
    /// Prefetched calls whose tuple was never consumed (released on
    /// close/error without being demanded).
    pub prefetch_wasted: Arc<Counter>,
    /// Launch → completion latency per call.
    pub call_latency: Arc<Histogram>,
    /// Registration → launch delay per call (capacity wait).
    pub queue_delay: Arc<Histogram>,
    /// Tuple admission → patch delay in ReqSync.
    pub patch_delay: Arc<Histogram>,
    /// Time a capped ReqSync spent stalled (stall → resume) per stall.
    pub stall_duration: Arc<Histogram>,
    /// End-to-end wall time per query.
    pub query_latency: Arc<Histogram>,
    /// Submission-window fill: a windowed dispatch of n requests records
    /// an observation of n **milliseconds** (the latency bucket ladder
    /// doubling as a size ladder; count = number of windowed dispatches).
    pub batch_size: Arc<Histogram>,
}

impl WellKnown {
    /// Register every well-known instrument in `registry` and return the
    /// handle set.
    pub fn register(registry: &Registry) -> WellKnown {
        WellKnown {
            calls_registered: registry.counter(
                "wsq_calls_registered_total",
                "External calls registered with the pump (incl. coalesced)",
            ),
            calls_coalesced: registry.counter(
                "wsq_calls_coalesced_total",
                "Registrations satisfied by attaching to an in-flight call",
            ),
            calls_launched: registry.counter(
                "wsq_calls_launched_total",
                "Calls actually launched to a service",
            ),
            calls_completed: registry
                .counter("wsq_calls_completed_total", "Calls completed successfully"),
            calls_failed: registry
                .counter("wsq_calls_failed_total", "Calls completed with an error"),
            calls_cancelled: registry.counter(
                "wsq_calls_cancelled_total",
                "Calls cancelled while still queued",
            ),
            cache_hits: registry.counter("wsq_cache_hits_total", "Result-cache hits"),
            cache_misses: registry.counter(
                "wsq_cache_misses_total",
                "Result-cache misses (inner-service invocations)",
            ),
            cache_coalesced: registry.counter(
                "wsq_cache_coalesced_total",
                "Cache followers that waited on an in-flight identical miss",
            ),
            retries: registry.counter(
                "wsq_retries_total",
                "Retry attempts beyond the first (RetryService)",
            ),
            flaky_failures: registry.counter(
                "wsq_flaky_failures_total",
                "Requests failed by injection (FlakyService)",
            ),
            placeholder_tuples: registry.counter(
                "wsq_placeholder_tuples_total",
                "Placeholder tuples emitted by AEVScan operators",
            ),
            tuples_patched: registry.counter(
                "wsq_tuples_patched_total",
                "Buffered tuples patched with completed-call values",
            ),
            tuples_cancelled: registry.counter(
                "wsq_tuples_cancelled_total",
                "Buffered tuples cancelled by an empty external result",
            ),
            queries: registry.counter("wsq_queries_total", "Queries executed through the facade"),
            in_flight: registry.gauge(
                "wsq_calls_in_flight",
                "Calls currently in flight (high-water = max concurrency)",
            ),
            queue_depth: registry.gauge("wsq_queue_depth", "Calls waiting for launch capacity"),
            reqsync_buffered: registry.gauge(
                "wsq_reqsync_buffered",
                "Incomplete tuples buffered across live ReqSync operators",
            ),
            reqsync_stalls: registry.counter(
                "wsq_reqsync_stalls_total",
                "Times a capped ReqSync stopped pulling because its buffer was full",
            ),
            prefetch_issued: registry.counter(
                "wsq_prefetch_issued_total",
                "External calls registered ahead of demand by a prefetching scan",
            ),
            prefetch_wasted: registry.counter(
                "wsq_prefetch_wasted_total",
                "Prefetched calls whose tuple was cancelled or never consumed",
            ),
            call_latency: registry.histogram(
                "wsq_call_latency_seconds",
                "Launch-to-completion latency per external call",
            ),
            queue_delay: registry.histogram(
                "wsq_queue_delay_seconds",
                "Registration-to-launch delay per external call",
            ),
            patch_delay: registry.histogram(
                "wsq_patch_delay_seconds",
                "Tuple admission-to-patch delay in ReqSync",
            ),
            stall_duration: registry.histogram(
                "wsq_reqsync_stall_seconds",
                "Time a capped ReqSync spent stalled (stall to resume)",
            ),
            query_latency: registry.histogram(
                "wsq_query_latency_seconds",
                "End-to-end wall time per query",
            ),
            batch_size: registry.histogram(
                "wsq_batch_size",
                "Submission-window fill per windowed dispatch (recorded as n milliseconds)",
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.add(3);
        g.add(2);
        g.add(-4);
        assert_eq!(g.get(), 1);
        assert_eq!(g.high_water(), 5);
        assert_eq!(g.reset_high_water(), 5);
        assert_eq!(g.high_water(), 1);
        g.set(7);
        assert_eq!(g.high_water(), 7);
    }

    #[test]
    fn bucket_index_ladder() {
        assert_eq!(bucket_index(Duration::ZERO), 0);
        assert_eq!(bucket_index(Duration::from_micros(50)), 0);
        assert_eq!(bucket_index(Duration::from_micros(51)), 1);
        assert_eq!(bucket_index(Duration::from_millis(1)), 4);
        assert_eq!(bucket_index(Duration::from_secs(5)), BUCKET_COUNT - 2);
        assert_eq!(bucket_index(Duration::from_secs(60)), BUCKET_COUNT - 1);
    }

    #[test]
    fn histogram_records_exactly() {
        let h = Histogram::new();
        h.observe(Duration::from_micros(40)); // bucket 0
        h.observe(Duration::from_millis(2)); // (1ms, 2.5ms] = bucket 5
        h.observe(Duration::from_millis(2)); // bucket 5
        h.observe(Duration::from_secs(30)); // overflow
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[5], 2);
        assert_eq!(s.buckets[BUCKET_COUNT - 1], 1);
        assert_eq!(
            s.sum_nanos,
            Duration::from_micros(40).as_nanos() as u64
                + 2 * Duration::from_millis(2).as_nanos() as u64
                + Duration::from_secs(30).as_nanos() as u64
        );
        assert_eq!(s.max_nanos, Duration::from_secs(30).as_nanos() as u64);
    }

    #[test]
    fn snapshot_delta_is_exact_per_window() {
        let h = Histogram::new();
        h.observe(Duration::from_millis(1));
        let before = h.snapshot();
        h.observe(Duration::from_millis(20));
        h.observe(Duration::from_millis(20));
        let window = h.snapshot().delta(&before);
        assert_eq!(window.count, 2);
        assert_eq!(window.buckets[bucket_index(Duration::from_millis(20))], 2);
        assert_eq!(
            window.sum_nanos,
            2 * Duration::from_millis(20).as_nanos() as u64
        );
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.observe(Duration::from_millis(2)); // (1, 2.5]ms bucket
        }
        h.observe(Duration::from_millis(400)); // (250, 500]ms bucket
        let s = h.snapshot();
        let p50 = s.quantile(0.5).unwrap();
        assert!(p50 > Duration::from_millis(1) && p50 <= Duration::from_millis(2500));
        let p99 = s.quantile(0.99).unwrap();
        assert!(p99 <= Duration::from_millis(2500));
        let p100 = s.quantile(1.0).unwrap();
        assert!(p100 > Duration::from_millis(250));
        assert!(HistogramSnapshot::empty().quantile(0.5).is_none());
    }

    #[test]
    fn registry_returns_same_instrument_for_same_name() {
        let r = Registry::new();
        let a = r.counter("x_total", "x");
        let b = r.counter("x_total", "x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(r.list().len(), 1);
        r.gauge("g", "g");
        r.histogram("h_seconds", "h");
        assert_eq!(r.list().len(), 3);
    }

    #[test]
    fn well_known_registers_all_instruments() {
        let r = Registry::new();
        let w = WellKnown::register(&r);
        w.calls_registered.inc();
        assert!(r.list().len() >= 20);
        let names: Vec<&str> = r.list().iter().map(|m| m.name).collect();
        assert!(names.contains(&"wsq_call_latency_seconds"));
        assert!(names.contains(&"wsq_calls_in_flight"));
    }
}
