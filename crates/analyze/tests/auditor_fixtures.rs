//! Golden-fixture suite for the concurrency auditor.
//!
//! Each fixture under `tests/fixtures/` seeds exactly one class of
//! defect (or none, for `clean.rs`); the tests pin the auditor's exact
//! findings — rule, function, and line number — so any behaviour drift
//! in the token pass shows up as a diff here, not as silent laxity.

use wsq_analyze::conc::{audit_sources, AuditConfig, ConcFinding, ConcRule};

fn audit(name: &str, src: &str) -> Vec<ConcFinding> {
    audit_sources(
        &[(name.to_string(), src.to_string())],
        &AuditConfig::default(),
    )
}

#[test]
fn seeded_lock_order_cycle_is_reported_with_both_chains() {
    let got = audit("lock_cycle.rs", include_str!("fixtures/lock_cycle.rs"));
    assert_eq!(got.len(), 1, "exactly the seeded cycle: {got:#?}");
    let f = &got[0];
    assert_eq!(f.rule, ConcRule::LockOrderCycle);
    assert_eq!(f.function, "submit");
    assert_eq!(f.line, 10, "anchored at the call that closes the chain");
    // The report names both directions and the mediating call chain.
    assert!(
        f.detail.contains("`queue`") && f.detail.contains("`stats`"),
        "{f}"
    );
    assert!(f.detail.contains("flush_inner"), "witness chain named: {f}");
    assert!(
        f.detail.contains("report"),
        "reverse edge's function named: {f}"
    );
}

#[test]
fn seeded_naked_condvar_wait_is_reported() {
    let got = audit("naked_wait.rs", include_str!("fixtures/naked_wait.rs"));
    assert_eq!(got.len(), 1, "only the un-looped wait: {got:#?}");
    let f = &got[0];
    assert_eq!(f.rule, ConcRule::NakedCondvarWait);
    assert_eq!((f.function.as_str(), f.line), ("sleep_bad", 16));
}

#[test]
fn seeded_blocking_call_under_if_let_guard_is_reported() {
    let got = audit(
        "blocking_if_let.rs",
        include_str!("fixtures/blocking_if_let.rs"),
    );
    assert_eq!(got.len(), 1, "only the guarded call: {got:#?}");
    let f = &got[0];
    assert_eq!(f.rule, ConcRule::BlockingUnderGuard);
    assert_eq!((f.function.as_str(), f.line), ("dispatch", 10));
    assert!(f.detail.contains("`state`"), "{f}");
}

#[test]
fn seeded_helper_returned_guard_is_reported() {
    let got = audit("helper_guard.rs", include_str!("fixtures/helper_guard.rs"));
    assert_eq!(got.len(), 1, "only the pump wait under the guard: {got:#?}");
    let f = &got[0];
    assert_eq!(f.rule, ConcRule::BlockingUnderGuard);
    assert_eq!((f.function.as_str(), f.line), ("drain", 15));
    assert!(
        f.detail.contains("wait_any") && f.detail.contains("`buf`"),
        "{f}"
    );
}

#[test]
fn clean_fixture_has_zero_findings() {
    let got = audit("clean.rs", include_str!("fixtures/clean.rs"));
    assert!(got.is_empty(), "false positives on clean idioms: {got:#?}");
}

#[test]
fn findings_are_stable_across_a_combined_scan() {
    // Auditing all fixtures as one unit (shared call graph) must not
    // invent cross-file findings or lose per-file ones.
    let files: Vec<(String, String)> = vec![
        (
            "lock_cycle.rs".into(),
            include_str!("fixtures/lock_cycle.rs").into(),
        ),
        (
            "naked_wait.rs".into(),
            include_str!("fixtures/naked_wait.rs").into(),
        ),
        (
            "blocking_if_let.rs".into(),
            include_str!("fixtures/blocking_if_let.rs").into(),
        ),
        (
            "helper_guard.rs".into(),
            include_str!("fixtures/helper_guard.rs").into(),
        ),
        ("clean.rs".into(), include_str!("fixtures/clean.rs").into()),
    ];
    let got = audit_sources(&files, &AuditConfig::default());
    assert_eq!(got.len(), 4, "{got:#?}");
    let mut rules: Vec<&str> = got.iter().map(|f| f.rule.name()).collect();
    rules.sort();
    assert_eq!(
        rules,
        [
            "blocking-under-guard",
            "blocking-under-guard",
            "lock-order-cycle",
            "naked-condvar-wait",
        ]
    );
}
