// Seeded defect: a guard returned from a helper function held across a
// blocking pump wait (line 15) — invisible to any `let … = x.lock();`
// pattern match.

struct Sync;

impl Sync {
    fn buffer(&self) -> MutexGuard<'_, Buffer> {
        self.inner.lock()
    }

    fn drain(&self, pending: &[CallId]) {
        let buf = self.buffer();
        buf.compact();
        self.pump.wait_any(pending);
    }
}
