// Seeded defect: lock-acquisition-order cycle across a call chain.
// `submit` takes `queue` then calls `flush_inner`, which takes `stats`;
// `report` takes `stats` then `queue` directly. queue -> stats -> queue.

struct Pump;

impl Pump {
    fn submit(&self) {
        let q = self.queue.lock();
        self.flush_inner();
        drop(q);
    }

    fn flush_inner(&self) {
        let s = self.stats.lock();
        s.touch();
    }

    fn report(&self) {
        let s = self.stats.lock();
        let q = self.queue.lock();
        q.len() + s.total()
    }
}
