// Seeded defect: a backend call under an `if let`-bound lock guard
// (line 10) — the idiom the old line-based lint admitted it could not
// see. The call after the block (line 13) is fine.

struct Engine;

impl Engine {
    fn dispatch(&self, req: &Request) {
        if let Ok(state) = self.state.lock() {
            self.service.execute(req);
            state.touch();
        }
        self.service.execute(req);
    }
}
