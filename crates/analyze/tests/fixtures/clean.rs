// Clean fixture: every idiom here is fine and must produce zero
// findings — early drop, scoped guards, shadowing, statement
// temporaries released at the semicolon, `let _ =` immediate drop,
// separator/schema `join(…)` calls, and a properly looped condvar wait.

struct Clean;

impl Clean {
    fn early_drop(&self, req: &Request) {
        let st = self.state.lock();
        st.touch();
        drop(st);
        self.service.execute(req);
    }

    fn scoped(&self, req: &Request) {
        let prepared = {
            let st = self.state.lock();
            st.peek()
        };
        self.service.execute(&prepared);
    }

    fn shadowed(&self, req: &Request) {
        let g = self.a.lock();
        let g = g.upgrade();
        drop(g);
        self.service.execute(req);
    }

    fn temp_released(&self, req: &Request) {
        let service = self.services.read().get(name).cloned();
        service.execute(req);
    }

    fn underscore_drops_now(&self, req: &Request) {
        let _ = self.state.lock();
        self.service.execute(req);
    }

    fn joins_that_do_not_block(&self) {
        let g = self.state.lock();
        let s = parts.join(", ");
        let schema = left.join(right);
        g.store(s, schema);
    }

    fn looped_wait(&self) {
        let mut slot = self.slot.lock();
        loop {
            if let Some(v) = slot.take() {
                return v;
            }
            self.cv.wait(&mut slot);
        }
    }

    fn consistent_order(&self) {
        let q = self.queue.lock();
        let s = self.stats.lock();
        q.len() + s.total()
    }

    fn also_consistent(&self) {
        let q = self.queue.lock();
        let s = self.stats.lock();
        s.record(q.len());
    }
}
