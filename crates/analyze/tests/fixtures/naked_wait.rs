// Seeded defect: a condvar wait with no predicate re-check loop (line
// 16). The waiter in `sleep_ok` is correct and must not be flagged.

struct Waiter;

impl Waiter {
    fn sleep_ok(&self) {
        let mut slot = self.slot.lock();
        while slot.is_none() {
            self.cv.wait(&mut slot);
        }
    }

    fn sleep_bad(&self) {
        let mut slot = self.slot.lock();
        self.cv.wait(&mut slot);
        slot.take()
    }
}
