//! Mutation harness: proves the placeholder-dataflow verifier has teeth.
//!
//! Strategy: build a family of representative plans, run them through the
//! real `asyncify` transformation, and check the verifier accepts every
//! emitted plan. Then corrupt each verified plan with every applicable
//! [`Mutation`] (one corruption class per verifier rule) and assert the
//! verifier rejects **every** corrupted plan — and that each class
//! triggers the specific rule it was designed to break at least once.

use wsq_analyze::{apply_mutation, verify_async, verify_bounds, Mutation, Rule, ALL_MUTATIONS};
use wsq_common::{Column, DataType, Schema};
use wsq_engine::asyncify;
use wsq_engine::asyncify::asyncify_with_opts;
use wsq_engine::plan::{
    BufferMode, EvBinding, EvSpec, PhysPlan, PlacementStrategy, PrefetchHint, VTableKind,
};
use wsq_sql::ast::{BinOp, ColumnRef, Expr, Literal};

fn states_scan() -> PhysPlan {
    PhysPlan::SeqScan {
        table: "States".to_string(),
        alias: "States".to_string(),
        schema: Schema::new(vec![
            Column::qualified("States", "Name", DataType::Varchar),
            Column::qualified("States", "Population", DataType::Int),
        ]),
    }
}

fn spec(alias: &str, kind: VTableKind) -> EvSpec {
    EvSpec {
        kind,
        engine: "AV".into(),
        alias: alias.to_string(),
        template: None,
        bindings: vec![EvBinding::Column(ColumnRef {
            qualifier: Some("States".into()),
            name: "Name".into(),
        })],
        rank_limit: 3,
        supports_near: true,
        prefetch: PrefetchHint::default(),
    }
}

fn dj(left: PhysPlan, spec: EvSpec) -> PhysPlan {
    PhysPlan::DependentJoin {
        left: Box::new(left),
        right: Box::new(PhysPlan::EVScan(spec)),
    }
}

fn col(qualifier: &str, name: &str) -> Expr {
    Expr::Column(ColumnRef {
        qualifier: Some(qualifier.to_string()),
        name: name.to_string(),
    })
}

/// The base plan family: (name, logical plan). Shapes chosen so that
/// every corruption class has at least one applicable site after
/// asyncification.
fn bases() -> Vec<(&'static str, PhysPlan)> {
    let simple = dj(states_scan(), spec("V1", VTableKind::WebCount));
    let pages = dj(states_scan(), spec("V1", VTableKind::WebPages));
    let carried = PhysPlan::Filter {
        predicate: Expr::binary(
            BinOp::NotEq,
            col("V1", "Count"),
            Expr::Literal(Literal::Int(0)),
        ),
        input: Box::new(dj(states_scan(), spec("V1", VTableKind::WebCount))),
    };
    let sorted = PhysPlan::Sort {
        keys: vec![(col("States", "Name"), true)],
        input: Box::new(dj(states_scan(), spec("V1", VTableKind::WebCount))),
    };
    let nested = dj(
        dj(states_scan(), spec("V1", VTableKind::WebCount)),
        spec("V2", VTableKind::WebCount),
    );
    let projected = PhysPlan::Project {
        items: vec![
            (col("States", "Name"), "Name".to_string()),
            (col("V1", "Count"), "Count".to_string()),
        ],
        schema: Schema::new(vec![
            Column::new("Name", DataType::Varchar),
            Column::new("Count", DataType::Int),
        ]),
        input: Box::new(dj(states_scan(), spec("V1", VTableKind::WebCount))),
    };
    vec![
        ("simple", simple),
        ("pages", pages),
        ("carried-filter", carried),
        ("sorted", sorted),
        ("nested", nested),
        ("projected", projected),
    ]
}

/// The rule each corruption class is designed to trip. A corrupted plan
/// may violate additional rules, but across the base family each class
/// must trigger its own rule at least once.
fn expected_rule(m: Mutation) -> Rule {
    match m {
        Mutation::DropReqSync => Rule::UncoveredAtRoot,
        Mutation::StripSyncAttr => Rule::UncoveredAtRoot,
        Mutation::DuplicateReqSync => Rule::AdjacentReqSync,
        Mutation::SinkCarriedFilter => Rule::ReadsPlaceholder,
        Mutation::HoistSortBelowSync => Rule::OrderSensitive,
        Mutation::AggregateBelowSync => Rule::OrderSensitive,
        Mutation::DistinctBelowSync => Rule::OrderSensitive,
        Mutation::LimitBelowSync => Rule::OrderSensitive,
        Mutation::ProjectAwayPlaceholder => Rule::DropsPlaceholder,
        Mutation::ComputeOverPlaceholder => Rule::ReadsPlaceholder,
        Mutation::BindToPlaceholder => Rule::BindingReadsPlaceholder,
        Mutation::DesyncScan => Rule::SyncScanInAsyncPlan,
        Mutation::ForgePrefetchDepth => Rule::PrefetchExceedsCap,
        Mutation::DropStampedCap => Rule::CapDropped,
    }
}

#[test]
fn at_least_ten_corruption_classes() {
    assert!(
        ALL_MUTATIONS.len() >= 10,
        "the issue requires >= 10 corruption classes, have {}",
        ALL_MUTATIONS.len()
    );
}

#[test]
fn asyncified_bases_verify_clean() {
    for (name, plan) in bases() {
        for strategy in [PlacementStrategy::Full, PlacementStrategy::InsertionOnly] {
            let out = asyncify(plan.clone(), strategy, BufferMode::Full);
            if let Err(e) = verify_async(&out) {
                panic!("base '{name}' ({strategy:?}) rejected:\n{e}\nplan:\n{out}");
            }
        }
    }
}

#[test]
fn every_mutation_class_is_rejected() {
    let asyncified: Vec<(&str, PhysPlan)> = bases()
        .into_iter()
        .map(|(name, plan)| {
            (
                name,
                asyncify(plan, PlacementStrategy::Full, BufferMode::Full),
            )
        })
        .collect();

    for &m in ALL_MUTATIONS {
        // cap-dropped is relative to the *session's declared* cap, which
        // `verify_async` alone cannot know; it has its own harness below
        // (`resource_bound_mutations_fail_against_the_declared_cap`).
        if m == Mutation::DropStampedCap {
            continue;
        }
        let mut applied = 0usize;
        let mut hit_expected = false;
        for (name, plan) in &asyncified {
            let Some(mutated) = apply_mutation(plan, m) else {
                continue;
            };
            applied += 1;
            assert_ne!(
                &mutated, plan,
                "mutation {m:?} on base '{name}' produced an identical plan"
            );
            match verify_async(&mutated) {
                Ok(report) => panic!(
                    "verifier ACCEPTED corrupted plan ({m:?} on base '{name}', {report}):\n{mutated}"
                ),
                Err(e) => {
                    if e.violations.iter().any(|v| v.rule == expected_rule(m)) {
                        hit_expected = true;
                    }
                }
            }
        }
        assert!(
            applied >= 1,
            "mutation {m:?} applied to no base plan — dead corruption class"
        );
        assert!(
            hit_expected,
            "mutation {m:?} never triggered its target rule {:?}",
            expected_rule(m)
        );
    }
}

/// The resource-bound rules, exercised against plans stamped under a
/// declared session cap: forging a prefetch depth above the cap trips
/// `prefetch-exceeds-cap`, erasing a stamped cap trips `cap-dropped`.
#[test]
fn resource_bound_mutations_fail_against_the_declared_cap() {
    const DECLARED: usize = 6;
    let hint = PrefetchHint {
        depth: 4,
        window: 1,
        adaptive: false,
    };
    let mut applied = [0usize; 2];
    for (name, plan) in bases() {
        let stamped = asyncify_with_opts(
            plan,
            PlacementStrategy::Full,
            BufferMode::Full,
            Some(DECLARED),
            hint,
        );
        let bounds = verify_bounds(&stamped, Some(DECLARED))
            .unwrap_or_else(|e| panic!("stamped base '{name}' fails bounds:\n{e}"));
        assert!(
            bounds
                .peak_buffered
                .le(wsq_analyze::Bound::Finite(DECLARED as u64)),
            "base '{name}': peak buffered {} above declared cap {DECLARED}",
            bounds.peak_buffered
        );

        if let Some(mutated) = apply_mutation(&stamped, Mutation::ForgePrefetchDepth) {
            applied[0] += 1;
            let err = verify_bounds(&mutated, Some(DECLARED))
                .expect_err("forged prefetch depth must be rejected");
            assert!(
                err.violations
                    .iter()
                    .any(|v| v.rule == Rule::PrefetchExceedsCap),
                "base '{name}': expected prefetch-exceeds-cap, got: {err}"
            );
            // The same forgery is visible without the declared cap: the
            // stamped plan is self-inconsistent, so plain verify_async
            // rejects it too.
            assert!(verify_async(&mutated).is_err());
        }
        if let Some(mutated) = apply_mutation(&stamped, Mutation::DropStampedCap) {
            applied[1] += 1;
            let err = verify_bounds(&mutated, Some(DECLARED))
                .expect_err("dropped stamped cap must be rejected");
            assert!(
                err.violations.iter().any(|v| v.rule == Rule::CapDropped),
                "base '{name}': expected cap-dropped, got: {err}"
            );
        }
    }
    assert!(
        applied[0] >= 1 && applied[1] >= 1,
        "resource-bound mutations must apply to the base family: {applied:?}"
    );
}

/// The verifier catches corruption even when several mutations stack.
#[test]
fn stacked_mutations_still_rejected() {
    let base = asyncify(
        dj(
            dj(states_scan(), spec("V1", VTableKind::WebCount)),
            spec("V2", VTableKind::WebPages),
        ),
        PlacementStrategy::Full,
        BufferMode::Full,
    );
    verify_async(&base).expect("base verifies");

    let mut corrupted = base;
    let mut stacked = 0;
    for &m in &[
        Mutation::StripSyncAttr,
        Mutation::LimitBelowSync,
        Mutation::DesyncScan,
    ] {
        if let Some(next) = apply_mutation(&corrupted, m) {
            corrupted = next;
            stacked += 1;
        }
    }
    assert!(stacked >= 2, "expected at least two stackable mutations");
    let err = verify_async(&corrupted).expect_err("stacked corruption must be rejected");
    assert!(
        err.violations.len() >= 2,
        "stacked corruption should surface multiple violations, got: {err}"
    );
}
