//! Placeholder-dataflow verification of physical plans.
//!
//! The asyncification pass (`wsq_engine::asyncify`) enforces the paper's
//! clash rules (§4.5.2) *by construction*; this module checks them on the
//! **emitted plan**, independently, as a bottom-up abstract interpretation.
//!
//! The abstract domain is the *may-be-placeholder set*: for each operator,
//! the set of output attributes that may still hold `Value::Pending`
//! placeholders when a tuple leaves it. The transfer functions are:
//!
//! - `AEVScan`: its external attributes (`Count`, or `URL`/`Rank`/`Date`).
//! - `ReqSync{attrs}`: input set minus `attrs` (the operator patches the
//!   calls backing those attributes before emitting).
//! - `Project`: placeholder attributes must pass through as plain column
//!   items (renamed to the item's output name); computing over one is
//!   clash case 1, dropping one is clash case 2.
//! - Joins: union of the input sets.
//! - Everything else: identity.
//!
//! The clash checks performed against the incoming set:
//!
//! 1. `Filter` / `NestedLoopJoin` predicates and computed `Project` items
//!    must not read a may-be-placeholder attribute (clash case 1).
//! 2. `Project` must not drop one without a dominating `ReqSync` below
//!    (clash case 2).
//! 3. `Sort` / `Aggregate` / `Distinct` / `Limit` require an empty
//!    incoming set (clash case 3 and its ordering analogue).
//! 4. Dependent-join bindings must not read a may-be-placeholder
//!    attribute of the outer side (percolation's flush rule).
//!
//! Structural rules: the set must be empty at the root (every `AEVScan`
//! dominated by a covering `ReqSync`), and consolidation must have left
//! no directly-adjacent `ReqSync` pair. [`verify_async`] additionally
//! rejects synchronous `EVScan`s, which `asyncify` must have rewritten.
//!
//! **Static resource bounds.** A second bottom-up pass computes, per
//! plan, symbolic peaks over the cardinality domain [`Bound`]
//! (`Finite(n)` or `Unbounded`): the worst-case tuples buffered in any
//! `ReqSync` ([`Bounds::peak_buffered`]), outstanding prefetch
//! references across `AEVScan`s ([`Bounds::prefetch_refs`]), and their
//! sum, the in-flight external-call peak ([`Bounds::peak_inflight`]).
//! Two rules turn the PR-4/PR-6 runtime conventions into checked
//! facts: [`Rule::PrefetchExceedsCap`] (a stamped prefetch depth may
//! never exceed the nearest enclosing ReqSync's admission cap — the
//! clamp in `asyncify` is now verified, not trusted) and
//! [`Rule::CapDropped`] (when the session declared a cap,
//! [`verify_bounds`] proves every ReqSync carries one at least that
//! tight). The bounds ride along in [`Report`] and surface in the
//! `-- verify:` analyze footer.
//!
//! Column matching deliberately mirrors `asyncify`'s own semantics
//! (case-insensitive; an unqualified reference may denote a qualified
//! attribute), so the verifier is exactly as conservative as the
//! transformation it checks.

use std::fmt;
use wsq_engine::plan::{EvBinding, EvSpec, PhysPlan};
use wsq_sql::ast::{ColumnRef, Expr};

/// Which rule a [`Violation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Clash case 1: a predicate or computed expression reads an
    /// attribute that may be a placeholder.
    ReadsPlaceholder,
    /// Clash case 2: a projection drops a may-be-placeholder attribute
    /// with no dominating ReqSync below it.
    DropsPlaceholder,
    /// Clash case 3 (and ordering analogue): Sort/Aggregate/Distinct/
    /// Limit above an unpatched placeholder.
    OrderSensitive,
    /// A dependent-join binding reads a may-be-placeholder attribute of
    /// its outer side.
    BindingReadsPlaceholder,
    /// Placeholders escape the plan root: some AEVScan has no covering
    /// ReqSync above it.
    UncoveredAtRoot,
    /// Consolidation failure: a ReqSync directly above another ReqSync.
    AdjacentReqSync,
    /// A synchronous EVScan survived in an asynchronous plan.
    SyncScanInAsyncPlan,
    /// An AEVScan's stamped prefetch depth exceeds the admission cap of
    /// its nearest enclosing ReqSync: prefetch could outrun the PR-4
    /// stall handshake.
    PrefetchExceedsCap,
    /// The session declared a ReqSync buffer cap, but a ReqSync in the
    /// stamped plan carries none (or a looser one).
    CapDropped,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::ReadsPlaceholder => "reads-placeholder (clash case 1)",
            Rule::DropsPlaceholder => "drops-placeholder (clash case 2)",
            Rule::OrderSensitive => "order-sensitive-over-placeholder (clash case 3)",
            Rule::BindingReadsPlaceholder => "binding-reads-placeholder",
            Rule::UncoveredAtRoot => "uncovered-at-root",
            Rule::AdjacentReqSync => "adjacent-reqsync (consolidation)",
            Rule::SyncScanInAsyncPlan => "sync-scan-in-async-plan",
            Rule::PrefetchExceedsCap => "prefetch-exceeds-cap",
            Rule::CapDropped => "cap-dropped",
        };
        f.write_str(s)
    }
}

/// One rule violation, with the path of operators from the root to the
/// offending node.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The broken rule.
    pub rule: Rule,
    /// Root-to-node operator path, e.g. `root/Sort/ReqSync`.
    pub path: String,
    /// Human-readable specifics (offending attributes, expressions).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}: {}", self.rule, self.path, self.detail)
    }
}

/// Verification failure: every violation found in one pass.
#[derive(Debug, Clone)]
pub struct VerifyError {
    /// All violations, in traversal order.
    pub violations: Vec<Violation>,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan fails placeholder-dataflow verification:")?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

/// A symbolic cardinality / resource bound: a concrete worst case or
/// "no static bound".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// At most this many.
    Finite(u64),
    /// No static bound (e.g. a stored-table scan of unknown size).
    Unbounded,
}

impl Bound {
    /// Saturating sum.
    pub fn plus(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.saturating_add(b)),
            _ => Bound::Unbounded,
        }
    }

    /// Saturating product. `0 × Unbounded = 0`: an empty input produces
    /// no output regardless of the other side.
    pub fn times(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(0), _) | (_, Bound::Finite(0)) => Bound::Finite(0),
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.saturating_mul(b)),
            _ => Bound::Unbounded,
        }
    }

    /// The tighter of the two bounds.
    pub fn min(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.min(b)),
            (Bound::Finite(a), _) | (_, Bound::Finite(a)) => Bound::Finite(a),
            _ => Bound::Unbounded,
        }
    }

    /// The looser of the two bounds.
    pub fn max(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.max(b)),
            _ => Bound::Unbounded,
        }
    }

    /// `self ≤ other` in the bound order (`Unbounded` is the top).
    pub fn le(self, other: Bound) -> bool {
        match (self, other) {
            (_, Bound::Unbounded) => true,
            (Bound::Unbounded, _) => false,
            (Bound::Finite(a), Bound::Finite(b)) => a <= b,
        }
    }
}

impl Default for Bound {
    fn default() -> Self {
        Bound::Finite(0)
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Finite(n) => write!(f, "{n}"),
            Bound::Unbounded => f.write_str("inf"),
        }
    }
}

/// Static resource bounds of a verified plan (see [`verify_bounds`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bounds {
    /// Worst-case tuples buffered in any single ReqSync at once: the
    /// max over ReqSyncs of `min(cap, child cardinality)`.
    pub peak_buffered: Bound,
    /// Worst-case outstanding prefetch references: the sum of stamped
    /// `AEVScan` prefetch depths.
    pub prefetch_refs: Bound,
    /// Worst-case in-flight external calls: buffered peak plus prefetch
    /// references (prefetched calls register ahead of ReqSync demand).
    pub peak_inflight: Bound,
}

impl fmt::Display for Bounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "peak buffered {}, prefetch refs {}, peak in-flight {}",
            self.peak_buffered, self.prefetch_refs, self.peak_inflight
        )
    }
}

/// Statistics from a successful verification (surfaced by
/// `Wsq::explain_verify`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Report {
    /// Plan nodes visited.
    pub nodes: usize,
    /// Asynchronous external scans found.
    pub aev_scans: usize,
    /// ReqSync operators found.
    pub req_syncs: usize,
    /// Largest may-be-placeholder set at any operator (lattice height
    /// actually reached).
    pub max_placeholder_set: usize,
    /// Static resource bounds of the plan.
    pub bounds: Bounds,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "verified {} nodes: {} async scan(s), {} ReqSync(s), max placeholder set {}, {}",
            self.nodes, self.aev_scans, self.req_syncs, self.max_placeholder_set, self.bounds
        )
    }
}

/// Verify a plan that may legitimately contain synchronous `EVScan`s
/// (e.g. `ExecutionMode::Synchronous` output).
///
/// ```
/// use wsq_analyze::verify;
/// use wsq_common::Value;
/// use wsq_engine::plan::{BufferMode, EvBinding, EvSpec, PhysPlan, PrefetchHint, VTableKind};
///
/// // The minimal legal asynchronous plan: an AEVScan producing a
/// // placeholder Count, patched by a covering ReqSync above it.
/// let spec = EvSpec {
///     kind: VTableKind::WebCount,
///     engine: "AV".into(),
///     alias: "WebCount".into(),
///     template: None,
///     bindings: vec![EvBinding::Const(Value::from("Utah"))],
///     rank_limit: 19,
///     supports_near: true,
///     prefetch: PrefetchHint::default(),
/// };
/// let plan = PhysPlan::ReqSync {
///     attrs: spec.external_attrs(),
///     input: Box::new(PhysPlan::AEVScan(spec)),
///     mode: BufferMode::Full,
///     cap: None,
/// };
/// let report = verify(&plan).expect("plan is placeholder-safe");
/// assert_eq!((report.aev_scans, report.req_syncs), (1, 1));
///
/// // Strip the ReqSync and the placeholder escapes the root.
/// let PhysPlan::ReqSync { input: bare, .. } = plan else { unreachable!() };
/// assert!(verify(&bare).is_err());
/// ```
pub fn verify(plan: &PhysPlan) -> Result<Report, VerifyError> {
    verify_inner(plan, false)
}

/// Verify the output of `asyncify`: everything [`verify`] checks, plus
/// no synchronous `EVScan` may remain.
///
/// ```
/// use wsq_analyze::{verify, verify_async, Rule};
/// use wsq_common::Value;
/// use wsq_engine::plan::{EvBinding, EvSpec, PhysPlan, PrefetchHint, VTableKind};
///
/// // A blocking EVScan has no placeholders, so plain `verify` accepts
/// // it — but it must not survive asyncification.
/// let plan = PhysPlan::EVScan(EvSpec {
///     kind: VTableKind::WebCount,
///     engine: "AV".into(),
///     alias: "WebCount".into(),
///     template: None,
///     bindings: vec![EvBinding::Const(Value::from("Utah"))],
///     rank_limit: 19,
///     supports_near: true,
///     prefetch: PrefetchHint::default(),
/// });
/// assert!(verify(&plan).is_ok());
/// let err = verify_async(&plan).unwrap_err();
/// assert_eq!(err.violations[0].rule, Rule::SyncScanInAsyncPlan);
/// ```
pub fn verify_async(plan: &PhysPlan) -> Result<Report, VerifyError> {
    verify_inner(plan, true)
}

fn verify_inner(plan: &PhysPlan, forbid_ev: bool) -> Result<Report, VerifyError> {
    let mut cx = Cx {
        forbid_ev,
        violations: Vec::new(),
        report: Report::default(),
    };
    let escaped = cx.abs(plan, "root");
    if !escaped.is_empty() {
        cx.violations.push(Violation {
            rule: Rule::UncoveredAtRoot,
            path: "root".to_string(),
            detail: format!(
                "placeholder attributes escape the plan: {}",
                fmt_attrs(&escaped)
            ),
        });
    }
    // Resource bounds ride along with every verification; the
    // declared-cap consistency rule needs the session cap and runs in
    // [`verify_bounds`] only.
    let mut bx = BoundsCx {
        declared_cap: None,
        bounds: Bounds::default(),
        violations: Vec::new(),
    };
    bx.card(plan, None, "root");
    bx.finish();
    cx.report.bounds = bx.bounds;
    cx.violations.extend(bx.violations);
    if cx.violations.is_empty() {
        Ok(cx.report)
    } else {
        Err(VerifyError {
            violations: cx.violations,
        })
    }
}

/// Compute the static resource bounds of a plan and prove them
/// consistent with the caps stamped at plan time.
///
/// Checks [`Rule::PrefetchExceedsCap`] (as [`verify`] does) **plus**
/// [`Rule::CapDropped`] against `declared_cap`, the session's
/// `reqsync_cap` at planning time: when `Some(c)`, every ReqSync in the
/// plan must carry a stamped cap `≤ c` — so `peak_buffered ≤ c` is a
/// proven fact, not a runtime convention.
///
/// ```
/// use wsq_analyze::verify::{verify_bounds, Bound};
/// use wsq_common::Value;
/// use wsq_engine::plan::{BufferMode, EvBinding, EvSpec, PhysPlan, PrefetchHint, VTableKind};
///
/// let spec = EvSpec {
///     kind: VTableKind::WebCount,
///     engine: "AV".into(),
///     alias: "WebCount".into(),
///     template: None,
///     bindings: vec![EvBinding::Const(Value::from("Utah"))],
///     rank_limit: 19,
///     supports_near: true,
///     prefetch: PrefetchHint::default(),
/// };
/// let plan = PhysPlan::ReqSync {
///     attrs: spec.external_attrs(),
///     input: Box::new(PhysPlan::AEVScan(spec)),
///     mode: BufferMode::Full,
///     cap: Some(8),
/// };
/// let bounds = verify_bounds(&plan, Some(8)).expect("caps are consistent");
/// assert!(bounds.peak_buffered.le(Bound::Finite(8)));
///
/// // The same plan against a declared cap it does not honour fails.
/// assert!(verify_bounds(&plan, Some(4)).is_err());
/// ```
pub fn verify_bounds(plan: &PhysPlan, declared_cap: Option<usize>) -> Result<Bounds, VerifyError> {
    let mut bx = BoundsCx {
        declared_cap,
        bounds: Bounds::default(),
        violations: Vec::new(),
    };
    bx.card(plan, None, "root");
    bx.finish();
    if bx.violations.is_empty() {
        Ok(bx.bounds)
    } else {
        Err(VerifyError {
            violations: bx.violations,
        })
    }
}

/// Case-insensitive column-reference equality, mirroring `asyncify`: an
/// unqualified reference may denote a qualified attribute.
pub(crate) fn same_ref(a: &ColumnRef, b: &ColumnRef) -> bool {
    if !a.name.eq_ignore_ascii_case(&b.name) {
        return false;
    }
    match (&a.qualifier, &b.qualifier) {
        (Some(x), Some(y)) => x.eq_ignore_ascii_case(y),
        _ => true,
    }
}

pub(crate) fn refs_any(expr: &Expr, attrs: &[ColumnRef]) -> bool {
    expr.columns()
        .iter()
        .any(|c| attrs.iter().any(|a| same_ref(c, a)))
}

fn fmt_attrs(attrs: &[ColumnRef]) -> String {
    attrs
        .iter()
        .map(|a| match &a.qualifier {
            Some(q) => format!("{q}.{}", a.name),
            None => a.name.clone(),
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// The binding spec reachable through the right side of a dependent join
/// (possibly wrapped in Filter/ReqSync), mirroring `asyncify`.
fn spec_of(plan: &PhysPlan) -> Option<&EvSpec> {
    match plan {
        PhysPlan::EVScan(s) | PhysPlan::AEVScan(s) => Some(s),
        PhysPlan::Filter { input, .. } | PhysPlan::ReqSync { input, .. } => spec_of(input),
        _ => None,
    }
}

struct Cx {
    forbid_ev: bool,
    violations: Vec<Violation>,
    report: Report,
}

impl Cx {
    fn push(&mut self, rule: Rule, path: &str, detail: String) {
        self.violations.push(Violation {
            rule,
            path: path.to_string(),
            detail,
        });
    }

    fn check_bindings(&mut self, spec: &EvSpec, outer: &[ColumnRef], path: &str) {
        for b in &spec.bindings {
            if let EvBinding::Column(c) = b {
                if outer.iter().any(|a| same_ref(c, a)) {
                    self.push(
                        Rule::BindingReadsPlaceholder,
                        path,
                        format!(
                            "binding of virtual table '{}' reads may-be-placeholder \
                             attribute {} of the outer side",
                            spec.alias,
                            fmt_attrs(std::slice::from_ref(c)),
                        ),
                    );
                }
            }
        }
    }

    /// The transfer function: may-be-placeholder attribute set of the
    /// operator's output, recording violations along the way.
    fn abs(&mut self, plan: &PhysPlan, path: &str) -> Vec<ColumnRef> {
        self.report.nodes += 1;
        let set = match plan {
            PhysPlan::SeqScan { .. } | PhysPlan::IndexScan { .. } | PhysPlan::Values { .. } => {
                vec![]
            }
            PhysPlan::EVScan(_) => {
                if self.forbid_ev {
                    self.push(
                        Rule::SyncScanInAsyncPlan,
                        path,
                        "synchronous EVScan in an asynchronous plan (asyncify must \
                         rewrite every EVScan to AEVScan)"
                            .to_string(),
                    );
                }
                // A synchronous scan materializes real values.
                vec![]
            }
            PhysPlan::AEVScan(spec) => {
                self.report.aev_scans += 1;
                spec.external_attrs()
            }
            PhysPlan::ReqSync { input, attrs, .. } => {
                self.report.req_syncs += 1;
                if matches!(**input, PhysPlan::ReqSync { .. }) {
                    self.push(
                        Rule::AdjacentReqSync,
                        path,
                        "ReqSync directly above another ReqSync (consolidation should \
                         have merged their attribute sets)"
                            .to_string(),
                    );
                }
                let inner = self.abs(input, &format!("{path}/ReqSync"));
                inner
                    .into_iter()
                    .filter(|a| !attrs.iter().any(|s| same_ref(a, s)))
                    .collect()
            }
            PhysPlan::Filter { input, predicate } => {
                let inner = self.abs(input, &format!("{path}/Filter"));
                if refs_any(predicate, &inner) {
                    self.push(
                        Rule::ReadsPlaceholder,
                        path,
                        format!(
                            "filter predicate reads may-be-placeholder attribute(s) {}",
                            fmt_attrs(&inner)
                        ),
                    );
                }
                inner
            }
            PhysPlan::Project { input, items, .. } => {
                let inner = self.abs(input, &format!("{path}/Project"));
                let mut out = Vec::new();
                for a in &inner {
                    // Clash case 1: an item computes over the attribute.
                    let computed = items.iter().any(|(e, _)| {
                        !matches!(e, Expr::Column(_)) && refs_any(e, std::slice::from_ref(a))
                    });
                    if computed {
                        self.push(
                            Rule::ReadsPlaceholder,
                            path,
                            format!(
                                "projection computes over may-be-placeholder attribute {}",
                                fmt_attrs(std::slice::from_ref(a))
                            ),
                        );
                        continue;
                    }
                    // Pass-through: the attribute flows on under the
                    // item's output name (mirroring asyncify's rename;
                    // first match, as the transformation renames).
                    match items
                        .iter()
                        .find(|(e, _)| matches!(e, Expr::Column(c) if same_ref(c, a)))
                    {
                        Some((_, name)) => out.push(ColumnRef {
                            qualifier: None,
                            name: name.clone(),
                        }),
                        None => self.push(
                            Rule::DropsPlaceholder,
                            path,
                            format!(
                                "projection drops may-be-placeholder attribute {} with \
                                 no dominating ReqSync below",
                                fmt_attrs(std::slice::from_ref(a))
                            ),
                        ),
                    }
                }
                out
            }
            PhysPlan::DependentJoin { left, right } => {
                let l = self.abs(left, &format!("{path}/DependentJoin.left"));
                let r = self.abs(right, &format!("{path}/DependentJoin.right"));
                if let Some(spec) = spec_of(right) {
                    self.check_bindings(spec, &l, path);
                }
                let mut out = l;
                out.extend(r);
                out
            }
            PhysPlan::ParallelDependentJoin { left, spec, .. } => {
                // The parallel join performs and completes its external
                // calls internally: only the outer side's set flows on.
                let l = self.abs(left, &format!("{path}/ParallelDependentJoin.left"));
                self.check_bindings(spec, &l, path);
                l
            }
            PhysPlan::NestedLoopJoin {
                left,
                right,
                predicate,
            } => {
                let l = self.abs(left, &format!("{path}/NestedLoopJoin.left"));
                let r = self.abs(right, &format!("{path}/NestedLoopJoin.right"));
                let mut out = l;
                out.extend(r);
                if refs_any(predicate, &out) {
                    self.push(
                        Rule::ReadsPlaceholder,
                        path,
                        format!(
                            "join predicate reads may-be-placeholder attribute(s) {}",
                            fmt_attrs(&out)
                        ),
                    );
                }
                out
            }
            PhysPlan::CrossProduct { left, right } => {
                let mut out = self.abs(left, &format!("{path}/CrossProduct.left"));
                out.extend(self.abs(right, &format!("{path}/CrossProduct.right")));
                out
            }
            PhysPlan::Sort { input, .. }
            | PhysPlan::Aggregate { input, .. }
            | PhysPlan::Distinct { input }
            | PhysPlan::Limit { input, .. } => {
                let name = match plan {
                    PhysPlan::Sort { .. } => "Sort",
                    PhysPlan::Aggregate { .. } => "Aggregate",
                    PhysPlan::Distinct { .. } => "Distinct",
                    _ => "Limit",
                };
                let inner = self.abs(input, &format!("{path}/{name}"));
                if !inner.is_empty() {
                    self.push(
                        Rule::OrderSensitive,
                        path,
                        format!(
                            "{name} above unpatched placeholder attribute(s) {}",
                            fmt_attrs(&inner)
                        ),
                    );
                    // The operator would block on / misorder placeholders;
                    // report once and treat them as consumed.
                    return vec![];
                }
                inner
            }
        };
        self.report.max_placeholder_set = self.report.max_placeholder_set.max(set.len());
        set
    }
}

/// The resource-bounds pass: a second bottom-up abstract interpretation
/// over the cardinality domain [`Bound`], accumulating the per-plan
/// peaks into [`Bounds`] and checking the cap-consistency rules.
struct BoundsCx {
    declared_cap: Option<usize>,
    bounds: Bounds,
    violations: Vec<Violation>,
}

impl BoundsCx {
    fn push(&mut self, rule: Rule, path: &str, detail: String) {
        self.violations.push(Violation {
            rule,
            path: path.to_string(),
            detail,
        });
    }

    fn finish(&mut self) {
        self.bounds.peak_inflight = self.bounds.peak_buffered.plus(self.bounds.prefetch_refs);
    }

    /// Output-cardinality bound of `plan`. `enclosing_cap` is the
    /// admission cap of the nearest enclosing ReqSync (`None` both for
    /// "no enclosing ReqSync" and for an uncapped one — in either case
    /// there is no admission bound for prefetch to respect).
    fn card(&mut self, plan: &PhysPlan, enclosing_cap: Option<usize>, path: &str) -> Bound {
        match plan {
            PhysPlan::Values { rows, .. } => Bound::Finite(rows.len() as u64),
            PhysPlan::SeqScan { .. } | PhysPlan::IndexScan { .. } => Bound::Unbounded,
            PhysPlan::EVScan(spec) | PhysPlan::AEVScan(spec) => {
                if matches!(plan, PhysPlan::AEVScan(_)) {
                    let depth = spec.prefetch.depth as u64;
                    self.bounds.prefetch_refs =
                        self.bounds.prefetch_refs.plus(Bound::Finite(depth));
                    if let Some(cap) = enclosing_cap {
                        if depth > cap as u64 {
                            self.push(
                                Rule::PrefetchExceedsCap,
                                path,
                                format!(
                                    "AEVScan '{}' stamped prefetch depth {depth} exceeds \
                                     the enclosing ReqSync admission cap {cap}",
                                    spec.alias
                                ),
                            );
                        }
                    }
                }
                match spec.kind {
                    wsq_engine::plan::VTableKind::WebCount => Bound::Finite(1),
                    wsq_engine::plan::VTableKind::WebPages => Bound::Finite(spec.rank_limit as u64),
                }
            }
            PhysPlan::ReqSync { input, cap, .. } => {
                if let (Some(declared), None) = (self.declared_cap, cap) {
                    self.push(
                        Rule::CapDropped,
                        path,
                        format!(
                            "session declared reqsync_cap {declared} but this ReqSync \
                             carries no stamped cap"
                        ),
                    );
                }
                if let (Some(declared), Some(stamped)) = (self.declared_cap, cap) {
                    if *stamped > declared {
                        self.push(
                            Rule::CapDropped,
                            path,
                            format!(
                                "session declared reqsync_cap {declared} but this ReqSync \
                                 is stamped with looser cap {stamped}"
                            ),
                        );
                    }
                }
                let child = self.card(input, *cap, &format!("{path}/ReqSync"));
                let buffered = match cap {
                    // Admit-before-check: high-water == cap exactly.
                    Some(c) => child.min(Bound::Finite(*c as u64)),
                    None => child,
                };
                self.bounds.peak_buffered = self.bounds.peak_buffered.max(buffered);
                child
            }
            PhysPlan::Filter { input, .. }
            | PhysPlan::Project { input, .. }
            | PhysPlan::Distinct { input }
            | PhysPlan::Sort { input, .. } => {
                let name = match plan {
                    PhysPlan::Filter { .. } => "Filter",
                    PhysPlan::Project { .. } => "Project",
                    PhysPlan::Distinct { .. } => "Distinct",
                    _ => "Sort",
                };
                self.card(input, enclosing_cap, &format!("{path}/{name}"))
            }
            PhysPlan::Limit { input, n } => {
                let inner = self.card(input, enclosing_cap, &format!("{path}/Limit"));
                inner.min(Bound::Finite(*n))
            }
            PhysPlan::Aggregate {
                input, group_by, ..
            } => {
                let inner = self.card(input, enclosing_cap, &format!("{path}/Aggregate"));
                if group_by.is_empty() {
                    Bound::Finite(1)
                } else {
                    inner // at most one row per distinct input row
                }
            }
            PhysPlan::DependentJoin { left, right } => {
                let l = self.card(left, enclosing_cap, &format!("{path}/DependentJoin.left"));
                let r = self.card(right, enclosing_cap, &format!("{path}/DependentJoin.right"));
                l.times(r)
            }
            PhysPlan::ParallelDependentJoin { left, spec, .. } => {
                let l = self.card(
                    left,
                    enclosing_cap,
                    &format!("{path}/ParallelDependentJoin.left"),
                );
                let per = match spec.kind {
                    wsq_engine::plan::VTableKind::WebCount => Bound::Finite(1),
                    wsq_engine::plan::VTableKind::WebPages => Bound::Finite(spec.rank_limit as u64),
                };
                l.times(per)
            }
            PhysPlan::NestedLoopJoin { left, right, .. } => {
                let l = self.card(left, enclosing_cap, &format!("{path}/NestedLoopJoin.left"));
                let r = self.card(
                    right,
                    enclosing_cap,
                    &format!("{path}/NestedLoopJoin.right"),
                );
                l.times(r)
            }
            PhysPlan::CrossProduct { left, right } => {
                let l = self.card(left, enclosing_cap, &format!("{path}/CrossProduct.left"));
                let r = self.card(right, enclosing_cap, &format!("{path}/CrossProduct.right"));
                l.times(r)
            }
        }
    }
}
