//! Placeholder-dataflow verification of physical plans.
//!
//! The asyncification pass (`wsq_engine::asyncify`) enforces the paper's
//! clash rules (§4.5.2) *by construction*; this module checks them on the
//! **emitted plan**, independently, as a bottom-up abstract interpretation.
//!
//! The abstract domain is the *may-be-placeholder set*: for each operator,
//! the set of output attributes that may still hold `Value::Pending`
//! placeholders when a tuple leaves it. The transfer functions are:
//!
//! - `AEVScan`: its external attributes (`Count`, or `URL`/`Rank`/`Date`).
//! - `ReqSync{attrs}`: input set minus `attrs` (the operator patches the
//!   calls backing those attributes before emitting).
//! - `Project`: placeholder attributes must pass through as plain column
//!   items (renamed to the item's output name); computing over one is
//!   clash case 1, dropping one is clash case 2.
//! - Joins: union of the input sets.
//! - Everything else: identity.
//!
//! The clash checks performed against the incoming set:
//!
//! 1. `Filter` / `NestedLoopJoin` predicates and computed `Project` items
//!    must not read a may-be-placeholder attribute (clash case 1).
//! 2. `Project` must not drop one without a dominating `ReqSync` below
//!    (clash case 2).
//! 3. `Sort` / `Aggregate` / `Distinct` / `Limit` require an empty
//!    incoming set (clash case 3 and its ordering analogue).
//! 4. Dependent-join bindings must not read a may-be-placeholder
//!    attribute of the outer side (percolation's flush rule).
//!
//! Structural rules: the set must be empty at the root (every `AEVScan`
//! dominated by a covering `ReqSync`), and consolidation must have left
//! no directly-adjacent `ReqSync` pair. [`verify_async`] additionally
//! rejects synchronous `EVScan`s, which `asyncify` must have rewritten.
//!
//! Column matching deliberately mirrors `asyncify`'s own semantics
//! (case-insensitive; an unqualified reference may denote a qualified
//! attribute), so the verifier is exactly as conservative as the
//! transformation it checks.

use std::fmt;
use wsq_engine::plan::{EvBinding, EvSpec, PhysPlan};
use wsq_sql::ast::{ColumnRef, Expr};

/// Which rule a [`Violation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Clash case 1: a predicate or computed expression reads an
    /// attribute that may be a placeholder.
    ReadsPlaceholder,
    /// Clash case 2: a projection drops a may-be-placeholder attribute
    /// with no dominating ReqSync below it.
    DropsPlaceholder,
    /// Clash case 3 (and ordering analogue): Sort/Aggregate/Distinct/
    /// Limit above an unpatched placeholder.
    OrderSensitive,
    /// A dependent-join binding reads a may-be-placeholder attribute of
    /// its outer side.
    BindingReadsPlaceholder,
    /// Placeholders escape the plan root: some AEVScan has no covering
    /// ReqSync above it.
    UncoveredAtRoot,
    /// Consolidation failure: a ReqSync directly above another ReqSync.
    AdjacentReqSync,
    /// A synchronous EVScan survived in an asynchronous plan.
    SyncScanInAsyncPlan,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::ReadsPlaceholder => "reads-placeholder (clash case 1)",
            Rule::DropsPlaceholder => "drops-placeholder (clash case 2)",
            Rule::OrderSensitive => "order-sensitive-over-placeholder (clash case 3)",
            Rule::BindingReadsPlaceholder => "binding-reads-placeholder",
            Rule::UncoveredAtRoot => "uncovered-at-root",
            Rule::AdjacentReqSync => "adjacent-reqsync (consolidation)",
            Rule::SyncScanInAsyncPlan => "sync-scan-in-async-plan",
        };
        f.write_str(s)
    }
}

/// One rule violation, with the path of operators from the root to the
/// offending node.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The broken rule.
    pub rule: Rule,
    /// Root-to-node operator path, e.g. `root/Sort/ReqSync`.
    pub path: String,
    /// Human-readable specifics (offending attributes, expressions).
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}: {}", self.rule, self.path, self.detail)
    }
}

/// Verification failure: every violation found in one pass.
#[derive(Debug, Clone)]
pub struct VerifyError {
    /// All violations, in traversal order.
    pub violations: Vec<Violation>,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan fails placeholder-dataflow verification:")?;
        for v in &self.violations {
            writeln!(f, "  - {v}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

/// Statistics from a successful verification (surfaced by
/// `Wsq::explain_verify`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Report {
    /// Plan nodes visited.
    pub nodes: usize,
    /// Asynchronous external scans found.
    pub aev_scans: usize,
    /// ReqSync operators found.
    pub req_syncs: usize,
    /// Largest may-be-placeholder set at any operator (lattice height
    /// actually reached).
    pub max_placeholder_set: usize,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "verified {} nodes: {} async scan(s), {} ReqSync(s), max placeholder set {}",
            self.nodes, self.aev_scans, self.req_syncs, self.max_placeholder_set
        )
    }
}

/// Verify a plan that may legitimately contain synchronous `EVScan`s
/// (e.g. `ExecutionMode::Synchronous` output).
///
/// ```
/// use wsq_analyze::verify;
/// use wsq_common::Value;
/// use wsq_engine::plan::{BufferMode, EvBinding, EvSpec, PhysPlan, PrefetchHint, VTableKind};
///
/// // The minimal legal asynchronous plan: an AEVScan producing a
/// // placeholder Count, patched by a covering ReqSync above it.
/// let spec = EvSpec {
///     kind: VTableKind::WebCount,
///     engine: "AV".into(),
///     alias: "WebCount".into(),
///     template: None,
///     bindings: vec![EvBinding::Const(Value::from("Utah"))],
///     rank_limit: 19,
///     supports_near: true,
///     prefetch: PrefetchHint::default(),
/// };
/// let plan = PhysPlan::ReqSync {
///     attrs: spec.external_attrs(),
///     input: Box::new(PhysPlan::AEVScan(spec)),
///     mode: BufferMode::Full,
///     cap: None,
/// };
/// let report = verify(&plan).expect("plan is placeholder-safe");
/// assert_eq!((report.aev_scans, report.req_syncs), (1, 1));
///
/// // Strip the ReqSync and the placeholder escapes the root.
/// let PhysPlan::ReqSync { input: bare, .. } = plan else { unreachable!() };
/// assert!(verify(&bare).is_err());
/// ```
pub fn verify(plan: &PhysPlan) -> Result<Report, VerifyError> {
    verify_inner(plan, false)
}

/// Verify the output of `asyncify`: everything [`verify`] checks, plus
/// no synchronous `EVScan` may remain.
///
/// ```
/// use wsq_analyze::{verify, verify_async, Rule};
/// use wsq_common::Value;
/// use wsq_engine::plan::{EvBinding, EvSpec, PhysPlan, PrefetchHint, VTableKind};
///
/// // A blocking EVScan has no placeholders, so plain `verify` accepts
/// // it — but it must not survive asyncification.
/// let plan = PhysPlan::EVScan(EvSpec {
///     kind: VTableKind::WebCount,
///     engine: "AV".into(),
///     alias: "WebCount".into(),
///     template: None,
///     bindings: vec![EvBinding::Const(Value::from("Utah"))],
///     rank_limit: 19,
///     supports_near: true,
///     prefetch: PrefetchHint::default(),
/// });
/// assert!(verify(&plan).is_ok());
/// let err = verify_async(&plan).unwrap_err();
/// assert_eq!(err.violations[0].rule, Rule::SyncScanInAsyncPlan);
/// ```
pub fn verify_async(plan: &PhysPlan) -> Result<Report, VerifyError> {
    verify_inner(plan, true)
}

fn verify_inner(plan: &PhysPlan, forbid_ev: bool) -> Result<Report, VerifyError> {
    let mut cx = Cx {
        forbid_ev,
        violations: Vec::new(),
        report: Report::default(),
    };
    let escaped = cx.abs(plan, "root");
    if !escaped.is_empty() {
        cx.violations.push(Violation {
            rule: Rule::UncoveredAtRoot,
            path: "root".to_string(),
            detail: format!(
                "placeholder attributes escape the plan: {}",
                fmt_attrs(&escaped)
            ),
        });
    }
    if cx.violations.is_empty() {
        Ok(cx.report)
    } else {
        Err(VerifyError {
            violations: cx.violations,
        })
    }
}

/// Case-insensitive column-reference equality, mirroring `asyncify`: an
/// unqualified reference may denote a qualified attribute.
pub(crate) fn same_ref(a: &ColumnRef, b: &ColumnRef) -> bool {
    if !a.name.eq_ignore_ascii_case(&b.name) {
        return false;
    }
    match (&a.qualifier, &b.qualifier) {
        (Some(x), Some(y)) => x.eq_ignore_ascii_case(y),
        _ => true,
    }
}

pub(crate) fn refs_any(expr: &Expr, attrs: &[ColumnRef]) -> bool {
    expr.columns()
        .iter()
        .any(|c| attrs.iter().any(|a| same_ref(c, a)))
}

fn fmt_attrs(attrs: &[ColumnRef]) -> String {
    attrs
        .iter()
        .map(|a| match &a.qualifier {
            Some(q) => format!("{q}.{}", a.name),
            None => a.name.clone(),
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// The binding spec reachable through the right side of a dependent join
/// (possibly wrapped in Filter/ReqSync), mirroring `asyncify`.
fn spec_of(plan: &PhysPlan) -> Option<&EvSpec> {
    match plan {
        PhysPlan::EVScan(s) | PhysPlan::AEVScan(s) => Some(s),
        PhysPlan::Filter { input, .. } | PhysPlan::ReqSync { input, .. } => spec_of(input),
        _ => None,
    }
}

struct Cx {
    forbid_ev: bool,
    violations: Vec<Violation>,
    report: Report,
}

impl Cx {
    fn push(&mut self, rule: Rule, path: &str, detail: String) {
        self.violations.push(Violation {
            rule,
            path: path.to_string(),
            detail,
        });
    }

    fn check_bindings(&mut self, spec: &EvSpec, outer: &[ColumnRef], path: &str) {
        for b in &spec.bindings {
            if let EvBinding::Column(c) = b {
                if outer.iter().any(|a| same_ref(c, a)) {
                    self.push(
                        Rule::BindingReadsPlaceholder,
                        path,
                        format!(
                            "binding of virtual table '{}' reads may-be-placeholder \
                             attribute {} of the outer side",
                            spec.alias,
                            fmt_attrs(std::slice::from_ref(c)),
                        ),
                    );
                }
            }
        }
    }

    /// The transfer function: may-be-placeholder attribute set of the
    /// operator's output, recording violations along the way.
    fn abs(&mut self, plan: &PhysPlan, path: &str) -> Vec<ColumnRef> {
        self.report.nodes += 1;
        let set = match plan {
            PhysPlan::SeqScan { .. } | PhysPlan::IndexScan { .. } | PhysPlan::Values { .. } => {
                vec![]
            }
            PhysPlan::EVScan(_) => {
                if self.forbid_ev {
                    self.push(
                        Rule::SyncScanInAsyncPlan,
                        path,
                        "synchronous EVScan in an asynchronous plan (asyncify must \
                         rewrite every EVScan to AEVScan)"
                            .to_string(),
                    );
                }
                // A synchronous scan materializes real values.
                vec![]
            }
            PhysPlan::AEVScan(spec) => {
                self.report.aev_scans += 1;
                spec.external_attrs()
            }
            PhysPlan::ReqSync { input, attrs, .. } => {
                self.report.req_syncs += 1;
                if matches!(**input, PhysPlan::ReqSync { .. }) {
                    self.push(
                        Rule::AdjacentReqSync,
                        path,
                        "ReqSync directly above another ReqSync (consolidation should \
                         have merged their attribute sets)"
                            .to_string(),
                    );
                }
                let inner = self.abs(input, &format!("{path}/ReqSync"));
                inner
                    .into_iter()
                    .filter(|a| !attrs.iter().any(|s| same_ref(a, s)))
                    .collect()
            }
            PhysPlan::Filter { input, predicate } => {
                let inner = self.abs(input, &format!("{path}/Filter"));
                if refs_any(predicate, &inner) {
                    self.push(
                        Rule::ReadsPlaceholder,
                        path,
                        format!(
                            "filter predicate reads may-be-placeholder attribute(s) {}",
                            fmt_attrs(&inner)
                        ),
                    );
                }
                inner
            }
            PhysPlan::Project { input, items, .. } => {
                let inner = self.abs(input, &format!("{path}/Project"));
                let mut out = Vec::new();
                for a in &inner {
                    // Clash case 1: an item computes over the attribute.
                    let computed = items.iter().any(|(e, _)| {
                        !matches!(e, Expr::Column(_)) && refs_any(e, std::slice::from_ref(a))
                    });
                    if computed {
                        self.push(
                            Rule::ReadsPlaceholder,
                            path,
                            format!(
                                "projection computes over may-be-placeholder attribute {}",
                                fmt_attrs(std::slice::from_ref(a))
                            ),
                        );
                        continue;
                    }
                    // Pass-through: the attribute flows on under the
                    // item's output name (mirroring asyncify's rename;
                    // first match, as the transformation renames).
                    match items
                        .iter()
                        .find(|(e, _)| matches!(e, Expr::Column(c) if same_ref(c, a)))
                    {
                        Some((_, name)) => out.push(ColumnRef {
                            qualifier: None,
                            name: name.clone(),
                        }),
                        None => self.push(
                            Rule::DropsPlaceholder,
                            path,
                            format!(
                                "projection drops may-be-placeholder attribute {} with \
                                 no dominating ReqSync below",
                                fmt_attrs(std::slice::from_ref(a))
                            ),
                        ),
                    }
                }
                out
            }
            PhysPlan::DependentJoin { left, right } => {
                let l = self.abs(left, &format!("{path}/DependentJoin.left"));
                let r = self.abs(right, &format!("{path}/DependentJoin.right"));
                if let Some(spec) = spec_of(right) {
                    self.check_bindings(spec, &l, path);
                }
                let mut out = l;
                out.extend(r);
                out
            }
            PhysPlan::ParallelDependentJoin { left, spec, .. } => {
                // The parallel join performs and completes its external
                // calls internally: only the outer side's set flows on.
                let l = self.abs(left, &format!("{path}/ParallelDependentJoin.left"));
                self.check_bindings(spec, &l, path);
                l
            }
            PhysPlan::NestedLoopJoin {
                left,
                right,
                predicate,
            } => {
                let l = self.abs(left, &format!("{path}/NestedLoopJoin.left"));
                let r = self.abs(right, &format!("{path}/NestedLoopJoin.right"));
                let mut out = l;
                out.extend(r);
                if refs_any(predicate, &out) {
                    self.push(
                        Rule::ReadsPlaceholder,
                        path,
                        format!(
                            "join predicate reads may-be-placeholder attribute(s) {}",
                            fmt_attrs(&out)
                        ),
                    );
                }
                out
            }
            PhysPlan::CrossProduct { left, right } => {
                let mut out = self.abs(left, &format!("{path}/CrossProduct.left"));
                out.extend(self.abs(right, &format!("{path}/CrossProduct.right")));
                out
            }
            PhysPlan::Sort { input, .. }
            | PhysPlan::Aggregate { input, .. }
            | PhysPlan::Distinct { input }
            | PhysPlan::Limit { input, .. } => {
                let name = match plan {
                    PhysPlan::Sort { .. } => "Sort",
                    PhysPlan::Aggregate { .. } => "Aggregate",
                    PhysPlan::Distinct { .. } => "Distinct",
                    _ => "Limit",
                };
                let inner = self.abs(input, &format!("{path}/{name}"));
                if !inner.is_empty() {
                    self.push(
                        Rule::OrderSensitive,
                        path,
                        format!(
                            "{name} above unpatched placeholder attribute(s) {}",
                            fmt_attrs(&inner)
                        ),
                    );
                    // The operator would block on / misorder placeholders;
                    // report once and treat them as consumed.
                    return vec![];
                }
                inner
            }
        };
        self.report.max_placeholder_set = self.report.max_placeholder_set.max(set.len());
        set
    }
}
