//! Concurrency auditor: token-based static analysis of lock discipline.
//!
//! Subsumes (and replaces) the old line-based "lock across backend
//! call" lint with three machine-checked rules over the `engine`,
//! `pump`, `obs` and `websim` sources, run by `cargo xtask lint`:
//!
//! 1. **Blocking call under a live guard**
//!    ([`ConcRule::BlockingUnderGuard`]): no call from the configurable
//!    blocking set ([`AuditConfig::blocking`]; by default `execute`,
//!    `execute_batch`, `wait_any`, `thread::sleep`, `recv`, and
//!    zero-argument `join`) may happen while any lock guard is live.
//!    Guard tracking is token-based, so it survives idioms the old
//!    lexical pass admitted it could not see: guards bound across line
//!    breaks, `if let Ok(g) = m.lock()` / `while let` bindings, early
//!    `drop(g)`, shadowing, and guards returned from helper functions
//!    (any function whose return type mentions `…Guard`).
//! 2. **Condvar discipline** ([`ConcRule::NakedCondvarWait`]): every
//!    `.wait(&mut g)` / `.wait_timeout(&mut g, …)` / `.wait_until(&mut
//!    g, …)` must be lexically inside a `loop` / `while` / `for` body,
//!    so spurious wakeups re-check their predicate. (`wait_while` and
//!    friends loop internally and are exempt.)
//! 3. **Lock-acquisition-order cycles** ([`ConcRule::LockOrderCycle`]):
//!    an inter-procedural lock-order graph is built over all scanned
//!    functions — an edge `A → B` means some function acquires lock `B`
//!    (directly, or transitively through a resolvable call chain) while
//!    holding a guard of lock `A`. A cycle is a potential deadlock; the
//!    finding names the witness call chain for every edge in the cycle.
//!
//! **Scope and soundness.** This is a dependency-free lexical analysis,
//! a gate rather than a proof. Lock identity is the final path
//! component of the acquisition receiver (`self.shared.state.lock()` →
//! `state`), so two locks that share a field name alias, and
//! same-identity re-acquisition (`slots[i]` vs `slots[j]`) is *not*
//! reported as a self-cycle. Calls are resolved to scanned functions
//! only when unambiguous (same-file definition preferred, else a unique
//! workspace definition) and only for `self.…` method chains, bare
//! calls, and `path::calls` — condvar primitives are never resolved, so
//! `cv.wait(…)` cannot alias an unrelated `fn wait`. What the auditor
//! cannot see stays out of scope and belongs in review; what it *can*
//! see is enforced, with a burn-down allowlist in
//! `crates/xtask/conc-allowlist.txt` for pre-existing findings.

use crate::lint::{strip_source, strip_tests};
use crate::tokens::{lex, matching, Tok};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which auditor rule a [`ConcFinding`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConcRule {
    /// A blocking call (backend dispatch, pump wait, sleep, recv, or
    /// thread join) while a lock guard is live.
    BlockingUnderGuard,
    /// A condvar wait that is not inside a predicate re-check loop.
    NakedCondvarWait,
    /// A cycle in the inter-procedural lock-acquisition-order graph.
    LockOrderCycle,
}

impl ConcRule {
    /// Stable machine-readable name (used by the allowlist and the JSON
    /// lint report).
    pub fn name(&self) -> &'static str {
        match self {
            ConcRule::BlockingUnderGuard => "blocking-under-guard",
            ConcRule::NakedCondvarWait => "naked-condvar-wait",
            ConcRule::LockOrderCycle => "lock-order-cycle",
        }
    }
}

impl fmt::Display for ConcRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One auditor finding, pinned to a file, line and function.
#[derive(Debug, Clone)]
pub struct ConcFinding {
    /// The broken rule.
    pub rule: ConcRule,
    /// Path of the offending file (relative to the scan prefix).
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Name of the enclosing function.
    pub function: String,
    /// Human-readable specifics (guard names, witness call chains).
    pub detail: String,
}

impl fmt::Display for ConcFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] in `{}`: {}",
            self.file, self.line, self.rule, self.function, self.detail
        )
    }
}

/// Auditor configuration.
#[derive(Debug, Clone)]
pub struct AuditConfig {
    /// Method/function names forbidden under any live guard. Two names
    /// carry extra qualification to stay precise: `sleep` only matches
    /// the path form `thread::sleep`, and `join` only matches
    /// zero-argument calls (`handle.join()`), so `Schema::join(other)`
    /// and `Vec::join(", ")` never trip it.
    pub blocking: Vec<String>,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            blocking: [
                "execute",
                "execute_batch",
                "wait_any",
                "sleep",
                "recv",
                "join",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
        }
    }
}

/// Audit every non-test `.rs` file under each of `dirs`; paths in the
/// findings are reported relative to `strip_prefix`.
pub fn audit_dirs(
    dirs: &[PathBuf],
    strip_prefix: &Path,
    cfg: &AuditConfig,
) -> io::Result<Vec<ConcFinding>> {
    let mut sources = Vec::new();
    for dir in dirs {
        let mut files = Vec::new();
        collect_rs_files(dir, &mut files)?;
        files.sort();
        for f in files {
            // `tests.rs` files are `#[cfg(test)] mod tests;` companions
            // by repo convention (mirrors `lint::scan_dir`).
            if f.file_name().is_some_and(|n| n == "tests.rs") {
                continue;
            }
            let src = fs::read_to_string(&f)?;
            let rel = f
                .strip_prefix(strip_prefix)
                .unwrap_or(&f)
                .to_string_lossy()
                .replace('\\', "/");
            sources.push((rel, src));
        }
    }
    Ok(audit_sources(&sources, cfg))
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Audit a set of `(path, source)` pairs as one unit (the call graph
/// and lock-order graph span all of them). Sources are stripped of
/// comments, literals and test-module bodies before lexing.
pub fn audit_sources(files: &[(String, String)], cfg: &AuditConfig) -> Vec<ConcFinding> {
    // Phase 1: lex and collect function spans (with nested `fn` items
    // excluded from their parents) across every file.
    let mut fns: Vec<FnInfo> = Vec::new();
    for (path, src) in files {
        let toks = lex(&strip_tests(&strip_source(src)));
        collect_fns(path, &toks, &mut fns);
    }
    let guard_returning: BTreeSet<String> = fns
        .iter()
        .filter(|f| f.returns_guard)
        .map(|f| f.name.clone())
        .collect();

    // Phase 2: per-function guard tracking, emitting the intra-function
    // findings and recording acquisitions + call sites for phase 3.
    let mut findings = Vec::new();
    for idx in 0..fns.len() {
        analyze_fn(idx, &mut fns, &guard_returning, cfg, &mut findings);
    }

    // Phase 3: inter-procedural lock-order graph and cycle detection.
    findings.extend(lock_order_cycles(&fns));

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

// ---------------------------------------------------------------------
// Phase 1: function collection.
// ---------------------------------------------------------------------

struct FnInfo {
    name: String,
    file: String,
    /// Token stream of the whole file (shared clone per fn is avoided
    /// by storing the file tokens once per fn span — spans are small).
    toks: Vec<Tok>,
    /// Body token range (exclusive of the outer braces).
    body: (usize, usize),
    /// Nested `fn` item spans inside `body`, excluded from analysis.
    nested: Vec<(usize, usize)>,
    returns_guard: bool,
    /// Lock identities this function acquires directly.
    direct_acqs: Vec<String>,
    /// Resolvable call sites, with the lock ids held at the call.
    calls: Vec<CallSite>,
    /// Direct lock-order edges observed inside this function.
    edges: Vec<EdgeWitness>,
}

#[derive(Clone)]
struct CallSite {
    callee: String,
    line: u32,
    /// Lock ids of guards live at the call site (empty = unguarded).
    held: Vec<(String, u32)>,
}

#[derive(Clone)]
struct EdgeWitness {
    from: String,
    to: String,
    file: String,
    line: u32,
    function: String,
    /// Call chain from the holder to the acquirer (empty for a direct
    /// nested acquisition in one function).
    chain: Vec<String>,
}

/// Scan a file's tokens for `fn` items (including nested ones) and push
/// a `FnInfo` per function. Nested item ranges are recorded on the
/// enclosing function so its analysis skips them.
fn collect_fns(path: &str, toks: &[Tok], out: &mut Vec<FnInfo>) {
    struct Span {
        name: String,
        ret_guard: bool,
        body: (usize, usize),
    }
    let mut spans: Vec<Span> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "fn" || !toks.get(i + 1).is_some_and(|t| t.is_ident()) {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let mut j = i + 2;
        // Generics: skip a balanced `<…>` group.
        if toks.get(j).is_some_and(|t| t.text == "<") {
            let mut angle = 0i32;
            while j < toks.len() {
                match toks[j].text.as_str() {
                    "<" => angle += 1,
                    ">" => {
                        angle -= 1;
                        if angle == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        if toks.get(j).is_none_or(|t| t.text != "(") {
            i += 1;
            continue;
        }
        let Some(params_end) = matching(toks, j) else {
            break;
        };
        // Return type + where clause: scan to the body `{` (or `;` for
        // a bodyless declaration) at delimiter depth 0.
        let mut k = params_end + 1;
        let ret_start = k;
        let mut body_open = None;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "{" => {
                    body_open = Some(k);
                    break;
                }
                ";" => break,
                "(" | "[" => {
                    k = match matching(toks, k) {
                        Some(m) => m,
                        None => break,
                    };
                }
                _ => {}
            }
            k += 1;
        }
        let ret_guard = toks[ret_start..k.min(toks.len())]
            .iter()
            .any(|t| t.is_ident() && t.text.ends_with("Guard"));
        let Some(open) = body_open else {
            i = k.max(i + 1);
            continue;
        };
        let Some(close) = matching(toks, open) else {
            break;
        };
        spans.push(Span {
            name,
            ret_guard,
            body: (open + 1, close),
        });
        // Continue *inside* the body so nested fns are collected too.
        i = open + 1;
    }
    for s in &spans {
        let nested: Vec<(usize, usize)> = spans
            .iter()
            .filter(|o| o.body.0 > s.body.0 && o.body.1 < s.body.1)
            // Exclude from the `fn` keyword: name/params of the nested
            // item are not the parent's statements either. The span we
            // have starts at the body; back up to the keyword is not
            // tracked, so exclude from the body open brace — the
            // header tokens are harmless (no calls are completed).
            .map(|o| (o.body.0 - 1, o.body.1 + 1))
            .collect();
        out.push(FnInfo {
            name: s.name.clone(),
            file: path.to_string(),
            toks: toks.to_vec(),
            body: s.body,
            nested,
            returns_guard: s.ret_guard,
            direct_acqs: Vec::new(),
            calls: Vec::new(),
            edges: Vec::new(),
        });
    }
}

// ---------------------------------------------------------------------
// Phase 2: per-function analysis.
// ---------------------------------------------------------------------

const LOCKISH: &[&str] = &["lock", "read", "write"];
/// Condvar waits that need an external predicate loop. (`wait_while` /
/// `wait_timeout_while` re-check internally and are exempt.)
const CONDVAR_WAITS: &[&str] = &["wait", "wait_timeout", "wait_until"];

#[derive(Clone)]
struct Guard {
    name: String,
    /// Lock identity (`None` for helper-returned guards, which join the
    /// blocking rule but not the order graph).
    lock_id: Option<String>,
    depth: i32,
    line: u32,
}

struct FnCx<'a> {
    file: String,
    function: String,
    cfg: &'a AuditConfig,
    guard_returning: &'a BTreeSet<String>,
    depth: i32,
    guards: Vec<Guard>,
    loop_stack: Vec<i32>,
    direct_acqs: Vec<String>,
    calls: Vec<CallSite>,
    edges: Vec<EdgeWitness>,
    findings: Vec<ConcFinding>,
}

fn analyze_fn(
    idx: usize,
    fns: &mut [FnInfo],
    guard_returning: &BTreeSet<String>,
    cfg: &AuditConfig,
    findings: &mut Vec<ConcFinding>,
) {
    // Materialize the effective body tokens, skipping nested fn items.
    let f = &fns[idx];
    let mut body: Vec<Tok> = Vec::new();
    let mut i = f.body.0;
    while i < f.body.1 {
        if let Some(&(_, hi)) = f.nested.iter().find(|&&(lo, hi)| i >= lo && i < hi) {
            i = hi;
            continue;
        }
        body.push(f.toks[i].clone());
        i += 1;
    }

    let mut cx = FnCx {
        file: f.file.clone(),
        function: f.name.clone(),
        cfg,
        guard_returning,
        depth: 0,
        guards: Vec::new(),
        loop_stack: Vec::new(),
        direct_acqs: Vec::new(),
        calls: Vec::new(),
        edges: Vec::new(),
        findings: Vec::new(),
    };

    let mut stmt: Vec<Tok> = Vec::new();
    let mut stmt_delim = 0i32; // ( and [ depth inside the buffer
    for t in &body {
        match t.text.as_str() {
            "{" => {
                cx.process_stmt(&stmt, true);
                stmt.clear();
                stmt_delim = 0;
                cx.depth += 1;
            }
            "}" => {
                cx.process_stmt(&stmt, false);
                stmt.clear();
                stmt_delim = 0;
                cx.depth -= 1;
                let d = cx.depth;
                cx.guards.retain(|g| g.depth <= d);
                while cx.loop_stack.last().is_some_and(|&l| l > d) {
                    cx.loop_stack.pop();
                }
            }
            ";" if stmt_delim <= 0 => {
                cx.process_stmt(&stmt, false);
                // Guard births happen at the statement terminator.
                cx.let_guard_birth(&stmt);
                stmt.clear();
                stmt_delim = 0;
            }
            _ => {
                match t.text.as_str() {
                    "(" | "[" => stmt_delim += 1,
                    ")" | "]" => stmt_delim -= 1,
                    _ => {}
                }
                stmt.push(t.clone());
            }
        }
    }
    cx.process_stmt(&stmt, false);

    findings.append(&mut cx.findings);
    let f = &mut fns[idx];
    f.direct_acqs = cx.direct_acqs;
    f.calls = cx.calls;
    f.edges = cx.edges;
}

impl FnCx<'_> {
    /// Analyze one flushed statement buffer. `opens_block` is true when
    /// the flush was caused by a `{` (the buffer is then a block
    /// header: an `if let` guard binding or a loop introducer).
    fn process_stmt(&mut self, stmt: &[Tok], opens_block: bool) {
        if opens_block {
            // Loop bodies: `loop { … }`, `while … { … }`, `for … { … }`.
            if stmt
                .iter()
                .any(|t| matches!(t.text.as_str(), "loop" | "while" | "for"))
            {
                self.loop_stack.push(self.depth + 1);
            }
            self.if_let_guard_birth(stmt);
        }

        // Linear scan: drops, acquisitions, condvar waits, blocking
        // calls, resolvable call sites. `temp_guard` models a lock
        // temporary live to the end of the statement (or the next
        // top-level comma — match arms share one buffer).
        let mut temp_guard: Option<(String, u32)> = None;
        let mut delim = 0i32;
        let mut k = 0;
        while k < stmt.len() {
            let text = stmt[k].text.as_str();
            match text {
                "(" | "[" => delim += 1,
                ")" | "]" => delim -= 1,
                "," if delim == 0 => temp_guard = None,
                _ => {}
            }
            // drop(name): the most recent guard with that name dies.
            if text == "drop"
                && stmt.get(k + 1).is_some_and(|t| t.text == "(")
                && stmt.get(k + 3).is_some_and(|t| t.text == ")")
            {
                if let Some(name) = stmt.get(k + 2).filter(|t| t.is_ident()) {
                    if let Some(pos) = self.guards.iter().rposition(|g| g.name == name.text) {
                        self.guards.remove(pos);
                    }
                    k += 4;
                    continue;
                }
            }
            // Calls: IDENT followed by `(`.
            if stmt[k].is_ident() && stmt.get(k + 1).is_some_and(|t| t.text == "(") {
                let name = text.to_string();
                let line = stmt[k].line;
                let is_method = k > 0 && stmt[k - 1].text == ".";
                let empty_args = stmt.get(k + 2).is_some_and(|t| t.text == ")");
                let first_arg_mut_ref = stmt.get(k + 2).is_some_and(|t| t.text == "&")
                    && stmt.get(k + 3).is_some_and(|t| t.text == "mut");

                if is_method && CONDVAR_WAITS.contains(&name.as_str()) && first_arg_mut_ref {
                    // A condvar wait — never resolved as a call, never
                    // an acquisition. Must sit inside a predicate loop.
                    if self.loop_stack.is_empty() {
                        self.findings.push(ConcFinding {
                            rule: ConcRule::NakedCondvarWait,
                            file: self.file.clone(),
                            line,
                            function: self.function.clone(),
                            detail: format!(
                                "condvar `.{name}(&mut …)` outside a predicate loop — \
                                 spurious wakeups must re-check the condition in a \
                                 `loop`/`while`"
                            ),
                        });
                    }
                    k += 1;
                    continue;
                }

                if is_method && LOCKISH.contains(&name.as_str()) && empty_args {
                    // A lock acquisition (persistent if this statement
                    // is a guard-binding `let`; temporary otherwise —
                    // either way it orders after every live guard).
                    let id = receiver_id(stmt, k - 1);
                    if let Some(id) = &id {
                        self.record_acquisition(id, line);
                        temp_guard = Some((id.clone(), line));
                    }
                    k += 1;
                    continue;
                }

                // Blocking-set check.
                let blocking = self.cfg.blocking.iter().any(|b| b == &name)
                    && match name.as_str() {
                        "join" => is_method && empty_args,
                        "sleep" => {
                            k >= 2 && stmt[k - 1].text == "::" && stmt[k - 2].text == "thread"
                        }
                        _ => true,
                    };
                if blocking {
                    let held: Vec<String> = self
                        .guards
                        .iter()
                        .map(|g| format!("`{}` (born line {})", g.name, g.line))
                        .chain(
                            temp_guard
                                .iter()
                                .map(|(id, l)| format!("temporary `{id}` guard (line {l})")),
                        )
                        .collect();
                    if !held.is_empty() {
                        self.findings.push(ConcFinding {
                            rule: ConcRule::BlockingUnderGuard,
                            file: self.file.clone(),
                            line,
                            function: self.function.clone(),
                            detail: format!(
                                "blocking call `{name}` with lock guard{} {} still held",
                                if held.len() > 1 { "s" } else { "" },
                                held.join(", ")
                            ),
                        });
                    }
                    k += 1;
                    continue;
                }

                // Resolvable call site for the lock-order graph: bare
                // calls, `path::calls`, and `self.…` method chains.
                let resolvable = if is_method {
                    receiver_head(stmt, k - 1).is_some_and(|h| h == "self" || h == "Self")
                } else {
                    !(k > 0 && stmt[k - 1].text == ".")
                };
                if resolvable && name != "drop" {
                    let held: Vec<(String, u32)> = self
                        .guards
                        .iter()
                        .filter_map(|g| g.lock_id.clone().map(|id| (id, g.line)))
                        .collect();
                    self.calls.push(CallSite {
                        callee: name,
                        line,
                        held,
                    });
                }
            }
            k += 1;
        }
    }

    /// Record a direct acquisition: order edges from every live guard,
    /// and the fact itself for the inter-procedural lockset.
    fn record_acquisition(&mut self, id: &str, line: u32) {
        for g in &self.guards {
            if let Some(from) = &g.lock_id {
                if from != id {
                    self.edges.push(EdgeWitness {
                        from: from.clone(),
                        to: id.to_string(),
                        file: self.file.clone(),
                        line,
                        function: self.function.clone(),
                        chain: Vec::new(),
                    });
                }
            }
        }
        self.direct_acqs.push(id.to_string());
    }

    /// `let [mut] NAME = …tail` births, applied at the `;` flush. A
    /// guard is born when the tail is a zero-argument `lock`/`read`/
    /// `write` call, or a call to a guard-returning helper.
    fn let_guard_birth(&mut self, stmt: &[Tok]) {
        if stmt.first().map(|t| t.text.as_str()) != Some("let") {
            return;
        }
        let mut n = 1;
        if stmt.get(n).is_some_and(|t| t.text == "mut") {
            n += 1;
        }
        let Some(name) = stmt.get(n).filter(|t| t.is_ident()) else {
            return;
        };
        // `let _ = …` drops immediately — not a live guard.
        if name.text == "_" {
            return;
        }
        let Some((method_idx, empty_args)) = tail_call(stmt) else {
            return;
        };
        let method = stmt[method_idx].text.as_str();
        let is_method = method_idx > 0 && stmt[method_idx - 1].text == ".";
        let (lock_id, line) = if LOCKISH.contains(&method) && empty_args && is_method {
            (receiver_id(stmt, method_idx - 1), stmt[method_idx].line)
        } else if self.guard_returning.contains(method) {
            (None, stmt[method_idx].line)
        } else {
            return;
        };
        self.guards.push(Guard {
            name: name.text.clone(),
            lock_id,
            depth: self.depth,
            line,
        });
    }

    /// `if let Ok(g) = m.lock()` / `while let Some(g) = …` births,
    /// applied at the `{` flush; the guard lives for the block body.
    fn if_let_guard_birth(&mut self, stmt: &[Tok]) {
        let head = stmt.first().map(|t| t.text.as_str());
        if !matches!(head, Some("if") | Some("while"))
            || stmt.get(1).map(|t| t.text.as_str()) != Some("let")
        {
            return;
        }
        if !stmt
            .get(2)
            .is_some_and(|t| t.text == "Ok" || t.text == "Some")
            || stmt.get(3).map(|t| t.text.as_str()) != Some("(")
        {
            return;
        }
        let mut n = 4;
        if stmt.get(n).is_some_and(|t| t.text == "mut") {
            n += 1;
        }
        let Some(name) = stmt.get(n).filter(|t| t.is_ident()) else {
            return;
        };
        if stmt.get(n + 1).map(|t| t.text.as_str()) != Some(")")
            || stmt.get(n + 2).map(|t| t.text.as_str()) != Some("=")
        {
            return;
        }
        let Some((method_idx, empty_args)) = tail_call(stmt) else {
            return;
        };
        let method = stmt[method_idx].text.as_str();
        let is_method = method_idx > 0 && stmt[method_idx - 1].text == ".";
        let lock_id = if LOCKISH.contains(&method) && empty_args && is_method {
            receiver_id(stmt, method_idx - 1)
        } else if self.guard_returning.contains(method) {
            None
        } else {
            return;
        };
        if let Some(id) = &lock_id {
            self.record_acquisition(id, stmt[method_idx].line);
        }
        self.guards.push(Guard {
            name: name.text.clone(),
            lock_id,
            depth: self.depth + 1,
            line: stmt[method_idx].line,
        });
    }
}

/// The final call of a statement: `Some((method_token_index,
/// args_are_empty))` when the statement ends with `… name( … )`.
fn tail_call(stmt: &[Tok]) -> Option<(usize, bool)> {
    if stmt.last()?.text != ")" {
        return None;
    }
    let mut depth = 0i32;
    let mut open = None;
    for k in (0..stmt.len()).rev() {
        match stmt[k].text.as_str() {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" => {
                depth -= 1;
                if depth == 0 {
                    open = Some(k);
                    break;
                }
            }
            _ => {}
        }
    }
    let open = open?;
    if open == 0 || !stmt[open - 1].is_ident() {
        return None;
    }
    Some((open - 1, open + 1 == stmt.len() - 1))
}

/// Lock identity of a method receiver: the last plain identifier of the
/// path chain before the `.` at `dot` (`self.shared.state.lock()` →
/// `state`; `self.slots[i].lock()` → `slots`).
fn receiver_id(stmt: &[Tok], dot: usize) -> Option<String> {
    let mut k = dot;
    while k > 0 {
        k -= 1;
        match stmt[k].text.as_str() {
            "]" | ")" => {
                // Skip a balanced group backward, then keep walking.
                let mut depth = 0i32;
                loop {
                    match stmt[k].text.as_str() {
                        "]" | ")" | "}" => depth += 1,
                        "[" | "(" | "{" => depth -= 1,
                        _ => {}
                    }
                    if depth == 0 {
                        break;
                    }
                    if k == 0 {
                        return None;
                    }
                    k -= 1;
                }
            }
            _ if stmt[k].is_ident() => return Some(stmt[k].text.clone()),
            _ => return None,
        }
    }
    None
}

/// First identifier of the receiver chain before the `.` at `dot`
/// (`self.shared.state.foo()` → `self`).
fn receiver_head(stmt: &[Tok], dot: usize) -> Option<String> {
    let mut k = dot;
    let mut head = None;
    while k > 0 {
        k -= 1;
        match stmt[k].text.as_str() {
            "." | "::" => continue,
            "]" | ")" => {
                let mut depth = 0i32;
                loop {
                    match stmt[k].text.as_str() {
                        "]" | ")" | "}" => depth += 1,
                        "[" | "(" | "{" => depth -= 1,
                        _ => {}
                    }
                    if depth == 0 {
                        break;
                    }
                    if k == 0 {
                        return head;
                    }
                    k -= 1;
                }
            }
            _ if stmt[k].is_ident() => head = Some(stmt[k].text.clone()),
            _ => break,
        }
    }
    head
}

// ---------------------------------------------------------------------
// Phase 3: inter-procedural lock-order graph.
// ---------------------------------------------------------------------

fn lock_order_cycles(fns: &[FnInfo]) -> Vec<ConcFinding> {
    // Name resolution: same-file unique definition first, then unique
    // workspace definition; ambiguous names stay unresolved.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(&f.name).or_default().push(i);
    }
    let resolve = |caller_file: &str, name: &str| -> Option<usize> {
        let cands = by_name.get(name)?;
        let same_file: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| fns[i].file == caller_file)
            .collect();
        match same_file.as_slice() {
            [one] => Some(*one),
            [] if cands.len() == 1 => Some(cands[0]),
            _ => None,
        }
    };

    // Fixpoint: transitive lockset per function.
    let mut locksets: Vec<BTreeSet<String>> = fns
        .iter()
        .map(|f| f.direct_acqs.iter().cloned().collect())
        .collect();
    loop {
        let mut changed = false;
        for (i, f) in fns.iter().enumerate() {
            for c in &f.calls {
                if let Some(callee) = resolve(&f.file, &c.callee) {
                    let add: Vec<String> = locksets[callee]
                        .iter()
                        .filter(|m| !locksets[i].contains(*m))
                        .cloned()
                        .collect();
                    if !add.is_empty() {
                        locksets[i].extend(add);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edges: direct (recorded in phase 2) plus call-mediated ones.
    let mut edges: BTreeMap<(String, String), EdgeWitness> = BTreeMap::new();
    for f in fns {
        for e in &f.edges {
            edges
                .entry((e.from.clone(), e.to.clone()))
                .or_insert_with(|| e.clone());
        }
        for c in &f.calls {
            let Some(callee) = resolve(&f.file, &c.callee) else {
                continue;
            };
            for (from, _) in &c.held {
                for to in &locksets[callee] {
                    if from == to {
                        continue;
                    }
                    let chain = chain_to(fns, &resolve, callee, to).unwrap_or_default();
                    edges
                        .entry((from.clone(), to.clone()))
                        .or_insert_with(|| EdgeWitness {
                            from: from.clone(),
                            to: to.clone(),
                            file: f.file.clone(),
                            line: c.line,
                            function: f.name.clone(),
                            chain,
                        });
                }
            }
        }
    }

    // Cycle enumeration (graphs here are tiny): from each start node,
    // DFS over nodes >= start; a return edge to the start closes a
    // cycle, reported once with every edge's witness chain.
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut findings = Vec::new();
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in &nodes {
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, vec![start])];
        while let Some((node, path)) = stack.pop() {
            if path.len() > 6 {
                continue;
            }
            for &next in adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]) {
                if next == start && path.len() > 1 {
                    let cycle: Vec<String> = path.iter().map(|s| s.to_string()).collect();
                    if cycle.iter().min() != cycle.first() {
                        continue; // canonical start only: dedupe rotations
                    }
                    if seen_cycles.insert(cycle.clone()) {
                        findings.push(cycle_finding(&cycle, &edges));
                    }
                } else if next > start && !path.contains(&next) {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
    findings
}

/// Shortest call chain (as fn names) from `start` to a function that
/// directly acquires `target`.
fn chain_to(
    fns: &[FnInfo],
    resolve: &dyn Fn(&str, &str) -> Option<usize>,
    start: usize,
    target: &str,
) -> Option<Vec<String>> {
    let mut queue = std::collections::VecDeque::new();
    let mut visited = BTreeSet::new();
    queue.push_back((start, vec![fns[start].name.clone()]));
    visited.insert(start);
    while let Some((i, path)) = queue.pop_front() {
        if fns[i].direct_acqs.iter().any(|a| a == target) {
            return Some(path);
        }
        if path.len() > 8 {
            continue;
        }
        for c in &fns[i].calls {
            if let Some(j) = resolve(&fns[i].file, &c.callee) {
                if visited.insert(j) {
                    let mut p = path.clone();
                    p.push(fns[j].name.clone());
                    queue.push_back((j, p));
                }
            }
        }
    }
    None
}

fn cycle_finding(cycle: &[String], edges: &BTreeMap<(String, String), EdgeWitness>) -> ConcFinding {
    let mut parts = Vec::new();
    let n = cycle.len();
    for i in 0..n {
        let from = &cycle[i];
        let to = &cycle[(i + 1) % n];
        let w = &edges[&(from.clone(), to.clone())];
        let via = if w.chain.is_empty() {
            String::new()
        } else {
            format!(" via {}", w.chain.join(" → "))
        };
        parts.push(format!(
            "`{from}` → `{to}` (fn `{}`, {}:{}{via})",
            w.function, w.file, w.line
        ));
    }
    let first = &edges[&(cycle[0].clone(), cycle[1 % cycle.len()].clone())];
    ConcFinding {
        rule: ConcRule::LockOrderCycle,
        file: first.file.clone(),
        line: first.line,
        function: first.function.clone(),
        detail: format!(
            "potential deadlock: lock-acquisition-order cycle {}",
            parts.join("; ")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(src: &str) -> Vec<ConcFinding> {
        audit_sources(
            &[("t.rs".to_string(), src.to_string())],
            &AuditConfig::default(),
        )
    }

    #[test]
    fn multiline_let_guard_is_tracked() {
        // The old line-based pass required `let … .lock();` on one line.
        let src = "fn f(&self) {\n    let st = self\n        .state\n        .lock();\n    self.svc.execute(&req);\n}\n";
        let got = audit(src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, ConcRule::BlockingUnderGuard);
        assert_eq!(got[0].line, 5);
    }

    #[test]
    fn if_let_guard_is_tracked() {
        let src = "fn f(&self) {\n    if let Ok(g) = self.m.lock() {\n        self.svc.execute(&req);\n    }\n    self.svc.execute(&req);\n}\n";
        let got = audit(src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(
            (got[0].rule, got[0].line),
            (ConcRule::BlockingUnderGuard, 3)
        );
    }

    #[test]
    fn helper_returned_guard_is_tracked() {
        let src = "fn acquire(&self) -> MutexGuard<'_, T> {\n    self.inner.lock()\n}\nfn f(&self) {\n    let g = self.acquire();\n    self.svc.execute(&req);\n}\n";
        let got = audit(src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(
            (got[0].rule, got[0].line),
            (ConcRule::BlockingUnderGuard, 6)
        );
    }

    #[test]
    fn drop_shadowing_and_scopes_release_guards() {
        let src = "fn f(&self) {\n    let g = self.m.lock();\n    drop(g);\n    self.svc.execute(&req);\n    { let h = self.m.lock(); }\n    self.svc.execute(&req);\n    let _ = self.m.lock();\n    self.svc.execute(&req);\n}\n";
        assert!(audit(src).is_empty(), "{:?}", audit(src));
    }

    #[test]
    fn zero_arg_join_is_blocking_but_separator_join_is_not() {
        let src = "fn f(&self) {\n    let w = self.workers.lock();\n    let s = parts.join(\", \");\n    let sch = left.join(right);\n    let _r = h.join();\n}\n";
        let got = audit(src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].detail.contains("join"), "{got:?}");
        assert_eq!(got[0].line, 5);
    }

    #[test]
    fn thread_sleep_qualified_only() {
        let src = "fn f(&self) {\n    let g = self.m.lock();\n    self.waiter.sleep();\n    thread::sleep(d);\n}\n";
        let got = audit(src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].line, 4);
    }

    #[test]
    fn naked_condvar_wait_flagged_looped_wait_ok() {
        let src = "fn good(&self) {\n    let mut slot = self.m.lock();\n    loop {\n        if done { break; }\n        self.cv.wait(&mut slot);\n    }\n}\nfn bad(&self) {\n    let mut slot = self.m.lock();\n    self.cv.wait(&mut slot);\n}\n";
        let got = audit(src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!((got[0].rule, got[0].line), (ConcRule::NakedCondvarWait, 10));
    }

    #[test]
    fn condvar_wait_is_not_resolved_as_a_call() {
        // `fn wait` acquires a lock; `cv.wait(&mut g)` must not create
        // an order edge into it (that would fabricate a cycle).
        let src = "fn wait(&self) -> u64 {\n    let st = self.state.lock();\n    st.v\n}\nfn pump(&self) {\n    let mut slot = self.slot.lock();\n    while slot.is_none() {\n        self.cv.wait(&mut slot);\n    }\n}\nfn other(&self) {\n    let st = self.state.lock();\n    let s = self.slot.lock();\n}\n";
        assert!(audit(src).is_empty(), "{:?}", audit(src));
    }

    #[test]
    fn lock_order_cycle_detected_across_calls() {
        let src = "fn a(&self) {\n    let g = self.m1.lock();\n    self.helper_b();\n}\nfn helper_b(&self) {\n    let h = self.m2.lock();\n}\nfn c(&self) {\n    let g = self.m2.lock();\n    let direct = self.m1.lock();\n}\n";
        let got = audit(src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, ConcRule::LockOrderCycle);
        assert!(
            got[0].detail.contains("m1") && got[0].detail.contains("m2"),
            "{got:?}"
        );
        assert!(got[0].detail.contains("helper_b"), "chain named: {got:?}");
    }

    #[test]
    fn temp_guard_chain_is_flagged() {
        let src = "fn f(&self) {\n    self.state.lock().execute(&req);\n    let v = self.services.read().get(name).cloned();\n    v.execute(&req);\n}\n";
        let got = audit(src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].line, 2);
    }
}
