//! A line-numbered token stream over stripped Rust source.
//!
//! The concurrency auditor ([`crate::conc`]) needs to see *structure*
//! (statement boundaries, call chains, patterns like `if let Ok(g) =
//! m.lock()`) that the old line-based lint could not: guards bound
//! across line breaks, `if let` bindings, and helper-returned guards
//! were all invisible to it. This module lexes source that has already
//! been through [`crate::lint::strip_source`] /
//! [`crate::lint::strip_tests`] (comments, literals and test-module
//! bodies blanked, line structure preserved) into a flat token vector
//! where every token knows its 1-based line.
//!
//! The lexer is deliberately small: identifiers, numbers, blanked
//! string/char literals, lifetimes, and punctuation (with `::`, `->`
//! and `=>` fused, so path and arrow parsing stays trivial). That is
//! enough for the auditor's pattern matching; it is not a general Rust
//! lexer.

/// One lexed token: its text and the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Tok {
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True when the token is an identifier or keyword.
    pub fn is_ident(&self) -> bool {
        self.text
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
    }
}

/// Lex stripped source (see module docs) into tokens.
pub(crate) fn lex(stripped: &str) -> Vec<Tok> {
    let chars: Vec<char> = stripped.chars().collect();
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '"' {
            // Blanked string literal: body is spaces/newlines; scan to
            // the closing quote, keeping the line count honest.
            let start_line = line;
            let mut j = i + 1;
            while j < chars.len() && chars[j] != '"' {
                if chars[j] == '\n' {
                    line += 1;
                }
                j += 1;
            }
            out.push(Tok {
                text: "\"\"".to_string(),
                line: start_line,
            });
            i = j + 1;
            continue;
        }
        if c == '\'' {
            // Blanked char literal ('…') vs lifetime ('a). strip_source
            // keeps both quote chars of a literal; a lifetime has no
            // closing quote nearby.
            let close = (i + 1..chars.len().min(i + 5)).find(|&j| chars[j] == '\'');
            if let Some(j) = close {
                out.push(Tok {
                    text: "''".to_string(),
                    line,
                });
                i = j + 1;
            } else {
                let mut j = i + 1;
                while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                out.push(Tok {
                    text: chars[i..j].iter().collect(),
                    line,
                });
                i = j;
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            out.push(Tok {
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            // Integer-ish run; `1.5` lexes as three tokens, which is
            // fine for the auditor's purposes.
            let mut j = i + 1;
            while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            out.push(Tok {
                text: chars[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Punctuation: fuse the pairs the auditor parses structurally.
        let next = chars.get(i + 1).copied();
        let fused = match (c, next) {
            (':', Some(':')) => Some("::"),
            ('-', Some('>')) => Some("->"),
            ('=', Some('>')) => Some("=>"),
            _ => None,
        };
        if let Some(f) = fused {
            out.push(Tok {
                text: f.to_string(),
                line,
            });
            i += 2;
        } else {
            out.push(Tok {
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }
    out
}

/// Index of the matching close delimiter for the open delimiter at
/// `open` (`(`/`)`, `{`/`}`, `[`/`]` — all three kinds tracked
/// together, so mixed nesting works). `None` when unbalanced.
pub(crate) fn matching(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "(" | "{" | "[" => depth += 1,
            ")" | "}" | "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint::strip_source;

    fn texts(src: &str) -> Vec<String> {
        lex(&strip_source(src))
            .into_iter()
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn lexes_idents_paths_and_arrows() {
        assert_eq!(
            texts("fn f(x: &mut T) -> A::B { x => 1 }"),
            [
                "fn", "f", "(", "x", ":", "&", "mut", "T", ")", "->", "A", "::", "B", "{", "x",
                "=>", "1", "}"
            ]
        );
    }

    #[test]
    fn line_numbers_survive_strings_and_comments() {
        let toks = lex(&strip_source(
            "let a = \"multi\nline\";\n// gone\nb.lock();",
        ));
        let lock = toks.iter().find(|t| t.text == "lock").unwrap();
        assert_eq!(lock.line, 4);
        let a = toks.iter().find(|t| t.text == "a").unwrap();
        assert_eq!(a.line, 1);
    }

    #[test]
    fn lifetimes_and_char_literals_are_distinct() {
        assert_eq!(
            texts("fn f<'a>(c: char) { let x = 'y'; }"),
            [
                "fn", "f", "<", "'a", ">", "(", "c", ":", "char", ")", "{", "let", "x", "=", "''",
                ";", "}"
            ]
        );
    }

    #[test]
    fn matching_tracks_mixed_nesting() {
        let toks = lex("{ a(b[c]) }");
        assert_eq!(matching(&toks, 0), Some(toks.len() - 1));
        assert_eq!(matching(&toks, 2), Some(7));
    }
}
