#![deny(missing_docs)]

//! Static analysis for WSQ/DSQ.
//!
//! Four machine-checked safety nets over the paper's correctness story:
//!
//! - [`verify()`] / [`verify_async`] ([`mod@verify`]): a bottom-up
//!   abstract interpretation over [`PhysPlan`] computing the
//!   may-be-placeholder attribute set at every operator, rejecting plans
//!   that violate the clash rules of §4.5.2 or the structural invariants
//!   of ReqSync placement — and, via [`verify::verify_bounds`], a
//!   resource-bound pass proving the symbolic peaks of ReqSync
//!   buffering, in-flight calls and prefetch references stay within the
//!   caps stamped at plan time. Installed as a debug-assert gate after
//!   `asyncify` via [`install_plan_gate`].
//! - [`conc`]: the concurrency auditor — token-based guard tracking,
//!   condvar discipline, and an inter-procedural lock-acquisition-order
//!   graph with potential-deadlock (cycle) detection, run over the
//!   engine/pump/obs/websim sources by `cargo xtask lint`.
//! - [`models`]: deterministic-schedule (loom-style) models of the
//!   ReqPump/cache concurrency hot paths, explored exhaustively by the
//!   in-tree `schedcheck` shim.
//! - [`lint`]: source-level lints (panic-site burn-down budget) behind
//!   `cargo xtask lint`.
//!
//! The [`mutate`] module seeds plan corruptions so the test suite can
//! prove the verifier rejects each class of invalid plan.

pub mod conc;
pub mod lint;
pub mod models;
pub mod mutate;
mod tokens;
pub mod verify;

pub use mutate::{apply as apply_mutation, Mutation, ALL_MUTATIONS};
pub use verify::{
    verify, verify_async, verify_bounds, Bound, Bounds, Report, Rule, VerifyError, Violation,
};

use wsq_engine::plan::PhysPlan;

/// Install [`verify_async`] + [`verify_bounds`] as the engine's
/// post-`asyncify` plan gate (checked in debug builds only — see
/// `wsq_engine::verify_gate`). Idempotent; called by `Wsq::build`.
pub fn install_plan_gate() {
    wsq_engine::verify_gate::install(gate);
}

fn gate(plan: &PhysPlan, declared_cap: Option<usize>) -> Result<(), String> {
    verify_async(plan).map_err(|e| e.to_string())?;
    verify_bounds(plan, declared_cap).map_err(|e| e.to_string())?;
    Ok(())
}
