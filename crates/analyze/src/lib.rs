#![deny(missing_docs)]

//! Static analysis for WSQ/DSQ.
//!
//! Three machine-checked safety nets over the paper's correctness story:
//!
//! - [`verify()`] / [`verify_async`] ([`mod@verify`]): a bottom-up
//!   abstract interpretation over [`PhysPlan`] computing the
//!   may-be-placeholder attribute set at every operator, rejecting plans
//!   that violate the clash rules of §4.5.2 or the structural invariants
//!   of ReqSync placement. Installed as a debug-assert gate after
//!   `asyncify` via [`install_plan_gate`].
//! - [`models`]: deterministic-schedule (loom-style) models of the
//!   ReqPump/cache concurrency hot paths, explored exhaustively by the
//!   in-tree `schedcheck` shim.
//! - [`lint`]: source-level lints (panic sites, locks held across
//!   backend calls) behind `cargo xtask lint`.
//!
//! The [`mutate`] module seeds plan corruptions so the test suite can
//! prove the verifier rejects each class of invalid plan.

pub mod lint;
pub mod models;
pub mod mutate;
pub mod verify;

pub use mutate::{apply as apply_mutation, Mutation, ALL_MUTATIONS};
pub use verify::{verify, verify_async, Report, Rule, VerifyError, Violation};

use wsq_engine::plan::PhysPlan;

/// Install [`verify_async`] as the engine's post-`asyncify` plan gate
/// (checked in debug builds only — see
/// `wsq_engine::verify_gate`). Idempotent; called by `Wsq::build`.
pub fn install_plan_gate() {
    wsq_engine::verify_gate::install(gate);
}

fn gate(plan: &PhysPlan) -> Result<(), String> {
    match verify_async(plan) {
        Ok(_) => Ok(()),
        Err(e) => Err(e.to_string()),
    }
}
