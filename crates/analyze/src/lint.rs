//! Source-level lints for the engine/pump hot paths, run by
//! `cargo xtask lint` (and CI).
//!
//! One pass over non-test Rust sources: **panic sites** — count
//! `.unwrap()` / `.expect(` occurrences per file. The xtask compares
//! the counts against a checked-in allowlist that may only shrink
//! (burn-down): new panic sites in `crates/engine` and `crates/pump`
//! fail CI.
//!
//! The stripping machinery here ([`strip_source`] / [`strip_tests`])
//! blanks comments, string/char literals, and `#[cfg(test)] mod`
//! bodies while preserving line structure, so counts and line numbers
//! track real code. It also feeds the token lexer behind the
//! concurrency auditor ([`crate::conc`]), which replaced the old
//! line-based lock-across-backend-call check with real guard tracking
//! (`if let` bindings, helper-returned guards, shadowing, early
//! `drop`) plus condvar and lock-order rules.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lint result for one `.rs` file.
#[derive(Debug, Clone)]
pub struct FileLint {
    /// Path relative to the scan root's parent (e.g.
    /// `crates/engine/src/db.rs`).
    pub path: String,
    /// `.unwrap()` occurrences in non-test code.
    pub unwraps: usize,
    /// `.expect(` occurrences in non-test code.
    pub expects: usize,
}

impl FileLint {
    /// Panic sites in this file.
    pub fn panic_sites(&self) -> usize {
        self.unwraps + self.expects
    }
}

/// Recursively lint every non-test `.rs` file under `root`; paths in
/// the result are reported relative to `strip_prefix`.
pub fn scan_dir(root: &Path, strip_prefix: &Path) -> io::Result<Vec<FileLint>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for f in files {
        // Files named `tests.rs` are `#[cfg(test)] mod tests;`
        // companions by repo convention.
        if f.file_name().is_some_and(|n| n == "tests.rs") {
            continue;
        }
        let src = fs::read_to_string(&f)?;
        let rel = f
            .strip_prefix(strip_prefix)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        out.push(lint_source(&src, &rel));
    }
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint one source text (exposed for the self-tests).
pub fn lint_source(src: &str, path: &str) -> FileLint {
    let stripped = strip_tests(&strip_source(src));
    FileLint {
        path: path.to_string(),
        unwraps: stripped.matches(".unwrap()").count(),
        expects: stripped.matches(".expect(").count(),
    }
}

/// Blank out comments and string/char literals, preserving line
/// structure so later passes report correct line numbers.
pub fn strip_source(src: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut out = String::with_capacity(src.len());
    let mut st = St::Code;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match st {
            St::Code => match c {
                '/' if next == Some('/') => {
                    st = St::LineComment;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    st = St::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '"' => {
                    st = St::Str;
                    out.push('"');
                }
                'r' if next == Some('"') || next == Some('#') => {
                    // Possible raw string r"…" / r#"…"#.
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // Char literal vs lifetime: '\x' or 'x' followed by
                    // a closing quote is a literal.
                    if next == Some('\\') || bytes.get(i + 2) == Some(&'\'') {
                        st = St::Char;
                        out.push('\'');
                    } else {
                        out.push(c); // lifetime
                    }
                }
                _ => out.push(c),
            },
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::BlockComment(depth) => {
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                if c == '*' && next == Some('/') {
                    out.push(' ');
                    i += 2;
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    continue;
                }
                if c == '/' && next == Some('*') {
                    out.push(' ');
                    i += 2;
                    st = St::BlockComment(depth + 1);
                    continue;
                }
            }
            St::Str => match c {
                '\\' => {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '"' => {
                    st = St::Code;
                    out.push('"');
                }
                '\n' => out.push('\n'),
                _ => out.push(' '),
            },
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if bytes.get(i + 1 + k as usize) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes {
                            out.push(' ');
                        }
                        i += 1 + hashes as usize;
                        st = St::Code;
                        continue;
                    }
                }
                if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::Char => match c {
                '\\' => {
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '\'' => {
                    st = St::Code;
                    out.push('\'');
                }
                _ => out.push(' '),
            },
        }
        i += 1;
    }
    out
}

/// Blank out `#[cfg(test)] mod … { … }` bodies (source must already be
/// comment/string-stripped so brace matching is reliable).
pub fn strip_tests(stripped: &str) -> String {
    let mut out = stripped.to_string();
    let mut search_from = 0;
    while let Some(rel) = out[search_from..].find("#[cfg(test)]") {
        let attr_at = search_from + rel;
        let after_attr = attr_at + "#[cfg(test)]".len();
        // Only blank module bodies: `mod` must be the next token(s);
        // other cfg(test) items (use, fn) are already inside one.
        let tail = &out[after_attr..];
        let trimmed = tail.trim_start();
        if !trimmed.starts_with("mod") {
            search_from = after_attr;
            continue;
        }
        let Some(brace_rel) = tail.find('{') else {
            search_from = after_attr;
            continue;
        };
        let body_start = after_attr + brace_rel;
        let mut depth = 0usize;
        let mut end = None;
        for (i, c) in out[body_start..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(body_start + i);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(end) = end else {
            search_from = after_attr;
            continue;
        };
        let blanked: String = out[attr_at..=end]
            .chars()
            .map(|c| if c == '\n' { '\n' } else { ' ' })
            .collect();
        out.replace_range(attr_at..=end, &blanked);
        search_from = attr_at + blanked.len();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_comments_strings_and_test_mods() {
        let src = r#"
fn a() {
    // x.unwrap() in a comment
    let s = "x.unwrap() in a string";
    /* x.unwrap() in a block comment */
    s.unwrap();
}
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); y.unwrap(); }
}
"#;
        let lint = lint_source(src, "a.rs");
        assert_eq!(lint.unwraps, 1, "only the real call site counts");
        assert_eq!(lint.expects, 0);
    }

    #[test]
    fn char_literals_and_lifetimes_survive() {
        let src =
            "fn f<'a>(x: &'a str) -> char { let c = '\"'; c }\nfn g() { v.expect(\"msg\"); }\n";
        let lint = lint_source(src, "b.rs");
        assert_eq!(lint.expects, 1);
    }
}
