//! Deterministic-schedule models of the PR-1 concurrency hot paths.
//!
//! Each model re-states one protocol from `crates/pump` / `crates/websim`
//! in terms of [`schedcheck`] primitives and lets the checker explore
//! **every** thread interleaving reachable from its synchronization
//! points. The models mirror the real code shape (same lock boundaries,
//! same publish orders) rather than calling into it — the real modules
//! spawn OS worker threads and sleep on wall-clock deadlines, which a
//! deterministic scheduler cannot control.
//!
//! What each model proves (within exhaustive bounds — see
//! [`Stats::complete`](schedcheck::Stats)):
//!
//! - [`targeted_wakeup_model`]: ReqPump's `Waiter` protocol (register
//!   interest under the state lock → sleep on a private slot; `complete`
//!   publishes the result *then* wakes interested waiters outside the
//!   lock) never loses a wakeup, never delivers twice into one slot, and
//!   never wakes a waiter for a call whose result is absent.
//! - [`batched_drain_model`]: the `take_completed` bulk-drain loop that
//!   `ReqSyncExec` runs processes every completion exactly once and
//!   terminates under every schedule.
//! - [`stall_resume_model`]: the admission-control handshake a *capped*
//!   ReqSync runs (DESIGN.md §11) — admit until full, then alternate
//!   `take_completed` drains with `wait_any` until the low-water mark —
//!   never loses a wakeup (even when the pump completes the last
//!   pending call exactly as the scan stalls), never patches twice,
//!   never exceeds the cap, and cannot deadlock at `cap == 1`.
//! - [`window_flush_model`]: the submission-window flush path (pump.rs
//!   `window_batches` + event-loop dispatch) — a fill-to-window flusher
//!   racing a timer-wake flusher over one shared queue, with completions
//!   waking a waiter: no request launches twice, the waiter never misses
//!   its wakeup, and every schedule terminates (no deadlock, no
//!   stranded tail below the window size).
//! - [`single_flight_model`]: the cache's Ready/Pending promotion elects
//!   exactly one leader per key; followers coalesce onto the leader's
//!   flight and observe its published value.
//! - [`leader_failure_model`]: a failed leader removes the Pending entry
//!   (no poisoning): concurrent followers see the error, but the next
//!   request elects a fresh leader and succeeds.
//! - [`trace_ring_model`] / [`trace_ring_overwrite_model`]: the obs
//!   trace ring's reserve-then-write protocol (`crates/obs/trace.rs`)
//!   loses nothing below capacity, keeps exactly the newest events at
//!   capacity, reports the dropped count exactly, and never shows a
//!   concurrent snapshot reader a torn or unsorted view.
//! - [`adaptive_depth_model`]: the PR-6 `AdaptiveDepth` controller
//!   resizing the prefetch lookahead concurrently with the refill loop
//!   and the completer — the lookahead never exceeds `hint.depth`, the
//!   target stays in `[1, hint]`, and no wakeup is lost even when a
//!   shrink lands while the lookahead is full.

use schedcheck::sync::{Condvar, Mutex};
use schedcheck::{check_with, thread, Config, Stats};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Exploration bounds for all models: small protocols, so the schedule
/// trees exhaust well inside these caps.
fn bounds() -> Config {
    Config {
        max_schedules: 50_000,
        max_steps: 5_000,
    }
}

// ---------------------------------------------------------------------
// Model 1: ReqPump targeted wakeups (pump.rs `Waiter` / `complete`).
// ---------------------------------------------------------------------

/// One blocked `wait_any` caller, exactly as in `pump.rs`: a private
/// slot + condvar; `wake` is write-once.
struct Waiter {
    slot: Mutex<Option<u64>>,
    cv: Condvar,
    /// Deliveries that actually landed (for the no-double-delivery
    /// assertion; the real code has no such counter).
    delivered: Mutex<u32>,
}

impl Waiter {
    fn new() -> Waiter {
        Waiter {
            slot: Mutex::new(None),
            cv: Condvar::new(),
            delivered: Mutex::new(0),
        }
    }

    fn wake(&self, cid: u64) {
        let mut slot = self.slot.lock();
        if slot.is_none() {
            *slot = Some(cid);
            let mut d = self.delivered.lock();
            *d += 1;
            assert!(*d <= 1, "double delivery into one waiter slot");
            self.cv.notify_one();
        }
    }

    fn sleep(&self) -> u64 {
        let mut slot = self.slot.lock();
        loop {
            if let Some(cid) = *slot {
                return cid;
            }
            slot = self.cv.wait(slot);
        }
    }
}

/// Shared pump state: completed results and per-call interest lists,
/// both under one lock, as in `pump.rs::State`.
#[derive(Default)]
struct PumpState {
    results: BTreeMap<u64, u64>,
    interest: BTreeMap<u64, Vec<Arc<Waiter>>>,
}

struct MiniPump {
    state: Mutex<PumpState>,
}

impl MiniPump {
    fn new() -> MiniPump {
        MiniPump {
            state: Mutex::new(PumpState::default()),
        }
    }

    /// `pump.rs::ReqPump::wait_any`: fast-path check and interest
    /// registration under one lock acquisition, then sleep, then
    /// deregister.
    fn wait_any(&self, calls: &[u64]) -> u64 {
        let waiter = {
            let mut st = self.state.lock();
            if let Some(&done) = calls.iter().find(|c| st.results.contains_key(c)) {
                return done;
            }
            let waiter = Arc::new(Waiter::new());
            for &c in calls {
                st.interest.entry(c).or_default().push(waiter.clone());
            }
            waiter
        };
        let cid = waiter.sleep();
        let mut st = self.state.lock();
        for &c in calls {
            if let Some(list) = st.interest.get_mut(&c) {
                list.retain(|w| !Arc::ptr_eq(w, &waiter));
                if list.is_empty() {
                    st.interest.remove(&c);
                }
            }
        }
        cid
    }

    /// `pump.rs::complete`: publish the result and detach the interest
    /// list under the lock; wake the waiters outside it.
    fn complete(&self, cid: u64, value: u64) {
        let waiters = {
            let mut st = self.state.lock();
            st.results.insert(cid, value);
            st.interest.remove(&cid).unwrap_or_default()
        };
        for w in waiters {
            w.wake(cid);
        }
    }

    fn take_completed(&self, calls: &[u64]) -> Vec<(u64, u64)> {
        let st = self.state.lock();
        calls
            .iter()
            .filter_map(|c| st.results.get(c).map(|v| (*c, *v)))
            .collect()
    }
}

/// No lost wakeup, no double delivery, no phantom wake: one waiter on
/// `{1, 2}` races two completer threads.
pub fn targeted_wakeup_model() -> Stats {
    check_with(bounds(), || {
        let pump = Arc::new(MiniPump::new());
        let completers: Vec<_> = [1u64, 2u64]
            .into_iter()
            .map(|cid| {
                let p = pump.clone();
                thread::spawn(move || p.complete(cid, cid * 10))
            })
            .collect();
        let got = pump.wait_any(&[1, 2]);
        // The wake must name a call whose result is actually published
        // (no phantom wakeup), and the value must be the completer's.
        let st = pump.state.lock();
        assert_eq!(st.results.get(&got), Some(&(got * 10)), "phantom wakeup");
        drop(st);
        for c in completers {
            c.join();
        }
        // Both results present; no interest entry leaked.
        let st = pump.state.lock();
        assert_eq!(st.results.len(), 2, "a completion vanished");
        assert!(st.interest.is_empty(), "leaked interest registration");
    })
}

/// The `ReqSyncExec::drain_completions` shape: block on `wait_any`,
/// bulk-drain with `take_completed`, repeat until all calls are
/// patched. Every completion is processed exactly once.
pub fn batched_drain_model() -> Stats {
    check_with(bounds(), || {
        let pump = Arc::new(MiniPump::new());
        let completers: Vec<_> = [1u64, 2u64]
            .into_iter()
            .map(|cid| {
                let p = pump.clone();
                thread::spawn(move || p.complete(cid, cid + 100))
            })
            .collect();
        let mut pending: Vec<u64> = vec![1, 2];
        let mut processed: BTreeMap<u64, u64> = BTreeMap::new();
        while !pending.is_empty() {
            let _woke = pump.wait_any(&pending);
            let drained = pump.take_completed(&pending);
            assert!(
                !drained.is_empty(),
                "wait_any returned but the drain found nothing"
            );
            for (cid, v) in drained {
                // Exactly-once: pending still contains the call, and we
                // have not patched it before.
                assert!(
                    processed.insert(cid, v).is_none(),
                    "double delivery of call {cid}"
                );
                pending.retain(|c| *c != cid);
            }
        }
        assert_eq!(processed.len(), 2);
        assert_eq!(processed[&1], 101);
        assert_eq!(processed[&2], 102);
        for c in completers {
            c.join();
        }
    })
}

/// The capped `ReqSyncExec` admission loop (`stall_until_low_water`),
/// at the real code's exact synchronization points: admit one call per
/// child pull; at `cap` buffered, alternate a `take_completed` drain
/// with `wait_any` until occupancy reaches the low-water mark
/// (`cap / 2`); after the child is exhausted, drain the tail the same
/// way. Completer threads race the whole loop (`split` uses two, so
/// completion order itself is explored adversarially).
///
/// The checker proves, over every interleaving: every call is patched
/// exactly once, occupancy never exceeds the cap, and the loop always
/// terminates — in particular the stall cannot miss the completion of
/// its last pending call (`wait_any`'s fast path re-checks `results`
/// under the same lock that registers interest), and `cap == 1`, the
/// tightest setting, admits → waits → drains without deadlock.
pub fn stall_resume_model(cap: usize, split: bool) -> Stats {
    fn drain(pump: &MiniPump, buffered: &mut Vec<u64>, processed: &mut BTreeMap<u64, u64>) {
        for (cid, v) in pump.take_completed(buffered) {
            assert!(processed.insert(cid, v).is_none(), "double patch of {cid}");
            buffered.retain(|c| *c != cid);
        }
    }
    check_with(bounds(), move || {
        let pump = Arc::new(MiniPump::new());
        // One completer finishing three calls in order, or — to explore
        // completion *order* adversarially without exploding the
        // schedule tree — two completers racing over one call each.
        let jobs: Vec<Vec<u64>> = if split {
            vec![vec![1], vec![2]]
        } else {
            vec![vec![1, 2, 3]]
        };
        let n = if split { 2u64 } else { 3u64 };
        let completers: Vec<_> = jobs
            .into_iter()
            .map(|cids| {
                let p = pump.clone();
                thread::spawn(move || {
                    for cid in cids {
                        p.complete(cid, cid + 100);
                    }
                })
            })
            .collect();
        let mut buffered: Vec<u64> = Vec::new();
        let mut processed: BTreeMap<u64, u64> = BTreeMap::new();
        let mut high_water = 0usize;
        for cid in 1..=n {
            buffered.push(cid);
            high_water = high_water.max(buffered.len());
            if buffered.len() >= cap {
                let low = cap / 2;
                loop {
                    drain(&pump, &mut buffered, &mut processed);
                    if buffered.len() <= low {
                        break;
                    }
                    pump.wait_any(&buffered);
                }
            }
        }
        while !buffered.is_empty() {
            pump.wait_any(&buffered);
            drain(&pump, &mut buffered, &mut processed);
        }
        for c in completers {
            c.join();
        }
        assert_eq!(processed.len(), n as usize, "a call was never patched");
        for cid in 1..=n {
            assert_eq!(processed.get(&cid), Some(&(cid + 100)));
        }
        assert!(
            high_water <= cap,
            "occupancy {high_water} exceeded the cap {cap}"
        );
    })
}

// ---------------------------------------------------------------------
// Model: submission-window flush (pump.rs event-loop windowed dispatch).
// ---------------------------------------------------------------------

/// The launch queue at the event loop's lock boundary: calls enter under
/// the state lock; flushers drain under the same lock and dispatch
/// outside it (`window_batches` → `execute_batch`).
struct WindowQueue {
    queue: Vec<u64>,
    producer_done: bool,
}

/// The windowed dispatch protocol, at the real code's synchronization
/// points: drains are exclusive (queue pops under the state lock — the
/// real `pop_launchable` marks a call InFlight under that lock, so no
/// two drains can claim the same call), dispatch happens unlocked, and
/// completions are published before the waiter condvar is notified.
struct MiniBatcher {
    state: Mutex<WindowQueue>,
    work_cv: Condvar,
    window: usize,
    /// Launch counts and published results (one lock: the model checks
    /// ordering of drains and wakeups, not counter contention).
    launched: Mutex<(BTreeMap<u64, u32>, BTreeMap<u64, u64>)>,
    done_cv: Condvar,
}

impl MiniBatcher {
    fn new(window: usize) -> MiniBatcher {
        MiniBatcher {
            state: Mutex::new(WindowQueue {
                queue: Vec::new(),
                producer_done: false,
            }),
            work_cv: Condvar::new(),
            window,
            launched: Mutex::new((BTreeMap::new(), BTreeMap::new())),
            done_cv: Condvar::new(),
        }
    }

    /// `ReqPump::register`: enqueue under the lock, then notify.
    fn enqueue(&self, cid: u64) {
        let mut st = self.state.lock();
        st.queue.push(cid);
        self.work_cv.notify_all();
    }

    fn finish_producing(&self) {
        let mut st = self.state.lock();
        st.producer_done = true;
        self.work_cv.notify_all();
    }

    /// Fill-to-window flusher: sleeps until a full window is available,
    /// but once production stops it flushes the remaining tail too — a
    /// partial window must never be stranded waiting for fills that will
    /// not come.
    fn fill_flush(&self) {
        loop {
            let batch: Vec<u64> = {
                let mut st = self.state.lock();
                while st.queue.len() < self.window && !st.producer_done {
                    st = self.work_cv.wait(st);
                }
                if st.queue.is_empty() {
                    return; // producer_done and nothing left
                }
                let take = st.queue.len().min(self.window);
                st.queue.drain(..take).collect()
            };
            self.dispatch(&batch);
        }
    }

    /// Timer-wake flusher: the event loop waking on a deadline drains
    /// whatever is queued, full window or not. A deadline wake does not
    /// block on the work condvar, so the model is a single drain the
    /// scheduler places at an arbitrary point in the race.
    fn timer_flush(&self) {
        let batch: Vec<u64> = {
            let mut st = self.state.lock();
            let take = st.queue.len().min(self.window);
            st.queue.drain(..take).collect()
        };
        if !batch.is_empty() {
            self.dispatch(&batch);
        }
    }

    /// One windowed dispatch plus its completions (collapsed: the model
    /// checks launch/flush ordering, not simulated latency). Results are
    /// published before the wake — the `complete` order.
    fn dispatch(&self, batch: &[u64]) {
        let mut l = self.launched.lock();
        for &cid in batch {
            let n = l.0.entry(cid).or_insert(0);
            *n += 1;
            assert_eq!(*n, 1, "request {cid} launched twice");
            l.1.insert(cid, cid + 100);
        }
        self.done_cv.notify_all();
    }

    /// The blocked caller (`wait_any` shape): the no-lost-wakeup
    /// property is this loop terminating under every schedule.
    fn wait_all(&self, n: usize) {
        let mut l = self.launched.lock();
        while l.1.len() < n {
            l = self.done_cv.wait(l);
        }
    }
}

/// Fill-to-window vs. timer flush racing over one queue while a waiter
/// blocks on completions: 2 requests through a 2-wide window. Schedules
/// where the timer flusher steals one request early leave a sub-window
/// tail of one behind, which the fill flusher must still launch once
/// production stops. Every interleaving launches each request exactly
/// once (drains are exclusive under the state lock), flushes the tail,
/// wakes the waiter, and terminates.
pub fn window_flush_model() -> Stats {
    check_with(bounds(), || {
        let b = Arc::new(MiniBatcher::new(2));
        let fill = {
            let b = b.clone();
            thread::spawn(move || b.fill_flush())
        };
        let timer = {
            let b = b.clone();
            thread::spawn(move || b.timer_flush())
        };
        // The main thread is the producer (registering calls) and then
        // the blocked waiter — the ReqSync side of the real protocol.
        for cid in 1..=2u64 {
            b.enqueue(cid);
        }
        b.finish_producing();
        b.wait_all(2);
        fill.join();
        timer.join();
        let l = b.launched.lock();
        assert_eq!(l.0.len(), 2, "a request was never launched");
        assert!(
            l.0.values().all(|&n| n == 1),
            "a request launched twice: {:?}",
            l.0
        );
        for cid in 1..=2u64 {
            assert_eq!(l.1.get(&cid), Some(&(cid + 100)));
        }
    })
}

// ---------------------------------------------------------------------
// Models 3–4: single-flight cache (websim cache.rs Ready/Pending
// promotion).
// ---------------------------------------------------------------------

/// `cache.rs::Flight`: the latch coalesced followers wait on.
struct Flight {
    outcome: Mutex<Option<Result<u64, ()>>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            outcome: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn publish(&self, r: Result<u64, ()>) {
        let mut o = self.outcome.lock();
        *o = Some(r);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<u64, ()> {
        let mut o = self.outcome.lock();
        loop {
            if let Some(r) = *o {
                return r;
            }
            o = self.done.wait(o);
        }
    }
}

/// One cache shard: a single key's slot is all the model needs.
enum Slot {
    Ready(u64),
    Pending(Arc<Flight>),
}

struct MiniCache {
    shard: Mutex<Option<Slot>>,
    /// Inner-service call count (the single-flight property under test).
    inner_calls: Mutex<u32>,
    /// How many inner calls should fail before succeeding.
    failures_left: Mutex<u32>,
}

impl MiniCache {
    fn new(failures: u32) -> MiniCache {
        MiniCache {
            shard: Mutex::new(None),
            inner_calls: Mutex::new(0),
            failures_left: Mutex::new(failures),
        }
    }

    /// `cache.rs::CachedService::execute` / `lead`, with the same lock
    /// boundaries: decide hit/coalesce/lead under the shard lock; run
    /// the inner call with the lock released; re-take it to publish.
    fn execute(&self) -> Result<u64, ()> {
        let flight = {
            let mut map = self.shard.lock();
            match &*map {
                Some(Slot::Ready(v)) => return Ok(*v),
                Some(Slot::Pending(f)) => f.clone(),
                None => {
                    let f = Arc::new(Flight::new());
                    *map = Some(Slot::Pending(f.clone()));
                    drop(map);
                    return self.lead(f);
                }
            }
        };
        flight.wait()
    }

    fn lead(&self, flight: Arc<Flight>) -> Result<u64, ()> {
        // Inner call, lock-free (the lint in this same crate enforces
        // that shape on the real code).
        let result = {
            let mut calls = self.inner_calls.lock();
            *calls += 1;
            let mut fl = self.failures_left.lock();
            if *fl > 0 {
                *fl -= 1;
                Err(())
            } else {
                Ok(42)
            }
        };
        {
            let mut map = self.shard.lock();
            match result {
                Ok(v) => *map = Some(Slot::Ready(v)),
                // Failure: remove the Pending entry so the next request
                // retries (no poisoning).
                Err(()) => *map = None,
            }
        }
        flight.publish(result);
        result
    }
}

/// Exactly one leader per key: two concurrent executors plus the
/// calling thread all observe the same value, and the inner service
/// runs exactly once.
pub fn single_flight_model() -> Stats {
    check_with(bounds(), || {
        let cache = Arc::new(MiniCache::new(0));
        let t1 = {
            let c = cache.clone();
            thread::spawn(move || c.execute())
        };
        let t2 = {
            let c = cache.clone();
            thread::spawn(move || c.execute())
        };
        let r0 = cache.execute();
        let r1 = t1.join();
        let r2 = t2.join();
        assert_eq!(r0, Ok(42));
        assert_eq!(r1, Ok(42));
        assert_eq!(r2, Ok(42));
        assert_eq!(*cache.inner_calls.lock(), 1, "single-flight violated");
        assert!(
            matches!(*cache.shard.lock(), Some(Slot::Ready(42))),
            "slot not promoted to Ready"
        );
    })
}

/// Leader failure does not poison the key: a concurrent follower may
/// observe the error, but once the failed flight is gone a fresh
/// request elects a new leader and succeeds.
pub fn leader_failure_model() -> Stats {
    check_with(bounds(), || {
        let cache = Arc::new(MiniCache::new(1));
        let racer = {
            let c = cache.clone();
            thread::spawn(move || c.execute())
        };
        let first = cache.execute();
        let raced = racer.join();
        // Each concurrent request either failed with the doomed leader
        // or succeeded (as leader or follower of a retry) — never hangs.
        for r in [first, raced] {
            assert!(r == Err(()) || r == Ok(42), "unexpected result {r:?}");
        }
        // After the dust settles a fresh request must succeed: the
        // failed flight may not leave a poisoned Pending entry behind.
        let settled = cache.execute();
        assert_eq!(settled, Ok(42), "failed leader poisoned the key");
        assert!(matches!(*cache.shard.lock(), Some(Slot::Ready(42))));
        let calls = *cache.inner_calls.lock();
        assert!(
            (2..=3).contains(&calls),
            "expected one failed + one or two successful inner calls, saw {calls}"
        );
    })
}

// ---------------------------------------------------------------------
// Models 5–6: the obs trace ring (crates/obs trace.rs push/snapshot).
// ---------------------------------------------------------------------

/// The ring at `obs::TraceRing`'s exact lock boundaries: reserve a
/// sequence number first (one atomic `fetch_add` in the real code — a
/// mutexed counter here, schedcheck models no atomics), then write slot
/// `seq % capacity` under that slot's own lock, but only if the slot
/// holds nothing newer — a lapped slow writer must never clobber
/// fresher data.
struct MiniRing {
    head: Mutex<u64>,
    /// `(seq, value)` per slot; `None` = never written.
    slots: Vec<Mutex<Option<(u64, u64)>>>,
}

impl MiniRing {
    fn new(capacity: usize) -> MiniRing {
        MiniRing {
            head: Mutex::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    fn push(&self, value: u64) {
        let seq = {
            let mut h = self.head.lock();
            let s = *h;
            *h += 1;
            s
        };
        let mut slot = self.slots[seq as usize % self.slots.len()].lock();
        match *slot {
            // Someone with a newer sequence got here first: drop ours.
            Some((cur, _)) if cur > seq => {}
            _ => *slot = Some((seq, value)),
        }
    }

    /// Exact by construction: every reserved sequence is written exactly
    /// once, so the ring holds the `capacity` newest once it wraps.
    fn dropped(&self) -> u64 {
        self.head.lock().saturating_sub(self.slots.len() as u64)
    }

    fn snapshot_since(&self, pos: u64) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = Vec::new();
        for slot in &self.slots {
            if let Some((seq, v)) = *slot.lock() {
                if seq >= pos {
                    out.push((seq, v));
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// A snapshot's internal invariants, checked at any point in the race:
/// no duplicate sequence numbers, never more events than slots.
fn assert_snapshot_sane(snap: &[(u64, u64)], capacity: usize) {
    assert!(snap.len() <= capacity, "snapshot larger than the ring");
    for pair in snap.windows(2) {
        assert!(pair[0].0 < pair[1].0, "duplicate sequence in snapshot");
    }
}

/// Below capacity nothing is ever lost: two writers push one event
/// each into a 2-slot ring while the main thread snapshots mid-race;
/// every reserved sequence is present afterwards and the drop counter
/// is 0. (The ring is kept at two slots so the schedule tree exhausts;
/// the protocol is slot-local, so width adds no new interleavings.)
pub fn trace_ring_model() -> Stats {
    check_with(bounds(), || {
        let ring = Arc::new(MiniRing::new(2));
        let writers: Vec<_> = [10u64, 20u64]
            .into_iter()
            .map(|value| {
                let r = ring.clone();
                thread::spawn(move || r.push(value))
            })
            .collect();
        // Concurrent reader: whatever prefix of the race it observes
        // must be internally consistent.
        assert_snapshot_sane(&ring.snapshot_since(0), 2);
        for w in writers {
            w.join();
        }
        let snap = ring.snapshot_since(0);
        assert_snapshot_sane(&snap, 2);
        let seqs: Vec<u64> = snap.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![0, 1], "an event was lost below capacity");
        assert_eq!(ring.dropped(), 0);
        // Every written value survived, whatever sequence it drew.
        let mut values: Vec<u64> = snap.iter().map(|(_, v)| *v).collect();
        values.sort_unstable();
        assert_eq!(values, vec![10, 20]);
    })
}

/// At capacity the ring keeps exactly the newest `capacity` events and
/// counts drops exactly: 4 events through 2 slots leave sequences
/// {2, 3} and `dropped() == 2` under **every** interleaving — the
/// seq-guard means even a lapped writer scheduled last cannot resurrect
/// an old event.
pub fn trace_ring_overwrite_model() -> Stats {
    check_with(bounds(), || {
        let ring = Arc::new(MiniRing::new(2));
        let writers: Vec<_> = [10u64, 20u64]
            .into_iter()
            .map(|base| {
                let r = ring.clone();
                thread::spawn(move || {
                    r.push(base);
                    r.push(base + 1);
                })
            })
            .collect();
        assert_snapshot_sane(&ring.snapshot_since(0), 2);
        for w in writers {
            w.join();
        }
        let snap = ring.snapshot_since(0);
        let seqs: Vec<u64> = snap.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![2, 3], "ring must keep exactly the newest events");
        assert_eq!(ring.dropped(), 2, "drop counter must be exact");
        // A window query that starts after the drop horizon sees only
        // its own events.
        assert_eq!(ring.snapshot_since(3).len(), 1);
    })
}

// ---------------------------------------------------------------------
// Model 9: PR-6 adaptive-depth prefetch controller (join.rs
// `Prefetcher` + `AdaptiveDepth` resize racing refill and completion).
// ---------------------------------------------------------------------

/// The prefetch lookahead state the real `Prefetcher` keeps: the
/// current (adaptive) depth target and the outstanding prefetched
/// calls, under one lock with a single condvar for both "a completion
/// freed a slot" and "the controller resized".
struct MiniPrefetcher {
    /// `hint.depth`: the hard ceiling the planner stamped.
    hint: usize,
    state: Mutex<PrefetchState>,
    cv: Condvar,
}

struct PrefetchState {
    /// Adaptive depth target, resized within `[1, hint]`.
    depth: usize,
    /// Prefetched calls not yet completed (the lookahead).
    in_flight: usize,
    issued: usize,
    completed: usize,
    peak_in_flight: usize,
}

impl MiniPrefetcher {
    fn new(hint: usize) -> MiniPrefetcher {
        MiniPrefetcher {
            hint,
            state: Mutex::new(PrefetchState {
                depth: hint,
                in_flight: 0,
                issued: 0,
                completed: 0,
                peak_in_flight: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// The refill loop: top the lookahead up to the *current* depth
    /// target, sleeping whenever it is full, until `n` outer tuples
    /// have been issued.
    fn refill(&self, n: usize) {
        let mut st = self.state.lock();
        loop {
            if st.issued == n {
                return;
            }
            if st.in_flight < st.depth {
                st.issued += 1;
                st.in_flight += 1;
                st.peak_in_flight = st.peak_in_flight.max(st.in_flight);
                assert!(
                    st.in_flight <= self.hint,
                    "lookahead {} exceeded hint.depth {}",
                    st.in_flight,
                    self.hint
                );
                // Issuing registers the call; the completer may now run.
                self.cv.notify_all();
                continue;
            }
            st = self.cv.wait(st);
        }
    }

    /// The pump side: complete every issued call, in issue order.
    fn completer(&self, n: usize) {
        for _ in 0..n {
            let mut st = self.state.lock();
            while st.completed == st.issued {
                st = self.cv.wait(st);
            }
            st.completed += 1;
            st.in_flight -= 1;
            drop(st);
            self.cv.notify_all();
        }
    }

    /// The AdaptiveDepth controller: a shrink (queue delay dominated)
    /// followed by a grow (calls dominated), each clamped to
    /// `[1, hint]` exactly as the real controller clamps, each waking
    /// the refill loop so a grown target takes effect immediately.
    fn resizer(&self) {
        for grow in [false, true] {
            let mut st = self.state.lock();
            st.depth = if grow {
                (st.depth * 2).min(self.hint)
            } else {
                (st.depth / 2).max(1)
            };
            assert!(
                (1..=self.hint).contains(&st.depth),
                "depth target {} escaped [1, {}]",
                st.depth,
                self.hint
            );
            drop(st);
            self.cv.notify_all();
        }
    }
}

/// The adaptive-depth controller resizing concurrently with the refill
/// loop and the completer: the lookahead never exceeds `hint.depth`
/// (even mid-resize), the depth target stays in `[1, hint]`, no wakeup
/// is lost (a shrink that momentarily leaves `in_flight > depth` must
/// still drain and finish), and every schedule terminates with all
/// tuples issued and completed.
pub fn adaptive_depth_model() -> Stats {
    check_with(bounds(), || {
        const TUPLES: usize = 3;
        let p = Arc::new(MiniPrefetcher::new(2));
        let completer = {
            let p = p.clone();
            thread::spawn(move || p.completer(TUPLES))
        };
        let resizer = {
            let p = p.clone();
            thread::spawn(move || p.resizer())
        };
        p.refill(TUPLES);
        completer.join();
        resizer.join();
        let st = p.state.lock();
        assert_eq!((st.issued, st.completed), (TUPLES, TUPLES));
        assert_eq!(st.in_flight, 0, "lookahead must drain");
        assert!(
            st.peak_in_flight <= 2,
            "peak {} above hint",
            st.peak_in_flight
        );
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targeted_wakeup_has_no_lost_or_double_wakeups() {
        let stats = targeted_wakeup_model();
        assert!(stats.complete, "exploration hit the schedule cap");
        assert!(stats.schedules >= 2, "expected multiple interleavings");
    }

    #[test]
    fn batched_drain_delivers_exactly_once() {
        let stats = batched_drain_model();
        assert!(stats.complete, "exploration hit the schedule cap");
        assert!(stats.schedules >= 2, "expected multiple interleavings");
    }

    #[test]
    fn stall_resume_cannot_deadlock_at_cap_one() {
        let stats = stall_resume_model(1, false);
        assert!(stats.complete, "exploration hit the schedule cap");
        assert!(stats.schedules >= 2, "expected multiple interleavings");
    }

    #[test]
    fn stall_resume_loses_no_wakeup_under_adversarial_completion_order() {
        let stats = stall_resume_model(2, true);
        assert!(stats.complete, "exploration hit the schedule cap");
        assert!(stats.schedules >= 2, "expected multiple interleavings");
    }

    #[test]
    fn window_flush_launches_once_and_never_strands_the_tail() {
        let stats = window_flush_model();
        assert!(stats.complete, "exploration hit the schedule cap");
        assert!(stats.schedules >= 2, "expected multiple interleavings");
    }

    #[test]
    fn single_flight_elects_one_leader() {
        let stats = single_flight_model();
        assert!(stats.complete, "exploration hit the schedule cap");
        assert!(stats.schedules >= 2, "expected multiple interleavings");
    }

    #[test]
    fn leader_failure_does_not_poison() {
        let stats = leader_failure_model();
        assert!(stats.complete, "exploration hit the schedule cap");
        assert!(stats.schedules >= 2, "expected multiple interleavings");
    }

    #[test]
    fn trace_ring_loses_nothing_below_capacity() {
        let stats = trace_ring_model();
        assert!(stats.complete, "exploration hit the schedule cap");
        assert!(stats.schedules >= 2, "expected multiple interleavings");
    }

    #[test]
    fn adaptive_depth_resize_races_refill_without_lost_wakeup_or_overrun() {
        let stats = adaptive_depth_model();
        assert!(stats.complete, "exploration hit the schedule cap");
        assert!(stats.schedules >= 2, "expected multiple interleavings");
    }

    #[test]
    fn trace_ring_overwrite_keeps_newest_and_counts_drops_exactly() {
        let stats = trace_ring_overwrite_model();
        assert!(stats.complete, "exploration hit the schedule cap");
        assert!(stats.schedules >= 2, "expected multiple interleavings");
    }
}
