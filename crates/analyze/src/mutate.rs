//! Mutation harness for the placeholder-dataflow verifier.
//!
//! Each [`Mutation`] is a *corruption class*: a small, targeted edit that
//! turns a valid asyncified plan into one violating a specific clash rule
//! or structural invariant. The harness (see `tests/mutations.rs`)
//! asserts that [`crate::verify_async`] rejects every applicable
//! corruption of every base plan — i.e. the verifier actually has teeth,
//! rather than accepting everything.

// Rewrites thread `Result<PhysPlan, PhysPlan>` as rewritten-vs-unchanged
// (both sides carry the tree by value); `Err` is not an error path.
#![allow(clippy::result_large_err)]

use crate::verify::{refs_any, same_ref};
use wsq_common::{Column, DataType, Schema};
use wsq_engine::plan::{EvBinding, PhysPlan};
use wsq_sql::ast::{AggFunc, BinOp, ColumnRef, Expr, Literal};

/// A corruption class. Every variant breaks a specific verifier rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Splice out a ReqSync entirely: its placeholders escape the root.
    DropReqSync,
    /// Remove one attribute from a ReqSync's set: partial coverage.
    StripSyncAttr,
    /// Wrap a ReqSync in a second, identical one: consolidation failure.
    DuplicateReqSync,
    /// Push a carried selection back below its ReqSync: the predicate
    /// reads placeholders (clash case 1).
    SinkCarriedFilter,
    /// Swap a Sort below the ReqSync feeding it (clash case 3 analogue).
    HoistSortBelowSync,
    /// Insert an Aggregate directly under a ReqSync (clash case 3).
    AggregateBelowSync,
    /// Insert a Distinct directly under a ReqSync (clash case 3).
    DistinctBelowSync,
    /// Insert a Limit directly under a ReqSync (clash case 3 analogue).
    LimitBelowSync,
    /// Insert, under a ReqSync, a projection that drops the placeholder
    /// attributes (clash case 2).
    ProjectAwayPlaceholder,
    /// Insert, under a ReqSync, a projection computing over a
    /// placeholder attribute (clash case 1).
    ComputeOverPlaceholder,
    /// Rebind a dependent join's virtual table to a may-be-placeholder
    /// attribute of its outer side (percolation's flush rule).
    BindToPlaceholder,
    /// Replace an AEVScan with a synchronous EVScan (structural).
    DesyncScan,
    /// Forge an AEVScan prefetch depth above its enclosing ReqSync's
    /// admission cap (resource-bound rule: prefetch-exceeds-cap). The
    /// ReqSync is stamped with a cap if it lacks one, so the mutated
    /// plan is exactly "clamp convention violated".
    ForgePrefetchDepth,
    /// Erase the stamped cap from a ReqSync (resource-bound rule:
    /// cap-dropped — caught by `verify_bounds` against the session's
    /// declared cap).
    DropStampedCap,
}

/// Every corruption class, for exhaustive harnesses.
pub const ALL_MUTATIONS: &[Mutation] = &[
    Mutation::DropReqSync,
    Mutation::StripSyncAttr,
    Mutation::DuplicateReqSync,
    Mutation::SinkCarriedFilter,
    Mutation::HoistSortBelowSync,
    Mutation::AggregateBelowSync,
    Mutation::DistinctBelowSync,
    Mutation::LimitBelowSync,
    Mutation::ProjectAwayPlaceholder,
    Mutation::ComputeOverPlaceholder,
    Mutation::BindToPlaceholder,
    Mutation::DesyncScan,
    Mutation::ForgePrefetchDepth,
    Mutation::DropStampedCap,
];

/// Apply `m` to the first applicable site in `plan`; `None` when the
/// plan has no such site.
pub fn apply(plan: &PhysPlan, m: Mutation) -> Option<PhysPlan> {
    let rewrite: &mut dyn FnMut(PhysPlan) -> Result<PhysPlan, PhysPlan> = match m {
        Mutation::DropReqSync => &mut |p| match p {
            PhysPlan::ReqSync { input, .. } => Ok(*input),
            other => Err(other),
        },
        Mutation::StripSyncAttr => &mut |p| match p {
            PhysPlan::ReqSync {
                input,
                attrs,
                mode,
                cap,
            } if !attrs.is_empty() => Ok(PhysPlan::ReqSync {
                input,
                attrs: attrs[1..].to_vec(),
                mode,
                cap,
            }),
            other => Err(other),
        },
        Mutation::DuplicateReqSync => &mut |p| match p {
            PhysPlan::ReqSync {
                input,
                attrs,
                mode,
                cap,
            } => Ok(PhysPlan::ReqSync {
                input: Box::new(PhysPlan::ReqSync {
                    input,
                    attrs: attrs.clone(),
                    mode,
                    cap,
                }),
                attrs,
                mode,
                cap,
            }),
            other => Err(other),
        },
        Mutation::SinkCarriedFilter => &mut |p| match p {
            PhysPlan::Filter { input, predicate }
                if matches!(
                    &*input,
                    PhysPlan::ReqSync { attrs, .. } if refs_any(&predicate, attrs)
                ) =>
            {
                match *input {
                    PhysPlan::ReqSync {
                        input,
                        attrs,
                        mode,
                        cap,
                    } => Ok(PhysPlan::ReqSync {
                        input: Box::new(PhysPlan::Filter { input, predicate }),
                        attrs,
                        mode,
                        cap,
                    }),
                    _ => unreachable!("guard matched ReqSync"),
                }
            }
            other => Err(other),
        },
        Mutation::HoistSortBelowSync => &mut |p| match p {
            PhysPlan::Sort { input, keys } if matches!(&*input, PhysPlan::ReqSync { .. }) => {
                match *input {
                    PhysPlan::ReqSync {
                        input,
                        attrs,
                        mode,
                        cap,
                    } => Ok(PhysPlan::ReqSync {
                        input: Box::new(PhysPlan::Sort { input, keys }),
                        attrs,
                        mode,
                        cap,
                    }),
                    _ => unreachable!("guard matched ReqSync"),
                }
            }
            other => Err(other),
        },
        Mutation::AggregateBelowSync => &mut |p| match p {
            PhysPlan::ReqSync {
                input,
                attrs,
                mode,
                cap,
            } if !attrs.is_empty() => Ok(PhysPlan::ReqSync {
                input: Box::new(PhysPlan::Aggregate {
                    input,
                    group_by: vec![],
                    aggs: vec![(AggFunc::Count, None, "n".to_string())],
                }),
                attrs,
                mode,
                cap,
            }),
            other => Err(other),
        },
        Mutation::DistinctBelowSync => &mut |p| match p {
            PhysPlan::ReqSync {
                input,
                attrs,
                mode,
                cap,
            } if !attrs.is_empty() => Ok(PhysPlan::ReqSync {
                input: Box::new(PhysPlan::Distinct { input }),
                attrs,
                mode,
                cap,
            }),
            other => Err(other),
        },
        Mutation::LimitBelowSync => &mut |p| match p {
            PhysPlan::ReqSync {
                input,
                attrs,
                mode,
                cap,
            } if !attrs.is_empty() => Ok(PhysPlan::ReqSync {
                input: Box::new(PhysPlan::Limit { input, n: 1 }),
                attrs,
                mode,
                cap,
            }),
            other => Err(other),
        },
        Mutation::ProjectAwayPlaceholder => &mut |p| match p {
            PhysPlan::ReqSync {
                input,
                attrs,
                mode,
                cap,
            } if !attrs.is_empty() => {
                let in_schema = input.schema();
                let kept: Vec<&Column> = in_schema
                    .columns()
                    .iter()
                    .filter(|c| {
                        let r = ColumnRef {
                            qualifier: c.qualifier.clone(),
                            name: c.name.clone(),
                        };
                        !attrs.iter().any(|a| same_ref(&r, a))
                    })
                    .collect();
                if kept.is_empty() {
                    return Err(PhysPlan::ReqSync {
                        input,
                        attrs,
                        mode,
                        cap,
                    });
                }
                let items = kept
                    .iter()
                    .map(|c| {
                        (
                            Expr::Column(ColumnRef {
                                qualifier: c.qualifier.clone(),
                                name: c.name.clone(),
                            }),
                            c.name.clone(),
                        )
                    })
                    .collect();
                let schema = Schema::new(
                    kept.iter()
                        .map(|c| Column::new(c.name.clone(), c.dtype))
                        .collect(),
                );
                Ok(PhysPlan::ReqSync {
                    input: Box::new(PhysPlan::Project {
                        input,
                        items,
                        schema,
                    }),
                    attrs,
                    mode,
                    cap,
                })
            }
            other => Err(other),
        },
        Mutation::ComputeOverPlaceholder => &mut |p| match p {
            PhysPlan::ReqSync {
                input,
                attrs,
                mode,
                cap,
            } if !attrs.is_empty() => {
                let victim = attrs[0].clone();
                Ok(PhysPlan::ReqSync {
                    input: Box::new(PhysPlan::Project {
                        input,
                        items: vec![(
                            Expr::binary(
                                BinOp::Eq,
                                Expr::Column(victim),
                                Expr::Literal(Literal::Int(0)),
                            ),
                            "computed".to_string(),
                        )],
                        schema: Schema::new(vec![Column::new("computed", DataType::Int)]),
                    }),
                    attrs,
                    mode,
                    cap,
                })
            }
            other => Err(other),
        },
        Mutation::BindToPlaceholder => &mut |p| match p {
            PhysPlan::DependentJoin { left, right } => match first_aev_attr(&left) {
                Some(attr) => match rebind(*right, attr) {
                    Ok(r) => Ok(PhysPlan::DependentJoin {
                        left,
                        right: Box::new(r),
                    }),
                    Err(r) => Err(PhysPlan::DependentJoin {
                        left,
                        right: Box::new(r),
                    }),
                },
                None => Err(PhysPlan::DependentJoin { left, right }),
            },
            other => Err(other),
        },
        Mutation::DesyncScan => &mut |p| match p {
            PhysPlan::AEVScan(spec) => Ok(PhysPlan::EVScan(spec)),
            other => Err(other),
        },
        Mutation::ForgePrefetchDepth => &mut |p| match p {
            PhysPlan::ReqSync {
                input,
                attrs,
                mode,
                cap,
            } => {
                let forged = cap.unwrap_or(4);
                match forge_depth(*input, forged + 3) {
                    Ok(i) => Ok(PhysPlan::ReqSync {
                        input: Box::new(i),
                        attrs,
                        mode,
                        cap: Some(forged),
                    }),
                    // Not applicable here: rebuild unchanged.
                    Err(i) => Err(PhysPlan::ReqSync {
                        input: Box::new(i),
                        attrs,
                        mode,
                        cap,
                    }),
                }
            }
            other => Err(other),
        },
        Mutation::DropStampedCap => &mut |p| match p {
            PhysPlan::ReqSync {
                input,
                attrs,
                mode,
                cap: Some(_),
            } => Ok(PhysPlan::ReqSync {
                input,
                attrs,
                mode,
                cap: None,
            }),
            other => Err(other),
        },
    };
    rewrite_first(plan.clone(), rewrite).ok()
}

/// First external attribute of an AEVScan whose placeholders are *not*
/// patched inside `plan` itself (no ReqSync between it and this root).
fn first_aev_attr(plan: &PhysPlan) -> Option<ColumnRef> {
    match plan {
        PhysPlan::AEVScan(s) => s.external_attrs().into_iter().next(),
        PhysPlan::ReqSync { .. } => None,
        PhysPlan::Filter { input, .. }
        | PhysPlan::Project { input, .. }
        | PhysPlan::Sort { input, .. }
        | PhysPlan::Aggregate { input, .. }
        | PhysPlan::Distinct { input }
        | PhysPlan::Limit { input, .. } => first_aev_attr(input),
        PhysPlan::DependentJoin { left, right }
        | PhysPlan::NestedLoopJoin { left, right, .. }
        | PhysPlan::CrossProduct { left, right } => {
            first_aev_attr(left).or_else(|| first_aev_attr(right))
        }
        PhysPlan::ParallelDependentJoin { left, .. } => first_aev_attr(left),
        _ => None,
    }
}

/// Stamp `depth` on the first AEVScan reachable without crossing a
/// nested ReqSync (so the mutated scan's *nearest* enclosing ReqSync is
/// the one the caller just capped). `Ok` = forged, `Err` = unchanged.
fn forge_depth(plan: PhysPlan, depth: usize) -> Result<PhysPlan, PhysPlan> {
    use PhysPlan::*;
    match plan {
        AEVScan(mut spec) => {
            spec.prefetch.depth = depth;
            Ok(AEVScan(spec))
        }
        ReqSync { .. } => Err(plan),
        Filter { input, predicate } => match forge_depth(*input, depth) {
            Ok(i) => Ok(Filter {
                input: Box::new(i),
                predicate,
            }),
            Err(i) => Err(Filter {
                input: Box::new(i),
                predicate,
            }),
        },
        Project {
            input,
            items,
            schema,
        } => match forge_depth(*input, depth) {
            Ok(i) => Ok(Project {
                input: Box::new(i),
                items,
                schema,
            }),
            Err(i) => Err(Project {
                input: Box::new(i),
                items,
                schema,
            }),
        },
        DependentJoin { left, right } => match forge_depth(*right, depth) {
            Ok(r) => Ok(DependentJoin {
                left,
                right: Box::new(r),
            }),
            Err(r) => match forge_depth(*left, depth) {
                Ok(l) => Ok(DependentJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                }),
                Err(l) => Err(DependentJoin {
                    left: Box::new(l),
                    right: Box::new(r),
                }),
            },
        },
        other => Err(other),
    }
}

/// Point the spec under a dependent join's right side at `col`.
fn rebind(plan: PhysPlan, col: ColumnRef) -> Result<PhysPlan, PhysPlan> {
    match plan {
        PhysPlan::AEVScan(mut spec) => {
            if spec.bindings.is_empty() {
                spec.bindings.push(EvBinding::Column(col));
            } else {
                spec.bindings[0] = EvBinding::Column(col);
            }
            Ok(PhysPlan::AEVScan(spec))
        }
        PhysPlan::Filter { input, predicate } => match rebind(*input, col) {
            Ok(i) => Ok(PhysPlan::Filter {
                input: Box::new(i),
                predicate,
            }),
            Err(i) => Err(PhysPlan::Filter {
                input: Box::new(i),
                predicate,
            }),
        },
        PhysPlan::ReqSync {
            input,
            attrs,
            mode,
            cap,
        } => match rebind(*input, col) {
            Ok(i) => Ok(PhysPlan::ReqSync {
                input: Box::new(i),
                attrs,
                mode,
                cap,
            }),
            Err(i) => Err(PhysPlan::ReqSync {
                input: Box::new(i),
                attrs,
                mode,
                cap,
            }),
        },
        other => Err(other),
    }
}

/// Pre-order rewrite: apply `f` to the first node it accepts; `Ok` is
/// the rewritten tree, `Err` returns the tree unchanged.
fn rewrite_first(
    plan: PhysPlan,
    f: &mut dyn FnMut(PhysPlan) -> Result<PhysPlan, PhysPlan>,
) -> Result<PhysPlan, PhysPlan> {
    use PhysPlan::*;
    let plan = match f(plan) {
        Ok(new) => return Ok(new),
        Err(p) => p,
    };
    // Descend. Each arm threads the Ok/Err status through unchanged
    // reconstruction.
    macro_rules! unary {
        ($variant:ident, $input:expr, $($field:ident),*) => {{
            match rewrite_first(*$input, f) {
                Ok(i) => Ok($variant { input: Box::new(i), $($field),* }),
                Err(i) => Err($variant { input: Box::new(i), $($field),* }),
            }
        }};
    }
    macro_rules! binary {
        ($variant:ident, $left:expr, $right:expr, $($field:ident),*) => {{
            match rewrite_first(*$left, f) {
                Ok(l) => Ok($variant {
                    left: Box::new(l),
                    right: $right,
                    $($field),*
                }),
                Err(l) => match rewrite_first(*$right, f) {
                    Ok(r) => Ok($variant {
                        left: Box::new(l),
                        right: Box::new(r),
                        $($field),*
                    }),
                    Err(r) => Err($variant {
                        left: Box::new(l),
                        right: Box::new(r),
                        $($field),*
                    }),
                },
            }
        }};
    }
    match plan {
        Filter { input, predicate } => unary!(Filter, input, predicate),
        Project {
            input,
            items,
            schema,
        } => unary!(Project, input, items, schema),
        Sort { input, keys } => unary!(Sort, input, keys),
        Aggregate {
            input,
            group_by,
            aggs,
        } => unary!(Aggregate, input, group_by, aggs),
        Distinct { input } => unary!(Distinct, input,),
        Limit { input, n } => unary!(Limit, input, n),
        ReqSync {
            input,
            attrs,
            mode,
            cap,
        } => unary!(ReqSync, input, attrs, mode, cap),
        DependentJoin { left, right } => binary!(DependentJoin, left, right,),
        NestedLoopJoin {
            left,
            right,
            predicate,
        } => binary!(NestedLoopJoin, left, right, predicate),
        CrossProduct { left, right } => binary!(CrossProduct, left, right,),
        ParallelDependentJoin {
            left,
            spec,
            threads,
        } => match rewrite_first(*left, f) {
            Ok(l) => Ok(ParallelDependentJoin {
                left: Box::new(l),
                spec,
                threads,
            }),
            Err(l) => Err(ParallelDependentJoin {
                left: Box::new(l),
                spec,
                threads,
            }),
        },
        leaf => Err(leaf),
    }
}
