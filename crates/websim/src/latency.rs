//! Simulated network latency models.
//!
//! The paper's measurements depend on search-engine latency ("one or more
//! seconds" in 1999) dominating query time. We model it explicitly and
//! *deterministically*: jitter is derived from a hash of the request
//! expression, so a given (seed, query) pair always observes the same
//! latency — experiments are exactly reproducible, standing in for the
//! paper's "late at night when load is consistent" protocol.

use std::hash::{Hash, Hasher};
use std::time::Duration;

/// A latency model for a simulated search engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyModel {
    /// No latency (fast deterministic tests).
    Zero,
    /// Constant latency per request.
    Fixed(Duration),
    /// `base` plus a deterministic pseudo-random extra in `[0, jitter)`,
    /// keyed on the request expression.
    Jitter {
        /// Minimum latency.
        base: Duration,
        /// Upper bound of the additional latency.
        jitter: Duration,
    },
}

impl LatencyModel {
    /// Sample the latency for a request identified by `key`.
    pub fn sample(&self, key: &str) -> Duration {
        match self {
            LatencyModel::Zero => Duration::ZERO,
            LatencyModel::Fixed(d) => *d,
            LatencyModel::Jitter { base, jitter } => {
                if jitter.is_zero() {
                    return *base;
                }
                let mut h = std::collections::hash_map::DefaultHasher::new();
                key.hash(&mut h);
                let frac = (h.finish() % 10_000) as f64 / 10_000.0;
                *base + Duration::from_secs_f64(jitter.as_secs_f64() * frac)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_fixed() {
        assert_eq!(LatencyModel::Zero.sample("x"), Duration::ZERO);
        assert_eq!(
            LatencyModel::Fixed(Duration::from_millis(30)).sample("x"),
            Duration::from_millis(30)
        );
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let m = LatencyModel::Jitter {
            base: Duration::from_millis(100),
            jitter: Duration::from_millis(50),
        };
        let a = m.sample("colorado");
        let b = m.sample("colorado");
        assert_eq!(a, b, "same key, same latency");
        assert!(a >= Duration::from_millis(100));
        assert!(a < Duration::from_millis(150));
        // Different keys generally differ.
        let keys = ["a", "b", "c", "d", "e", "f"];
        let distinct: std::collections::HashSet<Duration> =
            keys.iter().map(|k| m.sample(k)).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn zero_jitter_degenerates_to_base() {
        let m = LatencyModel::Jitter {
            base: Duration::from_millis(10),
            jitter: Duration::ZERO,
        };
        assert_eq!(m.sample("k"), Duration::from_millis(10));
    }
}
