//! Simulated network latency models.
//!
//! The paper's measurements depend on search-engine latency ("one or more
//! seconds" in 1999) dominating query time. We model it explicitly and
//! *deterministically*: jitter is derived from a hash of the request
//! expression, so a given (seed, query) pair always observes the same
//! latency — experiments are exactly reproducible, standing in for the
//! paper's "late at night when load is consistent" protocol.

use std::hash::{Hash, Hasher};
use std::time::Duration;

/// A latency model for a simulated search engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyModel {
    /// No latency (fast deterministic tests).
    Zero,
    /// Constant latency per request.
    Fixed(Duration),
    /// `base` plus a deterministic pseudo-random extra in `[0, jitter)`,
    /// keyed on the request expression.
    Jitter {
        /// Minimum latency.
        base: Duration,
        /// Upper bound of the additional latency.
        jitter: Duration,
    },
}

impl LatencyModel {
    /// Sample the latency for a request identified by `key`.
    pub fn sample(&self, key: &str) -> Duration {
        match self {
            LatencyModel::Zero => Duration::ZERO,
            LatencyModel::Fixed(d) => *d,
            LatencyModel::Jitter { base, jitter } => {
                if jitter.is_zero() {
                    return *base;
                }
                let mut h = std::collections::hash_map::DefaultHasher::new();
                key.hash(&mut h);
                let frac = (h.finish() % 10_000) as f64 / 10_000.0;
                *base + Duration::from_secs_f64(jitter.as_secs_f64() * frac)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_fixed() {
        assert_eq!(LatencyModel::Zero.sample("x"), Duration::ZERO);
        assert_eq!(
            LatencyModel::Fixed(Duration::from_millis(30)).sample("x"),
            Duration::from_millis(30)
        );
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let m = LatencyModel::Jitter {
            base: Duration::from_millis(100),
            jitter: Duration::from_millis(50),
        };
        let a = m.sample("colorado");
        let b = m.sample("colorado");
        assert_eq!(a, b, "same key, same latency");
        assert!(a >= Duration::from_millis(100));
        assert!(a < Duration::from_millis(150));
        // Different keys generally differ.
        let keys = ["a", "b", "c", "d", "e", "f"];
        let distinct: std::collections::HashSet<Duration> =
            keys.iter().map(|k| m.sample(k)).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn zero_jitter_degenerates_to_base() {
        let m = LatencyModel::Jitter {
            base: Duration::from_millis(10),
            jitter: Duration::ZERO,
        };
        assert_eq!(m.sample("k"), Duration::from_millis(10));
    }

    /// The obs histograms must record deterministic websim latencies
    /// *exactly*: count, nanosecond sum and max reproduce the model's
    /// samples with no rounding, and every sample lands in the unique
    /// bucket whose bound covers it (cross-checked against a scalar
    /// re-computation of the bucket rule).
    #[test]
    fn histograms_record_model_latencies_exactly() {
        use wsq_obs::{bucket_index, Histogram, BUCKET_BOUNDS_US};

        let model = LatencyModel::Jitter {
            base: Duration::from_millis(20),
            jitter: Duration::from_millis(60),
        };
        let keys: Vec<String> = (0..200).map(|i| format!("state {i}")).collect();

        let hist = Histogram::new();
        let mut expect_sum = 0u128;
        let mut expect_max = Duration::ZERO;
        let mut expect_buckets = vec![0u64; BUCKET_BOUNDS_US.len() + 1];
        for key in &keys {
            let d = model.sample(key);
            hist.observe(d);
            expect_sum += d.as_nanos();
            expect_max = expect_max.max(d);
            expect_buckets[bucket_index(d)] += 1;
        }

        let snap = hist.snapshot();
        assert_eq!(snap.count, keys.len() as u64);
        assert_eq!(u128::from(snap.sum_nanos), expect_sum, "sum must be exact");
        assert_eq!(snap.max_nanos, expect_max.as_nanos() as u64);
        assert_eq!(snap.buckets.as_slice(), expect_buckets.as_slice());
        // The jitter range [20ms, 80ms) straddles the 25ms and 50ms
        // bounds: the distribution must actually spread over buckets.
        assert!(
            snap.buckets.iter().filter(|&&n| n > 0).count() >= 2,
            "jitter samples should span multiple buckets: {:?}",
            snap.buckets
        );
        // Determinism end to end: a second histogram fed the same model
        // snapshots identically (modulo no observations in between).
        let again = Histogram::new();
        for key in &keys {
            again.observe(model.sample(key));
        }
        let s2 = again.snapshot();
        assert_eq!(s2.buckets, snap.buckets);
        assert_eq!(s2.sum_nanos, snap.sum_nanos);
        assert_eq!(s2.max_nanos, snap.max_nanos);
        // Quantiles are a pure function of the snapshot, so they are
        // reproducible too.
        assert_eq!(s2.quantile(0.5), snap.quantile(0.5));
        assert_eq!(s2.quantile(0.95), snap.quantile(0.95));
    }
}
