//! A memoizing search-result cache.
//!
//! The paper (§4, citing Hellerstein & Naughton, HN96) stresses that
//! caching expensive external calls is essential for plans that would
//! otherwise repeat identical searches — e.g. Example 2's cross-product
//! issuing `|R|` identical calls per Sig. [`CachedService`] wraps any
//! [`SearchService`]; hits are served locally with zero latency.
//!
//! # Design
//!
//! The cache is sharded: the request hash selects one of N power-of-two
//! shards, each guarded by its own `RwLock`, so concurrent lookups on
//! different keys never contend and hits on the *same* key share a read
//! lock. Counters are atomics, off every lock.
//!
//! Each shard slot is either a ready entry or a *pending* flight. The
//! first thread to miss on a key installs a flight and calls the inner
//! service; concurrent misses on the same key find the flight and block
//! on its condvar instead of issuing duplicate external calls
//! (single-flight). Followers are counted as hits (sub-counted as
//! `coalesced`), so `misses` equals the number of inner-service calls
//! exactly.
//!
//! Optionally the cache bounds its size with LRU eviction (`capacity`)
//! and expires entries after a fixed `ttl`. Recency is tracked with a
//! global atomic tick so a hit under a read lock can still update it.

use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wsq_common::Result;
use wsq_obs::Obs;
use wsq_pump::{SearchRequest, SearchResult, SearchService, ServiceReply};

/// Tuning knobs for [`CachedService`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Number of shards; rounded up to a power of two, minimum 1. More
    /// shards means less lock contention under concurrent load.
    pub shards: usize,
    /// Maximum number of ready entries across the whole cache; `None` is
    /// unbounded. The bound is split evenly across shards, so with more
    /// than one shard it is approximate. When a shard is full the
    /// least-recently-used entry in that shard is evicted.
    pub capacity: Option<usize>,
    /// Entries older than this are treated as absent (and removed) on
    /// lookup; `None` disables expiry.
    pub ttl: Option<Duration>,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            shards: 16,
            capacity: None,
            ttl: None,
        }
    }
}

/// Cache counters. All maintained with atomics; reading them never takes
/// a shard lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served without a new inner call (ready entries plus
    /// coalesced followers).
    pub hits: u64,
    /// Requests that called the inner service. Exactly the number of
    /// inner-service invocations.
    pub misses: u64,
    /// Subset of `hits` that waited on an in-flight identical miss
    /// instead of finding a ready entry.
    pub coalesced: u64,
    /// Ready entries evicted to enforce `capacity`.
    pub evictions: u64,
    /// Ready entries dropped because their `ttl` elapsed.
    pub expirations: u64,
    /// Inner calls currently in flight (gauge, not a counter).
    pub inflight: u64,
}

/// A leader's in-flight inner call, shared with coalesced followers.
struct Flight {
    outcome: Mutex<Option<Result<SearchResult>>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Arc<Self> {
        Arc::new(Flight {
            outcome: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    /// Publish the leader's outcome and wake all followers.
    fn publish(&self, outcome: Result<SearchResult>) {
        *self.outcome.lock() = Some(outcome);
        self.done.notify_all();
    }

    /// Block until the leader publishes.
    fn wait(&self) -> Result<SearchResult> {
        let mut slot = self.outcome.lock();
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            self.done.wait(&mut slot);
        }
    }
}

/// A ready cache entry.
struct Ready {
    result: SearchResult,
    inserted: Instant,
    /// Global tick at last touch; drives LRU eviction.
    last_used: AtomicU64,
}

enum Slot {
    Ready(Ready),
    Pending(Arc<Flight>),
}

type Shard = RwLock<HashMap<SearchRequest, Slot>>;

/// A sharded, single-flight caching wrapper around a search service.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use wsq_pump::{RequestKind, SearchRequest, SearchResult, SearchService, ServiceReply};
/// use wsq_websim::CachedService;
///
/// /// A slow "engine" whose result is the expression's length.
/// struct Slow;
/// impl SearchService for Slow {
///     fn execute(&self, req: &SearchRequest) -> ServiceReply {
///         ServiceReply {
///             result: Ok(SearchResult::Count(req.expr.len() as u64)),
///             latency: Duration::from_millis(10),
///         }
///     }
/// }
///
/// let cached = CachedService::new(Arc::new(Slow));
/// let req = SearchRequest {
///     engine: "AV".into(),
///     expr: "Colorado".into(),
///     kind: RequestKind::Count,
/// };
/// let first = cached.execute(&req);
/// assert_eq!(first.latency, Duration::from_millis(10)); // paid the network
/// let second = cached.execute(&req);
/// assert_eq!(second.latency, Duration::ZERO); // served locally
/// assert_eq!(cached.stats().hits, 1);
/// ```
pub struct CachedService {
    inner: Arc<dyn SearchService>,
    obs: Obs,
    shards: Box<[Shard]>,
    mask: usize,
    per_shard_capacity: Option<usize>,
    ttl: Option<Duration>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    expirations: AtomicU64,
    inflight: AtomicU64,
}

impl CachedService {
    /// Wrap `inner` with the default configuration (16 shards, unbounded,
    /// no expiry).
    pub fn new(inner: Arc<dyn SearchService>) -> Arc<Self> {
        Self::with_config(inner, CacheConfig::default())
    }

    /// Wrap `inner` with explicit tuning.
    pub fn with_config(inner: Arc<dyn SearchService>, config: CacheConfig) -> Arc<Self> {
        Self::with_config_obs(inner, config, Obs::disabled())
    }

    /// Wrap `inner` with explicit tuning and an observability sink: cache
    /// hits/misses/coalesced waits are mirrored into the `wsq_cache_*`
    /// registry counters (the local [`CacheStats`] are always kept).
    pub fn with_config_obs(
        inner: Arc<dyn SearchService>,
        config: CacheConfig,
        obs: Obs,
    ) -> Arc<Self> {
        let shards = config.shards.max(1).next_power_of_two();
        let per_shard_capacity = config.capacity.map(|c| (c / shards).max(1));
        Arc::new(CachedService {
            inner,
            obs,
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            mask: shards - 1,
            per_shard_capacity,
            ttl: config.ttl,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            expirations: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
        })
    }

    fn shard(&self, req: &SearchRequest) -> &Shard {
        // FNV-1a over engine + expression: shard selection must not
        // re-pay the map's full SipHash on every lookup.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in req.engine.bytes().chain(req.expr.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        &self.shards[h as usize & self.mask]
    }

    fn expired(&self, ready: &Ready) -> bool {
        self.ttl.is_some_and(|ttl| ready.inserted.elapsed() >= ttl)
    }

    fn touch(&self, ready: &Ready) {
        // Recency only matters for LRU eviction; an unbounded cache
        // skips the shared tick (it would bounce a cache line per hit).
        if self.per_shard_capacity.is_some() {
            let now = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
            ready.last_used.store(now, Ordering::Relaxed);
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            expirations: self.expirations.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
        }
    }

    /// Drop all cached entries (the experimental "wait two hours between
    /// runs" protocol, in one call). In-flight leaders are left to finish
    /// and will re-insert their results.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard
                .write()
                .retain(|_, slot| matches!(slot, Slot::Pending(_)));
        }
    }

    /// Number of ready cached results.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .values()
                    .filter(|slot| matches!(slot, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// True iff no ready results are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evict the least-recently-used ready entry if the shard is over
    /// capacity. Called with the write lock held, after an insert.
    fn enforce_capacity(&self, map: &mut HashMap<SearchRequest, Slot>) {
        let Some(cap) = self.per_shard_capacity else {
            return;
        };
        loop {
            let ready = map
                .iter()
                .filter_map(|(k, slot)| match slot {
                    Slot::Ready(r) => Some((k, r.last_used.load(Ordering::Relaxed))),
                    Slot::Pending(_) => None,
                })
                .collect::<Vec<_>>();
            if ready.len() <= cap {
                return;
            }
            let victim = ready
                .iter()
                .min_by_key(|(_, used)| *used)
                .map(|(k, _)| (*k).clone())
                .expect("non-empty over-capacity shard");
            map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Serve a hit: zero latency, the network already happened once.
    fn hit_reply(&self, ready: &Ready) -> ServiceReply {
        self.touch(ready);
        self.hits.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.obs.metrics() {
            m.cache_hits.inc();
        }
        ServiceReply {
            result: Ok(ready.result.clone()),
            latency: Duration::ZERO,
        }
    }

    /// Run the inner call as the flight's leader and publish the outcome.
    fn lead(&self, req: &SearchRequest, flight: &Arc<Flight>) -> ServiceReply {
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.obs.metrics() {
            m.cache_misses.inc();
        }
        self.inflight.fetch_add(1, Ordering::Relaxed);
        let reply = self.inner.execute(req);
        self.inflight.fetch_sub(1, Ordering::Relaxed);

        let mut map = self.shard(req).write();
        match &reply.result {
            Ok(result) => {
                let ready = Ready {
                    result: result.clone(),
                    inserted: Instant::now(),
                    last_used: AtomicU64::new(0),
                };
                self.touch(&ready);
                map.insert(req.clone(), Slot::Ready(ready));
                self.enforce_capacity(&mut map);
            }
            // A failed call must not poison the key: remove the flight so
            // the next request retries the inner service.
            Err(_) => {
                map.remove(req);
            }
        }
        drop(map);
        flight.publish(reply.result.clone());
        reply
    }
}

impl SearchService for CachedService {
    fn execute(&self, req: &SearchRequest) -> ServiceReply {
        let shard = self.shard(req);

        // Fast path: shared read lock, no map mutation.
        let mut stale = false;
        if let Some(slot) = shard.read().get(req) {
            match slot {
                Slot::Ready(ready) if !self.expired(ready) => {
                    return self.hit_reply(ready);
                }
                Slot::Ready(_) => stale = true,
                Slot::Pending(_) => {}
            }
        }
        if stale {
            // Expired: drop it under the write lock (re-checking — a
            // leader may have refreshed it since the read lock fell).
            let mut map = shard.write();
            if let Some(Slot::Ready(ready)) = map.get(req) {
                if self.expired(ready) {
                    map.remove(req);
                    self.expirations.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        // Slow path: take the write lock and either become the leader or
        // join an existing flight.
        let mut map = shard.write();
        match map.entry(req.clone()) {
            MapEntry::Occupied(entry) => match entry.get() {
                Slot::Ready(ready) => {
                    let reply = self.hit_reply(ready);
                    drop(map);
                    reply
                }
                Slot::Pending(flight) => {
                    let flight = flight.clone();
                    drop(map);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    if let Some(m) = self.obs.metrics() {
                        m.cache_hits.inc();
                        m.cache_coalesced.inc();
                    }
                    ServiceReply {
                        result: flight.wait(),
                        latency: Duration::ZERO,
                    }
                }
            },
            MapEntry::Vacant(entry) => {
                let flight = Flight::new();
                entry.insert(Slot::Pending(flight.clone()));
                drop(map);
                self.lead(req, &flight)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;
    use wsq_pump::RequestKind;

    struct Counting {
        calls: AtomicU64,
        latency: Duration,
    }

    impl Counting {
        fn new() -> Arc<Self> {
            Self::with_latency(Duration::from_millis(10))
        }

        fn with_latency(latency: Duration) -> Arc<Self> {
            Arc::new(Counting {
                calls: AtomicU64::new(0),
                latency,
            })
        }
    }

    impl SearchService for Counting {
        fn execute(&self, req: &SearchRequest) -> ServiceReply {
            self.calls.fetch_add(1, Ordering::SeqCst);
            ServiceReply {
                result: Ok(SearchResult::Count(req.expr.len() as u64)),
                latency: self.latency,
            }
        }
    }

    /// A service that blocks inside `execute` so concurrent callers
    /// genuinely overlap (models thread-pool dispatch of a real client).
    struct SlowBlocking {
        calls: AtomicU64,
        work: Duration,
    }

    impl SearchService for SlowBlocking {
        fn execute(&self, req: &SearchRequest) -> ServiceReply {
            self.calls.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(self.work);
            ServiceReply::instant(SearchResult::Count(req.expr.len() as u64))
        }
    }

    fn req(expr: &str) -> SearchRequest {
        SearchRequest {
            engine: "AV".into(),
            expr: expr.into(),
            kind: RequestKind::Count,
        }
    }

    #[test]
    fn second_call_is_a_zero_latency_hit() {
        let inner = Counting::new();
        let cached = CachedService::new(inner.clone());
        let r1 = cached.execute(&req("colorado"));
        assert_eq!(r1.latency, Duration::from_millis(10));
        let r2 = cached.execute(&req("colorado"));
        assert_eq!(r2.latency, Duration::ZERO);
        assert_eq!(r2.result.unwrap().count(), Some(8));
        assert_eq!(inner.calls.load(Ordering::SeqCst), 1);
        let stats = cached.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn distinct_requests_are_distinct_entries() {
        let cached = CachedService::new(Counting::new());
        cached.execute(&req("a"));
        cached.execute(&req("b"));
        // Same expr, different kind → different entry.
        cached.execute(&SearchRequest {
            engine: "AV".into(),
            expr: "a".into(),
            kind: RequestKind::Pages { max_rank: 5 },
        });
        assert_eq!(cached.len(), 3);
    }

    #[test]
    fn clear_resets_contents_but_not_stats() {
        let cached = CachedService::new(Counting::new());
        cached.execute(&req("x"));
        cached.execute(&req("x"));
        cached.clear();
        assert!(cached.is_empty());
        cached.execute(&req("x"));
        let stats = cached.stats();
        assert_eq!((stats.hits, stats.misses), (1, 2));
    }

    #[test]
    fn concurrent_identical_misses_coalesce_into_one_inner_call() {
        const WAITERS: usize = 8;
        let inner = Arc::new(SlowBlocking {
            calls: AtomicU64::new(0),
            work: Duration::from_millis(40),
        });
        let cached = CachedService::new(inner.clone());
        let barrier = Arc::new(Barrier::new(WAITERS));
        let handles: Vec<_> = (0..WAITERS)
            .map(|_| {
                let cached = cached.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    cached.execute(&req("shared query")).result.unwrap()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap().count(), Some("shared query".len() as u64));
        }
        assert_eq!(inner.calls.load(Ordering::SeqCst), 1, "single flight");
        let stats = cached.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, WAITERS as u64 - 1);
        assert_eq!(stats.coalesced, WAITERS as u64 - 1);
        assert_eq!(stats.inflight, 0);
    }

    #[test]
    fn failed_leader_does_not_poison_the_key() {
        struct FailOnce {
            calls: AtomicU64,
        }
        impl SearchService for FailOnce {
            fn execute(&self, req: &SearchRequest) -> ServiceReply {
                if self.calls.fetch_add(1, Ordering::SeqCst) == 0 {
                    ServiceReply {
                        result: Err(wsq_common::WsqError::Search("engine down".into())),
                        latency: Duration::ZERO,
                    }
                } else {
                    ServiceReply::instant(SearchResult::Count(req.expr.len() as u64))
                }
            }
        }
        let inner = Arc::new(FailOnce {
            calls: AtomicU64::new(0),
        });
        let cached = CachedService::new(inner.clone());
        assert!(cached.execute(&req("flaky")).result.is_err());
        // The failure was not cached; the retry reaches the service.
        assert_eq!(
            cached.execute(&req("flaky")).result.unwrap().count(),
            Some(5)
        );
        assert_eq!(inner.calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn lru_eviction_drops_least_recently_used() {
        // One shard so the capacity bound (and thus LRU order) is exact.
        let cached = CachedService::with_config(
            Counting::new(),
            CacheConfig {
                shards: 1,
                capacity: Some(2),
                ttl: None,
            },
        );
        cached.execute(&req("a"));
        cached.execute(&req("b"));
        cached.execute(&req("a")); // a is now more recent than b
        cached.execute(&req("c")); // evicts b
        assert_eq!(cached.len(), 2);
        assert_eq!(cached.stats().evictions, 1);
        // a and c are hits; b was evicted and misses again.
        let before = cached.stats().misses;
        cached.execute(&req("a"));
        cached.execute(&req("c"));
        cached.execute(&req("b"));
        assert_eq!(cached.stats().misses, before + 1);
    }

    #[test]
    fn ttl_expires_entries() {
        let inner = Counting::with_latency(Duration::ZERO);
        let cached = CachedService::with_config(
            inner.clone(),
            CacheConfig {
                shards: 1,
                capacity: None,
                ttl: Some(Duration::from_millis(30)),
            },
        );
        cached.execute(&req("ephemeral"));
        assert_eq!(cached.execute(&req("ephemeral")).latency, Duration::ZERO);
        std::thread::sleep(Duration::from_millis(40));
        cached.execute(&req("ephemeral"));
        assert_eq!(inner.calls.load(Ordering::SeqCst), 2, "expired → re-fetch");
        assert_eq!(cached.stats().expirations, 1);
    }

    #[test]
    fn concurrent_stress_accounts_every_request() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 200;
        let inner = Counting::with_latency(Duration::ZERO);
        let cached = CachedService::new(inner.clone());
        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cached = cached.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..PER_THREAD {
                        // 16 distinct keys, every thread touching all of
                        // them: heavy same-key and cross-shard traffic.
                        let key = (t + i) % 16;
                        let reply = cached.execute(&req(&format!("key-{key}")));
                        assert!(reply.result.is_ok());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = cached.stats();
        let requests = (THREADS * PER_THREAD) as u64;
        assert_eq!(stats.hits + stats.misses, requests);
        // Misses are exactly the inner calls, and every distinct key
        // missed at least once.
        assert_eq!(stats.misses, inner.calls.load(Ordering::SeqCst));
        assert!(stats.misses >= 16);
        assert_eq!(stats.inflight, 0);
    }
}
