//! A memoizing search-result cache.
//!
//! The paper (§4, citing Hellerstein & Naughton, HN96) stresses that
//! caching expensive external calls is essential for plans that would
//! otherwise repeat identical searches — e.g. Example 2's cross-product
//! issuing `|R|` identical calls per Sig. [`CachedService`] wraps any
//! [`SearchService`]; hits are served locally with zero latency.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use wsq_pump::{SearchRequest, SearchResult, SearchService, ServiceReply};

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests forwarded to the inner service.
    pub misses: u64,
}

/// A caching wrapper around a search service.
pub struct CachedService {
    inner: Arc<dyn SearchService>,
    cache: Mutex<HashMap<SearchRequest, SearchResult>>,
    stats: Mutex<CacheStats>,
}

impl CachedService {
    /// Wrap `inner` with an unbounded memoizing cache.
    pub fn new(inner: Arc<dyn SearchService>) -> Arc<Self> {
        Arc::new(CachedService {
            inner,
            cache: Mutex::new(HashMap::new()),
            stats: Mutex::new(CacheStats::default()),
        })
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }

    /// Drop all cached entries (the experimental "wait two hours between
    /// runs" protocol, in one call).
    pub fn clear(&self) {
        self.cache.lock().clear();
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.cache.lock().len()
    }

    /// True iff the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.lock().is_empty()
    }
}

impl SearchService for CachedService {
    fn execute(&self, req: &SearchRequest) -> ServiceReply {
        if let Some(result) = self.cache.lock().get(req).cloned() {
            self.stats.lock().hits += 1;
            return ServiceReply {
                result: Ok(result),
                latency: Duration::ZERO, // local lookup: no network
            };
        }
        self.stats.lock().misses += 1;
        let reply = self.inner.execute(req);
        if let Ok(result) = &reply.result {
            self.cache.lock().insert(req.clone(), result.clone());
        }
        reply
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use wsq_pump::RequestKind;

    struct Counting {
        calls: AtomicU64,
    }

    impl SearchService for Counting {
        fn execute(&self, req: &SearchRequest) -> ServiceReply {
            self.calls.fetch_add(1, Ordering::SeqCst);
            ServiceReply {
                result: Ok(SearchResult::Count(req.expr.len() as u64)),
                latency: Duration::from_millis(10),
            }
        }
    }

    fn req(expr: &str) -> SearchRequest {
        SearchRequest {
            engine: "AV".into(),
            expr: expr.into(),
            kind: RequestKind::Count,
        }
    }

    #[test]
    fn second_call_is_a_zero_latency_hit() {
        let inner = Arc::new(Counting {
            calls: AtomicU64::new(0),
        });
        let cached = CachedService::new(inner.clone());
        let r1 = cached.execute(&req("colorado"));
        assert_eq!(r1.latency, Duration::from_millis(10));
        let r2 = cached.execute(&req("colorado"));
        assert_eq!(r2.latency, Duration::ZERO);
        assert_eq!(r2.result.unwrap().count(), Some(8));
        assert_eq!(inner.calls.load(Ordering::SeqCst), 1);
        assert_eq!(cached.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn distinct_requests_are_distinct_entries() {
        let cached = CachedService::new(Arc::new(Counting {
            calls: AtomicU64::new(0),
        }));
        cached.execute(&req("a"));
        cached.execute(&req("b"));
        // Same expr, different kind → different entry.
        cached.execute(&SearchRequest {
            engine: "AV".into(),
            expr: "a".into(),
            kind: RequestKind::Pages { max_rank: 5 },
        });
        assert_eq!(cached.len(), 3);
    }

    #[test]
    fn clear_resets_contents_but_not_stats() {
        let cached = CachedService::new(Arc::new(Counting {
            calls: AtomicU64::new(0),
        }));
        cached.execute(&req("x"));
        cached.execute(&req("x"));
        cached.clear();
        assert!(cached.is_empty());
        cached.execute(&req("x"));
        assert_eq!(cached.stats(), CacheStats { hits: 1, misses: 2 });
    }
}
