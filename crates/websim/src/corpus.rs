//! Deterministic synthetic Web corpus generation.
//!
//! The generator plants the [`crate::data`] entities in synthetic pages so
//! that the paper's queries produce the documented *shapes*:
//!
//! * Each entity receives a **deterministic** number of primary pages via
//!   largest-remainder apportionment of its weight — sampling noise cannot
//!   reorder close pairs like Atlanta/Georgia.
//! * Cluster pages engineer co-occurrences: "four corners" near the four
//!   corner states, "Knuth" near the six paper-listed SIGs, "scuba diving"
//!   near Florida/Hawaii/California and underwater movies (for DSQ).
//! * State pages sprinkle topic terms ("computer", "beaches", …) adjacent
//!   to the state name so Template 1/2 `near` queries return counts that
//!   scale with state popularity.
//! * Every page carries two independent authority scores (one per engine
//!   personality) so AltaVista and Google rank results differently and
//!   Query 6's "top-5 agreement" is rare but non-empty.

use crate::data;
use crate::symbols::{tokenize, SymbolTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Corpus generation parameters.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of "ordinary" (non-cluster) pages.
    pub pages: usize,
    /// RNG seed; the corpus is a pure function of this config.
    pub seed: u64,
    /// Pages in the "four corners" co-occurrence cluster.
    pub four_corners_pages: usize,
    /// Pages in the "scuba diving" cluster (DSQ example).
    pub scuba_pages: usize,
    /// NEAR proximity window, in token positions.
    pub near_window: u32,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            pages: 20_000,
            seed: 0x5753_5144, // "WSQD"
            four_corners_pages: 600,
            scuba_pages: 260,
            near_window: 10,
        }
    }
}

impl CorpusConfig {
    /// A small corpus for fast unit tests (still shape-preserving for the
    /// deterministic allocations, though with coarser counts).
    pub fn small() -> Self {
        CorpusConfig {
            pages: 3_000,
            four_corners_pages: 120,
            scuba_pages: 60,
            ..Self::default()
        }
    }
}

/// One synthetic Web page.
#[derive(Debug)]
pub struct Page {
    /// The page's URL.
    pub url: String,
    /// Last-modified date, ISO `YYYY-MM-DD` (1997–1999, like the paper's
    /// October-1999 searches would see).
    pub date: String,
    /// Interned term sequence.
    pub terms: Vec<u32>,
    /// AltaVista-personality static authority in `[0, 1)`.
    pub av_auth: f64,
    /// Google-personality static authority in `[0, 1)`.
    pub g_auth: f64,
}

/// A posting: one page and the positions where a term occurs.
#[derive(Debug)]
pub struct Posting {
    /// Page index into [`Corpus::pages`].
    pub page: u32,
    /// Sorted term positions within the page.
    pub positions: Vec<u32>,
}

/// The generated corpus plus its positional inverted index.
pub struct Corpus {
    /// Term interner.
    pub symbols: SymbolTable,
    /// All pages.
    pub pages: Vec<Page>,
    /// Term → postings (sorted by page).
    pub index: HashMap<u32, Vec<Posting>>,
    /// NEAR window used by engines over this corpus.
    pub near_window: u32,
}

/// What kind of entity a generated page is primarily about; controls the
/// extra decoration applied to the page.
#[derive(Clone, Copy, PartialEq)]
enum EntityKind {
    State,
    Capital,
    Sig,
    Field,
    Movie,
    Topic,
}

struct Entity {
    phrase: &'static str,
    weight: u32,
    kind: EntityKind,
}

impl Corpus {
    /// Generate a corpus. Deterministic in `config`.
    pub fn generate(config: &CorpusConfig) -> Corpus {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut symbols = SymbolTable::new();
        let mut pages: Vec<Page> = Vec::new();

        // Pre-intern fixed vocabulary.
        let filler: Vec<u32> = data::FILLER.iter().map(|w| symbols.intern(w)).collect();
        let topics: Vec<u32> = data::TOPICS.iter().map(|w| symbols.intern(w)).collect();

        let entities = build_entities();
        let total_weight: u64 = entities.iter().map(|e| e.weight as u64).sum();

        // Largest-remainder apportionment of primary pages to entities.
        let counts = apportion(
            &entities.iter().map(|e| e.weight as u64).collect::<Vec<_>>(),
            config.pages as u64,
        );

        // Ordinary pages: one primary entity each, decorated.
        for (entity, &count) in entities.iter().zip(&counts) {
            let phrase: Vec<u32> = tokenize(entity.phrase)
                .iter()
                .map(|w| symbols.intern(w))
                .collect();
            for k in 0..count {
                let official = k == 0 && entity.kind != EntityKind::Topic;
                let page = make_entity_page(
                    &mut rng,
                    &mut symbols,
                    &entities,
                    total_weight,
                    entity,
                    &phrase,
                    &filler,
                    &topics,
                    official,
                    pages.len(),
                );
                pages.push(page);
            }
        }

        // "Four corners" cluster (Query 3). Allocation is deterministic:
        // 75% of the cluster goes to the four corner states in the paper's
        // proportions, 25% is an incidental tail spread over all states by
        // popularity (California's 215 vs Colorado's 1745 in the paper).
        let knuth = symbols.intern("knuth");
        let four = symbols.intern("four");
        let corners = symbols.intern("corners");
        let corner_states: &[(&str, u32)] = &[
            ("Colorado", 34),
            ("New Mexico", 24),
            ("Arizona", 21),
            ("Utah", 19),
        ];
        let dedicated = config.four_corners_pages * 3 / 4;
        let tail = config.four_corners_pages - dedicated;
        let mut fc_plan: Vec<&'static str> = Vec::with_capacity(config.four_corners_pages);
        let corner_counts = apportion(
            &corner_states
                .iter()
                .map(|(_, w)| *w as u64)
                .collect::<Vec<_>>(),
            dedicated as u64,
        );
        for ((name, _), &n) in corner_states.iter().zip(&corner_counts) {
            fc_plan.extend(std::iter::repeat_n(*name, n as usize));
        }
        let tail_counts = apportion(
            &data::STATES
                .iter()
                .map(|s| s.web_weight as u64)
                .collect::<Vec<_>>(),
            tail as u64,
        );
        for (s, &n) in data::STATES.iter().zip(&tail_counts) {
            fc_plan.extend(std::iter::repeat_n(s.name, n as usize));
        }
        for (i, state) in fc_plan.into_iter().enumerate() {
            let state_toks: Vec<u32> = tokenize(state).iter().map(|w| symbols.intern(w)).collect();
            let mut terms = random_filler(&mut rng, &filler, 3..10);
            terms.extend_from_slice(&state_toks);
            terms.push(four);
            terms.push(corners);
            terms.extend(random_filler(&mut rng, &filler, 5..20));
            pages.push(finish_page(
                &mut rng,
                format!("www.fourcorners{i}.example.com/visit.html"),
                terms,
                0.0,
            ));
        }

        // "Knuth" cluster (Section 4.1 footnote): deterministic counts.
        for (sig, w) in data::SIG_KNUTH {
            let sig_toks: Vec<u32> = tokenize(sig).iter().map(|t| symbols.intern(t)).collect();
            for i in 0..*w {
                let mut terms = random_filler(&mut rng, &filler, 2..8);
                terms.extend_from_slice(&sig_toks);
                terms.push(knuth);
                terms.extend(random_filler(&mut rng, &filler, 4..12));
                pages.push(finish_page(
                    &mut rng,
                    format!("www.{}.example.org/knuth{i}.html", sig.to_ascii_lowercase()),
                    terms,
                    0.0,
                ));
            }
        }

        // "Scuba diving" cluster (DSQ): states, movies, and state+movie
        // triples.
        let scuba = symbols.intern("scuba");
        let diving = symbols.intern("diving");
        let scuba_entities: Vec<(&str, u32, bool)> = data::STATE_SCUBA
            .iter()
            .map(|(n, w)| (*n, *w, true))
            .chain(data::MOVIE_SCUBA.iter().map(|(n, w)| (*n, *w, false)))
            .collect();
        let scuba_counts = apportion(
            &scuba_entities
                .iter()
                .map(|(_, w, _)| *w as u64)
                .collect::<Vec<_>>(),
            config.scuba_pages as u64,
        );
        let mut scuba_plan: Vec<(&str, u32, bool)> = Vec::new();
        for (e, &n) in scuba_entities.iter().zip(&scuba_counts) {
            scuba_plan.extend(std::iter::repeat_n(*e, n as usize));
        }
        for (i, chosen) in scuba_plan.into_iter().enumerate() {
            let mut terms = random_filler(&mut rng, &filler, 2..8);
            for t in tokenize(chosen.0) {
                terms.push(symbols.intern(&t));
            }
            terms.push(scuba);
            terms.push(diving);
            // A third of pages pair the state with an affine movie (or the
            // movie with an affine state): DSQ's triples.
            if rng.gen_bool(0.33) {
                let other = if chosen.2 {
                    data::MOVIE_SCUBA[rng.gen_range(0..data::MOVIE_SCUBA.len())].0
                } else {
                    data::STATE_SCUBA[rng.gen_range(0..data::STATE_SCUBA.len())].0
                };
                for t in tokenize(other) {
                    terms.push(symbols.intern(&t));
                }
            }
            terms.extend(random_filler(&mut rng, &filler, 4..12));
            pages.push(finish_page(
                &mut rng,
                format!("www.divers{i}.example.com/trip.html"),
                terms,
                0.0,
            ));
        }

        // Build the positional inverted index.
        let index = build_index(&pages);

        Corpus {
            symbols,
            pages,
            index,
            near_window: config.near_window,
        }
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True iff the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

fn build_entities() -> Vec<Entity> {
    let mut out = Vec::new();
    for s in data::STATES {
        out.push(Entity {
            phrase: s.name,
            weight: s.web_weight,
            kind: EntityKind::State,
        });
        out.push(Entity {
            phrase: s.capital,
            weight: s.capital_weight,
            kind: EntityKind::Capital,
        });
    }
    for (name, w) in data::SIGS {
        out.push(Entity {
            phrase: name,
            weight: *w,
            kind: EntityKind::Sig,
        });
    }
    for (name, w) in data::CS_FIELDS {
        out.push(Entity {
            phrase: name,
            weight: *w,
            kind: EntityKind::Field,
        });
    }
    for (name, w) in data::MOVIES {
        out.push(Entity {
            phrase: name,
            weight: *w,
            kind: EntityKind::Movie,
        });
    }
    for name in data::TOPICS {
        out.push(Entity {
            phrase: name,
            weight: 60,
            kind: EntityKind::Topic,
        });
    }
    out
}

/// Largest-remainder apportionment: `total` items split proportionally to
/// `weights`, deterministically.
fn apportion(weights: &[u64], total: u64) -> Vec<u64> {
    let sum: u64 = weights.iter().sum();
    if sum == 0 {
        return vec![0; weights.len()];
    }
    let mut base: Vec<u64> = weights.iter().map(|w| w * total / sum).collect();
    let assigned: u64 = base.iter().sum();
    // Distribute the remainder by largest fractional part (ties by index).
    let mut rema: Vec<(u64, usize)> = weights
        .iter()
        .enumerate()
        .map(|(i, w)| ((w * total) % sum, i))
        .collect();
    rema.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for k in 0..(total - assigned) as usize {
        base[rema[k % rema.len()].1] += 1;
    }
    base
}

fn random_filler(rng: &mut StdRng, filler: &[u32], range: std::ops::Range<usize>) -> Vec<u32> {
    let n = rng.gen_range(range);
    (0..n)
        .map(|_| filler[rng.gen_range(0..filler.len())])
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn make_entity_page(
    rng: &mut StdRng,
    symbols: &mut SymbolTable,
    entities: &[Entity],
    total_weight: u64,
    entity: &Entity,
    phrase: &[u32],
    filler: &[u32],
    topics: &[u32],
    official: bool,
    page_no: usize,
) -> Page {
    let mut terms = random_filler(rng, filler, 2..8);
    let mentions = 1 + rng.gen_range(0..3);
    for _ in 0..mentions {
        terms.extend_from_slice(phrase);
        // Topic decoration: a topic term lands adjacent to the entity name
        // so `Entity near topic` matches. States are decorated heavily
        // (Templates 1/2 probe them); Sigs lightly (Template 3, and real
        // SIG pages do mention "computer" etc.).
        let topic_prob = match entity.kind {
            EntityKind::State => 0.55,
            EntityKind::Sig => 0.4,
            _ => 0.0,
        };
        if topic_prob > 0.0 && rng.gen_bool(topic_prob) {
            terms.push(topics[rng.gen_range(0..topics.len())]);
            if rng.gen_bool(0.3) {
                terms.push(topics[rng.gen_range(0..topics.len())]);
            }
        }
        terms.extend(random_filler(rng, filler, 3..12));
    }
    // Secondary mention: some pages reference another entity too.
    if rng.gen_bool(0.15) {
        let mut roll = rng.gen_range(0..total_weight);
        for other in entities {
            if roll < other.weight as u64 {
                for t in tokenize(other.phrase) {
                    terms.push(symbols.intern(&t));
                }
                break;
            }
            roll -= other.weight as u64;
        }
        terms.extend(random_filler(rng, filler, 1..6));
    }

    let slug: String = entity
        .phrase
        .to_ascii_lowercase()
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect();
    let url = if official {
        format!("www.{slug}.org/index.html")
    } else {
        format!("www.{slug}{}.example.com/page{page_no}.html", page_no % 97)
    };
    // Official home pages get a strong Google-style authority boost but
    // only a moderate AltaVista one: the two engines will usually disagree
    // about top ranks, agreeing mostly on official pages (Query 6).
    let boost = if official { 0.9 } else { 0.0 };
    finish_page(rng, url, terms, boost)
}

fn finish_page(rng: &mut StdRng, url: String, terms: Vec<u32>, g_boost: f64) -> Page {
    let year = 1997 + rng.gen_range(0..3);
    let month = 1 + rng.gen_range(0..12);
    let day = 1 + rng.gen_range(0..28);
    Page {
        url,
        date: format!("{year}-{month:02}-{day:02}"),
        terms,
        av_auth: rng.gen_range(0.0..0.8) + g_boost * 0.12,
        g_auth: rng.gen_range(0.0..0.6) + g_boost,
    }
}

fn build_index(pages: &[Page]) -> HashMap<u32, Vec<Posting>> {
    let mut index: HashMap<u32, Vec<Posting>> = HashMap::new();
    for (pid, page) in pages.iter().enumerate() {
        for (pos, &term) in page.terms.iter().enumerate() {
            let postings = index.entry(term).or_default();
            match postings.last_mut() {
                Some(p) if p.page == pid as u32 => p.positions.push(pos as u32),
                _ => postings.push(Posting {
                    page: pid as u32,
                    positions: vec![pos as u32],
                }),
            }
        }
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apportion_is_exact_and_proportional() {
        let counts = apportion(&[10, 20, 70], 100);
        assert_eq!(counts.iter().sum::<u64>(), 100);
        assert_eq!(counts, vec![10, 20, 70]);
        let counts = apportion(&[1, 1, 1], 100);
        assert_eq!(counts.iter().sum::<u64>(), 100);
        let counts = apportion(&[3, 3, 3], 2);
        assert_eq!(counts.iter().sum::<u64>(), 2);
        assert_eq!(apportion(&[0, 0], 5), vec![0, 0]);
    }

    #[test]
    fn generation_is_deterministic() {
        let c1 = Corpus::generate(&CorpusConfig::small());
        let c2 = Corpus::generate(&CorpusConfig::small());
        assert_eq!(c1.len(), c2.len());
        for (a, b) in c1.pages.iter().zip(&c2.pages) {
            assert_eq!(a.url, b.url);
            assert_eq!(a.terms, b.terms);
            assert_eq!(a.date, b.date);
            assert_eq!(a.av_auth, b.av_auth);
        }
    }

    #[test]
    fn corpus_has_expected_size_and_clusters() {
        let cfg = CorpusConfig::small();
        let c = Corpus::generate(&cfg);
        assert_eq!(
            c.len(),
            cfg.pages
                + cfg.four_corners_pages
                + cfg.scuba_pages
                + data::SIG_KNUTH
                    .iter()
                    .map(|(_, w)| *w as usize)
                    .sum::<usize>()
        );
    }

    #[test]
    fn index_positions_match_pages() {
        let c = Corpus::generate(&CorpusConfig::small());
        // Spot-check a handful of postings against raw page content.
        let term = c.symbols.get("california").expect("california indexed");
        let postings = &c.index[&term];
        assert!(!postings.is_empty());
        for p in postings.iter().take(20) {
            for &pos in &p.positions {
                assert_eq!(c.pages[p.page as usize].terms[pos as usize], term);
            }
        }
        // Postings sorted by page id.
        for w in postings.windows(2) {
            assert!(w[0].page < w[1].page);
        }
    }

    #[test]
    fn official_pages_exist_with_high_authority() {
        let c = Corpus::generate(&CorpusConfig::small());
        let official: Vec<&Page> = c
            .pages
            .iter()
            .filter(|p| p.url == "www.california.org/index.html")
            .collect();
        assert_eq!(official.len(), 1);
        assert!(official[0].g_auth > 0.9);
    }

    #[test]
    fn headline_shapes_hold_across_seeds() {
        // The deterministic apportionment (not the RNG) carries the result
        // shapes, so they must survive reseeding.
        for seed in [1u64, 42, 0xDEAD_BEEF] {
            let cfg = CorpusConfig {
                seed,
                ..CorpusConfig::small()
            };
            let c = Corpus::generate(&cfg);
            let count = |term: &str| {
                let q = crate::search::parse_query(term, true);
                crate::search::evaluate(&c, &q).len()
            };
            // Query 1 top pair.
            assert!(count("california") > count("washington"), "seed {seed}");
            assert!(count("washington") > count("\"new york\""), "seed {seed}");
            // Query 3's cluster leaders.
            let co = count("colorado near \"four corners\"");
            let ut = count("utah near \"four corners\"");
            assert!(co > ut && ut > 0, "seed {seed}");
            // Query 4's flagship collision.
            assert!(count("boston") > count("massachusetts"), "seed {seed}");
            // Knuth counts are planted exactly, independent of seed.
            assert_eq!(count("sigact near knuth"), 30, "seed {seed}");
        }
    }

    #[test]
    fn dates_are_in_the_paper_era() {
        let c = Corpus::generate(&CorpusConfig::small());
        for p in c.pages.iter().take(500) {
            let year: u32 = p.date[..4].parse().unwrap();
            assert!((1997..=1999).contains(&year), "bad date {}", p.date);
        }
    }
}
