//! Static reference datasets.
//!
//! These drive both sides of the reproduction: the corpus generator plants
//! these entities in synthetic Web pages, and the examples load the same
//! entities into database tables (`States`, `Sigs`, `CSFields`, `Movies`).
//!
//! `WEB_WEIGHT` values are hand-tuned so the *shapes* of the paper's
//! Section 3.1 query results hold on the synthetic corpus:
//!
//! * Query 1 ordering: California > Washington > New York > Texas >
//!   Michigan > everyone else (Washington is boosted for its capital-city
//!   name collision, exactly the false-hit effect the paper describes).
//! * Query 2 ordering (count/population): Alaska > Washington > Delaware >
//!   Hawaii > Wyoming.
//! * Query 4: exactly the paper's six capitals out-count their states
//!   (Atlanta, Lincoln, Boston, Jackson, Pierre, Columbia — all common
//!   words/names in other contexts).

/// One U.S. state: name, July-1998 census population estimate, capital,
/// relative Web popularity weight, capital's Web weight.
pub struct StateRow {
    /// State name.
    pub name: &'static str,
    /// 1998 population estimate (approximate; used only for Query 2's
    /// normalization).
    pub population: i64,
    /// Capital city.
    pub capital: &'static str,
    /// Relative frequency of the state name on the synthetic Web.
    pub web_weight: u32,
    /// Relative frequency of the capital name on the synthetic Web.
    pub capital_weight: u32,
}

macro_rules! state {
    ($name:literal, $pop:literal, $cap:literal, $w:literal, $cw:literal) => {
        StateRow {
            name: $name,
            population: $pop,
            capital: $cap,
            web_weight: $w,
            capital_weight: $cw,
        }
    };
}

/// The 50 U.S. states.
pub const STATES: &[StateRow] = &[
    state!("Alabama", 4352000, "Montgomery", 218, 80),
    state!("Alaska", 614000, "Juneau", 280, 40),
    state!("Arizona", 4669000, "Phoenix", 233, 90),
    state!("Arkansas", 2538000, "Little Rock", 127, 45),
    state!("California", 32667000, "Sacramento", 2500, 300),
    state!("Colorado", 3971000, "Denver", 199, 85),
    state!("Connecticut", 3274000, "Hartford", 164, 60),
    state!("Delaware", 744000, "Dover", 240, 70),
    state!("Florida", 14916000, "Tallahassee", 746, 90),
    state!("Georgia", 7642000, "Atlanta", 382, 420),
    state!("Hawaii", 1193000, "Honolulu", 300, 95),
    state!("Idaho", 1229000, "Boise", 61, 25),
    state!("Illinois", 12045000, "Springfield", 602, 240),
    state!("Indiana", 5899000, "Indianapolis", 295, 110),
    state!("Iowa", 2862000, "Des Moines", 143, 50),
    state!("Kansas", 2629000, "Topeka", 131, 40),
    state!("Kentucky", 3936000, "Frankfort", 197, 35),
    state!("Louisiana", 4369000, "Baton Rouge", 218, 75),
    state!("Maine", 1244000, "Augusta", 62, 28),
    state!("Maryland", 5135000, "Annapolis", 257, 70),
    state!("Massachusetts", 6147000, "Boston", 307, 440),
    state!("Michigan", 9817000, "Lansing", 950, 55),
    state!("Minnesota", 4725000, "Saint Paul", 236, 85),
    state!("Mississippi", 2752000, "Jackson", 138, 230),
    state!("Missouri", 5439000, "Jefferson City", 272, 45),
    state!("Montana", 880000, "Helena", 44, 20),
    state!("Nebraska", 1663000, "Lincoln", 83, 140),
    state!("Nevada", 1747000, "Carson City", 87, 35),
    state!("New Hampshire", 1185000, "Concord", 59, 30),
    state!("New Jersey", 8115000, "Trenton", 406, 60),
    state!("New Mexico", 1737000, "Santa Fe", 87, 45),
    state!("New York", 18175000, "Albany", 1900, 110),
    state!("North Carolina", 7546000, "Raleigh", 377, 80),
    state!("North Dakota", 638000, "Bismarck", 32, 15),
    state!("Ohio", 11209000, "Columbus", 560, 180),
    state!("Oklahoma", 3347000, "Oklahoma City", 167, 60),
    state!("Oregon", 3282000, "Salem", 164, 65),
    state!("Pennsylvania", 12001000, "Harrisburg", 600, 50),
    state!("Rhode Island", 988000, "Providence", 49, 22),
    state!("South Carolina", 3836000, "Columbia", 192, 320),
    state!("South Dakota", 738000, "Pierre", 37, 90),
    state!("Tennessee", 5431000, "Nashville", 272, 120),
    state!("Texas", 19760000, "Austin", 1360, 170),
    state!("Utah", 2100000, "Salt Lake City", 105, 55),
    state!("Vermont", 591000, "Montpelier", 30, 12),
    state!("Virginia", 6791000, "Richmond", 340, 95),
    state!("Washington", 5689000, "Olympia", 2100, 50),
    state!("West Virginia", 1811000, "Charleston", 91, 40),
    state!("Wisconsin", 5224000, "Madison", 261, 100),
    state!("Wyoming", 481000, "Cheyenne", 110, 25),
];

/// The 37 ACM Special Interest Groups (1999-era roster), with relative
/// Web weights. Section 4.1's Sigs/Knuth example joins against these.
pub const SIGS: &[(&str, u32)] = &[
    ("SIGACT", 40),
    ("SIGAda", 12),
    ("SIGAPL", 8),
    ("SIGAPP", 14),
    ("SIGARCH", 35),
    ("SIGART", 22),
    ("SIGBIO", 9),
    ("SIGCAPH", 5),
    ("SIGCAS", 7),
    ("SIGCHI", 70),
    ("SIGCOMM", 55),
    ("SIGCPR", 6),
    ("SIGCSE", 30),
    ("SIGCUE", 5),
    ("SIGDA", 12),
    ("SIGDOC", 10),
    ("SIGGRAPH", 90),
    ("SIGGROUP", 8),
    ("SIGIR", 32),
    ("SIGKDD", 25),
    ("SIGMETRICS", 18),
    ("SIGMICRO", 9),
    ("SIGMIS", 7),
    ("SIGMOBILE", 15),
    ("SIGMOD", 60),
    ("SIGMM", 11),
    ("SIGNUM", 6),
    ("SIGOPS", 38),
    ("SIGPLAN", 50),
    ("SIGSAC", 10),
    ("SIGSAM", 8),
    ("SIGSIM", 7),
    ("SIGSOFT", 33),
    ("SIGSPATIAL", 6),
    ("SIGUCCS", 5),
    ("SIGWEB", 13),
    ("SIGSOUND", 4),
];

/// Co-occurrence weights of each SIG with the keyword "Knuth" — the paper
/// reports (footnote 3) the order SIGACT, SIGPLAN, SIGGRAPH, SIGMOD,
/// SIGCOMM, SIGSAM with `Count = 0` for all other Sigs.
pub const SIG_KNUTH: &[(&str, u32)] = &[
    ("SIGACT", 30),
    ("SIGPLAN", 24),
    ("SIGGRAPH", 18),
    ("SIGMOD", 12),
    ("SIGCOMM", 7),
    ("SIGSAM", 3),
];

/// Computer-science fields (Section 4.5 Example 3's `CSFields` table).
pub const CS_FIELDS: &[(&str, u32)] = &[
    ("databases", 50),
    ("operating systems", 45),
    ("artificial intelligence", 60),
    ("networking", 55),
    ("graphics", 48),
    ("algorithms", 42),
    ("compilers", 25),
    ("architecture", 38),
    ("security", 35),
    ("theory", 30),
    ("robotics", 28),
    ("databases systems", 6),
];

/// Movies (pre-2000), used by the DSQ example: title, relative weight.
pub const MOVIES: &[(&str, u32)] = &[
    ("Jaws", 60),
    ("Titanic", 95),
    ("The Abyss", 30),
    ("Waterworld", 25),
    ("Thunderball", 20),
    ("Star Wars", 100),
    ("Casablanca", 45),
    ("Vertigo", 35),
    ("Psycho", 40),
    ("Fargo", 30),
    ("Twister", 28),
    ("Volcano", 18),
    ("Armageddon", 33),
    ("The Godfather", 70),
    ("Goldfinger", 26),
    ("Key Largo", 15),
    ("Apollo 13", 38),
    ("Forrest Gump", 55),
    ("The Birds", 22),
    ("Dances with Wolves", 27),
];

/// Movies with an affinity for the phrase "scuba diving" (DSQ example:
/// underwater thrillers). Weight = co-occurrence strength.
pub const MOVIE_SCUBA: &[(&str, u32)] = &[
    ("The Abyss", 25),
    ("Thunderball", 18),
    ("Jaws", 12),
    ("Key Largo", 6),
];

/// States with an affinity for "scuba diving" (DSQ example).
pub const STATE_SCUBA: &[(&str, u32)] = &[
    ("Florida", 30),
    ("Hawaii", 12),
    ("California", 15),
    ("Texas", 4),
];

/// Topic constants — the pool Template 1/2 instantiate `V1`/`V2` from
/// (Section 5: "computer", "beaches", "crime", "politics", "frogs", …).
pub const TOPICS: &[&str] = &[
    "computer",
    "beaches",
    "crime",
    "politics",
    "frogs",
    "lakes",
    "football",
    "taxes",
    "hiking",
    "weather",
    "music",
    "history",
    "wine",
    "desert",
    "gold",
    "oil",
    "fishing",
    "skiing",
    "casinos",
    "universities",
];

/// Filler vocabulary for synthetic page text.
pub const FILLER: &[&str] = &[
    "the",
    "a",
    "of",
    "and",
    "to",
    "in",
    "for",
    "is",
    "on",
    "that",
    "with",
    "as",
    "was",
    "at",
    "by",
    "this",
    "from",
    "are",
    "or",
    "an",
    "be",
    "it",
    "page",
    "home",
    "site",
    "web",
    "information",
    "welcome",
    "news",
    "links",
    "about",
    "contact",
    "guide",
    "travel",
    "visit",
    "official",
    "online",
    "service",
    "city",
    "county",
    "park",
    "river",
    "mountain",
    "school",
    "library",
    "museum",
    "hotel",
    "restaurant",
    "map",
    "photo",
    "gallery",
    "events",
    "calendar",
    "business",
    "government",
    "department",
    "office",
    "center",
    "community",
    "local",
    "national",
    "report",
    "review",
    "year",
    "new",
    "best",
    "great",
    "area",
    "north",
    "south",
    "east",
    "west",
    "people",
    "family",
    "house",
    "land",
    "water",
    "road",
    "trail",
    "club",
    "team",
    "game",
    "season",
    "festival",
    "fair",
    "market",
    "store",
    "shop",
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fifty_states_thirty_seven_sigs() {
        assert_eq!(STATES.len(), 50);
        assert_eq!(SIGS.len(), 37);
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<&str> = STATES.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 50);
        let sigs: HashSet<&str> = SIGS.iter().map(|(n, _)| *n).collect();
        assert_eq!(sigs.len(), 37);
    }

    #[test]
    fn query1_shape_holds_in_weights() {
        // California > Washington > New York > Texas > Michigan > rest.
        let w = |n: &str| {
            STATES
                .iter()
                .find(|s| s.name == n)
                .map(|s| s.web_weight)
                .unwrap()
        };
        let top5 = ["California", "Washington", "New York", "Texas", "Michigan"];
        for pair in top5.windows(2) {
            assert!(w(pair[0]) > w(pair[1]), "{} <= {}", pair[0], pair[1]);
        }
        let fifth = w("Michigan");
        for s in STATES {
            if !top5.contains(&s.name) {
                assert!(s.web_weight < fifth, "{} breaks the top-5 shape", s.name);
            }
        }
    }

    #[test]
    fn query2_shape_holds_in_weights() {
        // weight/population ordering: Alaska > Washington > Delaware >
        // Hawaii > Wyoming > everyone else.
        let ratio = |n: &str| {
            let s = STATES.iter().find(|s| s.name == n).unwrap();
            s.web_weight as f64 / s.population as f64
        };
        let top5 = ["Alaska", "Washington", "Delaware", "Hawaii", "Wyoming"];
        for pair in top5.windows(2) {
            assert!(
                ratio(pair[0]) > ratio(pair[1]),
                "{} <= {}",
                pair[0],
                pair[1]
            );
        }
        let fifth = ratio("Wyoming");
        for s in STATES {
            if !top5.contains(&s.name) {
                let r = s.web_weight as f64 / s.population as f64;
                assert!(r < fifth, "{} breaks the normalized top-5 shape", s.name);
            }
        }
    }

    #[test]
    fn query4_shape_exactly_six_capitals_win() {
        let winners: Vec<&str> = STATES
            .iter()
            .filter(|s| s.capital_weight > s.web_weight)
            .map(|s| s.capital)
            .collect();
        let mut expected = vec![
            "Atlanta", "Lincoln", "Boston", "Jackson", "Pierre", "Columbia",
        ];
        let mut got = winners.clone();
        expected.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn knuth_sigs_are_real_sigs_in_paper_order() {
        let sigs: HashSet<&str> = SIGS.iter().map(|(n, _)| *n).collect();
        for (name, _) in SIG_KNUTH {
            assert!(sigs.contains(name));
        }
        for pair in SIG_KNUTH.windows(2) {
            assert!(pair[0].1 > pair[1].1, "Knuth ordering must be strict");
        }
    }
}
