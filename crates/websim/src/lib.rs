//! The simulated Web: a deterministic synthetic corpus plus search-engine
//! personalities standing in for 1999's AltaVista and Google.
//!
//! This crate is the substitution documented in `DESIGN.md` §4: the paper
//! queries the live Web through commercial search engines; we generate a
//! corpus whose statistics reproduce the *shapes* of the paper's results
//! (state popularity, the "four corners" cluster, capital/state name
//! collisions, the SIG-"Knuth" co-occurrences) and expose it through the
//! same interface WSQ uses for real engines
//! ([`wsq_pump::SearchService`]).
//!
//! ```
//! use wsq_websim::{CorpusConfig, EngineKind, SimWeb};
//!
//! let web = SimWeb::build(CorpusConfig::small());
//! let av = web.engine(EngineKind::AltaVista);
//! assert!(av.count("California") > av.count("Wyoming"));
//! ```

pub mod cache;
pub mod corpus;
pub mod data;
pub mod engine;
pub mod flaky;
pub mod latency;
pub mod search;
pub mod symbols;

pub use cache::{CacheConfig, CacheStats, CachedService};
pub use corpus::{Corpus, CorpusConfig, Page};
pub use engine::{EngineKind, SimEngine};
pub use flaky::{FlakyService, FlakyStats, RetryService};
pub use latency::LatencyModel;
pub use search::{parse_query, Connective, WebQuery};

use std::sync::Arc;

/// A handle to one generated Web: share it among any number of engines.
#[derive(Clone)]
pub struct SimWeb {
    corpus: Arc<Corpus>,
}

impl SimWeb {
    /// Generate the Web described by `config` (deterministic).
    pub fn build(config: CorpusConfig) -> SimWeb {
        SimWeb {
            corpus: Arc::new(Corpus::generate(&config)),
        }
    }

    /// The underlying corpus.
    pub fn corpus(&self) -> &Arc<Corpus> {
        &self.corpus
    }

    /// An engine of `kind` with zero latency (for tests).
    pub fn engine(&self, kind: EngineKind) -> Arc<SimEngine> {
        self.engine_with_latency(kind, LatencyModel::Zero)
    }

    /// An engine of `kind` with the given latency model.
    pub fn engine_with_latency(&self, kind: EngineKind, latency: LatencyModel) -> Arc<SimEngine> {
        Arc::new(SimEngine::new(self.corpus.clone(), kind, latency))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_share_one_corpus() {
        let web = SimWeb::build(CorpusConfig::small());
        let av = web.engine(EngineKind::AltaVista);
        let go = web.engine(EngineKind::Google);
        // Single keywords have identical counts regardless of personality
        // (AND vs NEAR only matters for multi-phrase queries).
        assert_eq!(av.count("Texas"), go.count("Texas"));
    }
}
