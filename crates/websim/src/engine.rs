//! Simulated search-engine personalities.
//!
//! Two engines with 1999-era characters:
//!
//! * **AltaVista** — supports the `NEAR` operator; ranking weights
//!   term-frequency heavily with a mild static-authority component.
//! * **Google** — no `NEAR` (queries degrade to `AND`, which is why WSQ's
//!   default `SearchExp` for Google is `"%1 %2 … %n"`); ranking is
//!   dominated by static (link-style) authority.
//!
//! Both implement [`wsq_pump::SearchService`], so they plug into either the
//! synchronous `EVScan` path or the asynchronous ReqPump path unchanged.

use crate::corpus::Corpus;
use crate::latency::LatencyModel;
use crate::search::{evaluate, parse_query, PageMatch};
use std::sync::Arc;
use wsq_pump::{PageHit, RequestKind, SearchRequest, SearchResult, SearchService, ServiceReply};

/// Which engine personality to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// AltaVista-like: `NEAR` support, tf-weighted ranking.
    AltaVista,
    /// Google-like: `AND` semantics, authority-weighted ranking.
    Google,
}

impl EngineKind {
    /// Does this engine support the `NEAR` proximity operator?
    pub fn supports_near(&self) -> bool {
        matches!(self, EngineKind::AltaVista)
    }

    /// Conventional destination name used in examples and benchmarks.
    pub fn default_name(&self) -> &'static str {
        match self {
            EngineKind::AltaVista => "AV",
            EngineKind::Google => "Google",
        }
    }
}

/// A simulated search engine over a shared corpus.
pub struct SimEngine {
    corpus: Arc<Corpus>,
    kind: EngineKind,
    latency: LatencyModel,
}

impl SimEngine {
    /// Create an engine of `kind` over `corpus` with the given latency.
    pub fn new(corpus: Arc<Corpus>, kind: EngineKind, latency: LatencyModel) -> Self {
        SimEngine {
            corpus,
            kind,
            latency,
        }
    }

    /// The engine personality.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// Total number of pages matching `expr` — what `WebCount` reports.
    /// Engines return this without delivering URLs (paper §3).
    pub fn count(&self, expr: &str) -> u64 {
        let q = parse_query(expr, self.kind.supports_near());
        evaluate(&self.corpus, &q).len() as u64
    }

    /// The top `max_rank` hits for `expr`, rank ascending — `WebPages`.
    pub fn search(&self, expr: &str, max_rank: u32) -> Vec<PageHit> {
        let q = parse_query(expr, self.kind.supports_near());
        let mut matches = evaluate(&self.corpus, &q);
        self.sort_by_score(&mut matches);
        matches
            .iter()
            .take(max_rank as usize)
            .enumerate()
            .map(|(i, m)| {
                let page = &self.corpus.pages[m.page as usize];
                PageHit {
                    url: page.url.clone(),
                    rank: i as u32 + 1,
                    date: page.date.clone(),
                }
            })
            .collect()
    }

    fn score(&self, m: &PageMatch) -> f64 {
        let page = &self.corpus.pages[m.page as usize];
        // Saturating tf: more mentions help, with diminishing returns.
        let tf = m.occurrences as f64 / (1.0 + m.occurrences as f64);
        match self.kind {
            EngineKind::AltaVista => 2.0 * tf + 0.8 * page.av_auth,
            EngineKind::Google => 0.4 * tf + 2.5 * page.g_auth,
        }
    }

    fn sort_by_score(&self, matches: &mut [PageMatch]) {
        matches.sort_by(|a, b| {
            self.score(b)
                .partial_cmp(&self.score(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.page.cmp(&b.page)) // deterministic tiebreak
        });
    }
}

impl SearchService for SimEngine {
    fn execute(&self, req: &SearchRequest) -> ServiceReply {
        let result = match &req.kind {
            RequestKind::Count => SearchResult::Count(self.count(&req.expr)),
            RequestKind::Pages { max_rank } => {
                SearchResult::pages_from(self.search(&req.expr, *max_rank))
            }
        };
        ServiceReply {
            result: Ok(result),
            latency: self.latency.sample(&format!("{req}")),
        }
    }

    /// Batched windows hand the whole slice over in one call. Each reply
    /// is computed exactly as `execute` would — same evaluation, same
    /// per-request latency sample — so windowed dispatch is
    /// byte-identical to N individual calls. Decorators (caching, retry,
    /// fault injection) deliberately keep the trait's per-request
    /// default, which preserves their single-flight accounting.
    fn execute_batch(&self, reqs: &[SearchRequest]) -> Vec<ServiceReply> {
        reqs.iter().map(|r| self.execute(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;
    use std::time::Duration;

    fn corpus() -> Arc<Corpus> {
        Arc::new(Corpus::generate(&CorpusConfig::small()))
    }

    #[test]
    fn count_reflects_weights() {
        let c = corpus();
        let av = SimEngine::new(c, EngineKind::AltaVista, LatencyModel::Zero);
        let ca = av.count("California");
        let wy = av.count("Wyoming");
        assert!(ca > wy * 5, "California ({ca}) should dwarf Wyoming ({wy})");
        assert!(wy > 0);
    }

    #[test]
    fn search_returns_ranked_hits() {
        let c = corpus();
        let av = SimEngine::new(c, EngineKind::AltaVista, LatencyModel::Zero);
        let hits = av.search("Texas", 10);
        assert_eq!(hits.len(), 10);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.rank, i as u32 + 1);
            assert!(!h.url.is_empty());
            assert!(h.date.starts_with("199"));
        }
        // Determinism.
        let av2 = SimEngine::new(corpus(), EngineKind::AltaVista, LatencyModel::Zero);
        assert_eq!(av2.search("Texas", 10), hits);
    }

    #[test]
    fn engines_rank_differently_but_sometimes_agree() {
        let c = corpus();
        let av = SimEngine::new(c.clone(), EngineKind::AltaVista, LatencyModel::Zero);
        let go = SimEngine::new(c, EngineKind::Google, LatencyModel::Zero);
        let mut agreements = 0;
        let mut disagreements = 0;
        for state in [
            "California",
            "Texas",
            "Florida",
            "Ohio",
            "Georgia",
            "Nevada",
        ] {
            let a: std::collections::HashSet<String> =
                av.search(state, 5).into_iter().map(|h| h.url).collect();
            let g: std::collections::HashSet<String> =
                go.search(state, 5).into_iter().map(|h| h.url).collect();
            agreements += a.intersection(&g).count();
            disagreements += a.difference(&g).count();
        }
        assert!(agreements > 0, "engines never agree");
        assert!(
            disagreements > agreements,
            "engines agree too much ({agreements} vs {disagreements})"
        );
    }

    #[test]
    fn google_ignores_near_but_still_ands() {
        let c = corpus();
        let go = SimEngine::new(c.clone(), EngineKind::Google, LatencyModel::Zero);
        let av = SimEngine::new(c, EngineKind::AltaVista, LatencyModel::Zero);
        // For Google, `near` is an ordinary keyword that matches nothing
        // much; WSQ's planner therefore uses the space-separated template.
        let and_count = go.count("Colorado \"four corners\"");
        let near_count = av.count("Colorado near \"four corners\"");
        assert!(and_count >= near_count, "AND is weaker than NEAR");
        assert!(near_count > 0);
    }

    #[test]
    fn knuth_ordering_matches_paper_footnote() {
        let c = corpus();
        let av = SimEngine::new(c, EngineKind::AltaVista, LatencyModel::Zero);
        let ordered = [
            "SIGACT", "SIGPLAN", "SIGGRAPH", "SIGMOD", "SIGCOMM", "SIGSAM",
        ];
        let counts: Vec<u64> = ordered
            .iter()
            .map(|s| av.count(&format!("{s} near Knuth")))
            .collect();
        for w in counts.windows(2) {
            assert!(w[0] > w[1], "Knuth ordering violated: {counts:?}");
        }
        // All other Sigs: count 0.
        assert_eq!(av.count("SIGCHI near Knuth"), 0);
        assert_eq!(av.count("SIGOPS near Knuth"), 0);
    }

    #[test]
    fn service_trait_roundtrip_with_latency() {
        let c = corpus();
        let av = SimEngine::new(
            c,
            EngineKind::AltaVista,
            LatencyModel::Fixed(Duration::from_millis(5)),
        );
        let req = SearchRequest {
            engine: "AV".into(),
            expr: "Michigan".into(),
            kind: RequestKind::Count,
        };
        let reply = av.execute(&req);
        assert_eq!(reply.latency, Duration::from_millis(5));
        assert!(reply.result.unwrap().count().unwrap() > 0);

        let req = SearchRequest {
            engine: "AV".into(),
            expr: "Michigan".into(),
            kind: RequestKind::Pages { max_rank: 3 },
        };
        let reply = av.execute(&req);
        assert_eq!(reply.result.unwrap().pages().unwrap().len(), 3);
    }

    #[test]
    fn batch_replies_match_individual_execution() {
        let c = corpus();
        let av = SimEngine::new(
            c,
            EngineKind::AltaVista,
            LatencyModel::Jitter {
                base: Duration::from_millis(1),
                jitter: Duration::from_millis(4),
            },
        );
        let reqs: Vec<SearchRequest> = ["Texas", "Ohio", "Nevada"]
            .iter()
            .map(|s| SearchRequest {
                engine: "AV".into(),
                expr: (*s).to_string(),
                kind: RequestKind::Count,
            })
            .collect();
        let batched = av.execute_batch(&reqs);
        assert_eq!(batched.len(), reqs.len());
        for (req, reply) in reqs.iter().zip(&batched) {
            let solo = av.execute(req);
            // Latency sampling is keyed on the request, so even jittered
            // models agree between the two paths.
            assert_eq!(reply.latency, solo.latency);
            assert_eq!(
                reply.result.as_ref().unwrap().count().unwrap(),
                solo.result.unwrap().count().unwrap()
            );
        }
    }

    #[test]
    fn empty_expression_matches_nothing() {
        let c = corpus();
        let av = SimEngine::new(c, EngineKind::AltaVista, LatencyModel::Zero);
        assert_eq!(av.count(""), 0);
        assert!(av.search("", 5).is_empty());
    }
}
