//! Failure injection: a deterministic flaky-engine wrapper and a retry
//! decorator.
//!
//! 1999 search engines failed often enough that the paper's experimental
//! protocol had to work around them ("performance … can fluctuate
//! considerably depending on load"). [`FlakyService`] makes a fraction of
//! requests fail *deterministically* (keyed on the request), so tests can
//! exercise every error path reproducibly; [`RetryService`] is the
//! corresponding recovery decorator.

use parking_lot::Mutex;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Duration;
use wsq_common::WsqError;
use wsq_obs::{EventKind, Obs};
use wsq_pump::{SearchRequest, SearchService, ServiceReply};

/// Failure-injection statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlakyStats {
    /// Requests that were failed.
    pub failures: u64,
    /// Requests passed through.
    pub successes: u64,
}

/// Fails a deterministic subset of requests with a search error.
pub struct FlakyService {
    inner: Arc<dyn SearchService>,
    /// Fail when `hash(request, seed) % 1000 < failure_permille`.
    failure_permille: u32,
    seed: u64,
    stats: Mutex<FlakyStats>,
    obs: Obs,
}

impl FlakyService {
    /// Wrap `inner`, failing roughly `failure_permille`/1000 of requests.
    pub fn new(inner: Arc<dyn SearchService>, failure_permille: u32, seed: u64) -> Arc<Self> {
        Self::with_obs(inner, failure_permille, seed, Obs::disabled())
    }

    /// Like [`FlakyService::new`], additionally mirroring injected
    /// failures into the `wsq_flaky_failures_total` registry counter.
    pub fn with_obs(
        inner: Arc<dyn SearchService>,
        failure_permille: u32,
        seed: u64,
        obs: Obs,
    ) -> Arc<Self> {
        Arc::new(FlakyService {
            inner,
            failure_permille: failure_permille.min(1000),
            seed,
            stats: Mutex::new(FlakyStats::default()),
            obs,
        })
    }

    /// Would this request fail? (Deterministic; useful for test oracles.)
    pub fn would_fail(&self, req: &SearchRequest) -> bool {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.seed.hash(&mut h);
        req.hash(&mut h);
        (h.finish() % 1000) < self.failure_permille as u64
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> FlakyStats {
        *self.stats.lock()
    }
}

impl SearchService for FlakyService {
    fn execute(&self, req: &SearchRequest) -> ServiceReply {
        if self.would_fail(req) {
            self.stats.lock().failures += 1;
            if let Some(m) = self.obs.metrics() {
                m.flaky_failures.inc();
            }
            return ServiceReply {
                result: Err(WsqError::Search(format!(
                    "503 service unavailable for {req}"
                ))),
                latency: Duration::from_millis(1),
            };
        }
        self.stats.lock().successes += 1;
        self.inner.execute(req)
    }
}

/// Retries the inner service until it succeeds or attempts are exhausted.
///
/// The retry happens inside `execute`, so it composes with either pump
/// dispatcher; the reported latency is the sum over attempts (each retry
/// costs another round trip).
pub struct RetryService {
    inner: Arc<dyn SearchService>,
    attempts: u32,
    obs: Obs,
}

impl RetryService {
    /// Wrap `inner`, trying up to `attempts` times (min 1).
    pub fn new(inner: Arc<dyn SearchService>, attempts: u32) -> Arc<Self> {
        Self::with_obs(inner, attempts, Obs::disabled())
    }

    /// Like [`RetryService::new`], additionally counting re-issues in
    /// `wsq_retries_total` and — when executing on behalf of a pump call
    /// (see [`wsq_obs::current_call`]) — recording a `Retried` trace
    /// event against that call.
    pub fn with_obs(inner: Arc<dyn SearchService>, attempts: u32, obs: Obs) -> Arc<Self> {
        Arc::new(RetryService {
            inner,
            attempts: attempts.max(1),
            obs,
        })
    }
}

impl SearchService for RetryService {
    fn execute(&self, req: &SearchRequest) -> ServiceReply {
        let mut total_latency = Duration::ZERO;
        let mut last = None;
        for attempt in 0..self.attempts {
            if attempt > 0 {
                if let Some(m) = self.obs.metrics() {
                    m.retries.inc();
                }
                if let Some(call) = wsq_obs::current_call() {
                    self.obs.event(call, EventKind::Retried);
                }
            }
            // Salt the request so a deterministic flake doesn't fail every
            // attempt identically — mirroring real engines where a retry
            // hits a different replica. The salt is whitespace-class only
            // (zero-width spaces), so tokenization ignores it and the
            // retried query is *semantically identical* to the original.
            let salted = if attempt == 0 {
                req.clone()
            } else {
                SearchRequest {
                    expr: format!("{}{}", req.expr, "\u{200b}".repeat(attempt as usize)),
                    ..req.clone()
                }
            };
            let reply = self.inner.execute(&salted);
            total_latency += reply.latency;
            match reply.result {
                Ok(result) => {
                    return ServiceReply {
                        result: Ok(result),
                        latency: total_latency,
                    }
                }
                Err(e) => last = Some(e),
            }
        }
        ServiceReply {
            result: Err(last.expect("at least one attempt")),
            latency: total_latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsq_pump::{RequestKind, SearchResult};

    struct Always(u64);
    impl SearchService for Always {
        fn execute(&self, _req: &SearchRequest) -> ServiceReply {
            ServiceReply::instant(SearchResult::Count(self.0))
        }
    }

    fn req(expr: &str) -> SearchRequest {
        SearchRequest {
            engine: "AV".into(),
            expr: expr.into(),
            kind: RequestKind::Count,
        }
    }

    #[test]
    fn flaky_is_deterministic_and_proportional() {
        let flaky = FlakyService::new(Arc::new(Always(7)), 300, 42);
        let outcomes: Vec<bool> = (0..500)
            .map(|i| flaky.would_fail(&req(&format!("q{i}"))))
            .collect();
        // Deterministic: same answers again.
        for (i, &o) in outcomes.iter().enumerate() {
            assert_eq!(flaky.would_fail(&req(&format!("q{i}"))), o);
        }
        let failures = outcomes.iter().filter(|&&b| b).count();
        assert!(
            (100..=200).contains(&failures),
            "~30% of 500, got {failures}"
        );
        // Execute matches the oracle.
        for (i, &expect_err) in outcomes.iter().enumerate().take(50) {
            let r = flaky.execute(&req(&format!("q{i}")));
            assert_eq!(r.result.is_err(), expect_err);
        }
    }

    #[test]
    fn zero_and_total_failure_rates() {
        let never = FlakyService::new(Arc::new(Always(1)), 0, 1);
        assert!(never.execute(&req("x")).result.is_ok());
        let always = FlakyService::new(Arc::new(Always(1)), 1000, 1);
        assert!(always.execute(&req("x")).result.is_err());
        assert_eq!(always.stats().failures, 1);
    }

    #[test]
    fn retry_recovers_from_flakes() {
        let flaky = FlakyService::new(Arc::new(Always(9)), 300, 7);
        let retry = RetryService::new(flaky.clone(), 8);
        // With 30% failure and 8 salted attempts, a full failing chain has
        // probability 0.3^8 ≈ 7e-5 per request; the fixed seed has none.
        for i in 0..100 {
            let r = retry.execute(&req(&format!("r{i}")));
            assert!(r.result.is_ok(), "request r{i} failed after retries");
        }
        assert!(flaky.stats().failures > 10, "flakes did occur");
    }

    #[test]
    fn retry_salt_is_semantically_invisible_to_the_engine() {
        // The salted retry expression must evaluate identically to the
        // original on a real engine (the salt is whitespace-class only).
        use crate::{CorpusConfig, EngineKind, SimWeb};
        let web = SimWeb::build(CorpusConfig::small());
        let av = web.engine(EngineKind::AltaVista);
        // Force failures on first attempts so retries actually happen.
        let flaky = FlakyService::new(av.clone(), 500, 99);
        let retry = RetryService::new(flaky, 10);
        for expr in ["Utah", "Colorado near \"four corners\"", "\"New Mexico\""] {
            let direct = av.count(expr);
            let via_retry = retry
                .execute(&SearchRequest {
                    engine: "AV".into(),
                    expr: expr.into(),
                    kind: RequestKind::Count,
                })
                .result
                .unwrap()
                .count()
                .unwrap();
            assert_eq!(via_retry, direct, "salt changed semantics of {expr:?}");
        }
    }

    #[test]
    fn retry_exhaustion_reports_the_error() {
        let always_fail = FlakyService::new(Arc::new(Always(1)), 1000, 1);
        let retry = RetryService::new(always_fail, 3);
        let r = retry.execute(&req("doomed"));
        assert!(r.result.unwrap_err().to_string().contains("503"));
    }
}
