//! Term interning and tokenization.

use std::collections::HashMap;

/// Interns terms as dense `u32` symbols, keeping the corpus and inverted
/// index compact (string comparisons happen only at the boundary).
#[derive(Debug, Default)]
pub struct SymbolTable {
    map: HashMap<String, u32>,
    names: Vec<String>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term` (must already be normalized), returning its symbol.
    pub fn intern(&mut self, term: &str) -> u32 {
        if let Some(&s) = self.map.get(term) {
            return s;
        }
        let s = self.names.len() as u32;
        self.map.insert(term.to_string(), s);
        self.names.push(term.to_string());
        s
    }

    /// Look up a normalized term without interning.
    pub fn get(&self, term: &str) -> Option<u32> {
        self.map.get(term).copied()
    }

    /// The term for a symbol.
    pub fn name(&self, sym: u32) -> &str {
        &self.names[sym as usize]
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True iff no terms are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Normalize text into lowercase alphanumeric word tokens.
///
/// `"St. Paul"` → `["st", "paul"]`; `"SIGMOD'99"` → `["sigmod", "99"]`.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            cur.extend(ch.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("colorado");
        let b = t.intern("colorado");
        let c = t.intern("denver");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.name(a), "colorado");
        assert_eq!(t.get("denver"), Some(c));
        assert_eq!(t.get("utah"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn tokenize_normalizes() {
        assert_eq!(tokenize("St. Paul"), vec!["st", "paul"]);
        assert_eq!(tokenize("Four Corners!"), vec!["four", "corners"]);
        assert_eq!(tokenize("SIGMOD'99 rocks"), vec!["sigmod", "99", "rocks"]);
        assert_eq!(tokenize("  "), Vec::<String>::new());
        assert_eq!(tokenize("a"), vec!["a"]);
    }
}
