//! Search-expression parsing and evaluation over the corpus index.
//!
//! The expression language matches what WSQ needs from 1999-era engines:
//! bare keywords, `"quoted phrases"`, and the `NEAR` proximity connective
//! (AltaVista supported `NEAR`; Google did not — its engine personality
//! treats all phrases as an `AND` query, which is why the paper's default
//! `SearchExp` differs per engine).

use crate::corpus::Corpus;
use crate::symbols::tokenize;
use std::collections::HashMap;

/// How a multi-phrase query combines its phrases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Connective {
    /// Consecutive phrases must occur within the proximity window.
    Near,
    /// All phrases must occur somewhere in the page.
    And,
}

/// A parsed search expression: a list of phrases plus a connective.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WebQuery {
    /// Each phrase is a sequence of normalized words.
    pub phrases: Vec<Vec<String>>,
    /// Combination semantics.
    pub connective: Connective,
}

/// Parse a search expression.
///
/// * Quoted segments (`"four corners"`) become multi-word phrases.
/// * The bare word `near` (case-insensitive) is a connective when
///   `support_near` is true; otherwise it is an ordinary keyword.
/// * Any unquoted word is a one-word phrase.
///
/// If at least one `near` connective appears, the whole query uses
/// [`Connective::Near`] chain semantics (the paper's default `SearchExp`
/// is `"%1 near %2 near … near %n"`); otherwise [`Connective::And`].
pub fn parse_query(expr: &str, support_near: bool) -> WebQuery {
    let mut phrases: Vec<Vec<String>> = Vec::new();
    let mut connective = Connective::And;
    let mut rest = expr;
    while !rest.is_empty() {
        rest = rest.trim_start();
        if rest.is_empty() {
            break;
        }
        if let Some(stripped) = rest.strip_prefix('"') {
            let end = stripped.find('"').unwrap_or(stripped.len());
            let inner = &stripped[..end];
            let words = tokenize(inner);
            if !words.is_empty() {
                phrases.push(words);
            }
            rest = stripped.get(end + 1..).unwrap_or("");
        } else {
            let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
            let word = &rest[..end];
            if support_near && word.eq_ignore_ascii_case("near") {
                connective = Connective::Near;
            } else {
                let words = tokenize(word);
                if !words.is_empty() {
                    phrases.push(words);
                }
            }
            rest = &rest[end..];
        }
    }
    WebQuery {
        phrases,
        connective,
    }
}

/// A page matching a query, with its total phrase-occurrence count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMatch {
    /// Page index into the corpus.
    pub page: u32,
    /// Total phrase occurrences (term-frequency signal for ranking).
    pub occurrences: u32,
}

/// All start positions of `words` (as a consecutive phrase) per page.
fn phrase_occurrences(corpus: &Corpus, words: &[String]) -> HashMap<u32, Vec<u32>> {
    let mut out: HashMap<u32, Vec<u32>> = HashMap::new();
    let Some(first_sym) = corpus.symbols.get(&words[0]) else {
        return out;
    };
    let Some(first_postings) = corpus.index.get(&first_sym) else {
        return out;
    };
    // Resolve the rest of the phrase to symbols up front; an unknown word
    // means the phrase occurs nowhere.
    let mut rest_syms = Vec::with_capacity(words.len() - 1);
    for w in &words[1..] {
        match corpus.symbols.get(w) {
            Some(s) => rest_syms.push(s),
            None => return out,
        }
    }
    for posting in first_postings {
        let page_terms = &corpus.pages[posting.page as usize].terms;
        let mut starts = Vec::new();
        'pos: for &p in &posting.positions {
            for (k, &sym) in rest_syms.iter().enumerate() {
                let idx = p as usize + k + 1;
                if idx >= page_terms.len() || page_terms[idx] != sym {
                    continue 'pos;
                }
            }
            starts.push(p);
        }
        if !starts.is_empty() {
            out.insert(posting.page, starts);
        }
    }
    out
}

/// Evaluate a query, returning matching pages (unsorted).
pub fn evaluate(corpus: &Corpus, query: &WebQuery) -> Vec<PageMatch> {
    if query.phrases.is_empty() {
        return Vec::new();
    }
    let occ: Vec<HashMap<u32, Vec<u32>>> = query
        .phrases
        .iter()
        .map(|p| phrase_occurrences(corpus, p))
        .collect();

    // Candidate pages: intersection, driven by the smallest map.
    let smallest = occ
        .iter()
        .enumerate()
        .min_by_key(|(_, m)| m.len())
        .map(|(i, _)| i)
        .expect("non-empty phrase list");

    let mut matches = Vec::new();
    'pages: for &page in occ[smallest].keys() {
        for m in &occ {
            if !m.contains_key(&page) {
                continue 'pages;
            }
        }
        if query.connective == Connective::Near && occ.len() > 1 {
            // Chain semantics: consecutive phrases within the window.
            let w = corpus.near_window as i64;
            for pair in occ.windows(2) {
                let a = &pair[0][&page];
                let b = &pair[1][&page];
                let close = a
                    .iter()
                    .any(|&pa| b.iter().any(|&pb| (pa as i64 - pb as i64).abs() <= w));
                if !close {
                    continue 'pages;
                }
            }
        }
        let occurrences: u32 = occ.iter().map(|m| m[&page].len() as u32).sum();
        matches.push(PageMatch { page, occurrences });
    }
    matches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Corpus, CorpusConfig, Page};
    use crate::symbols::SymbolTable;

    /// Hand-built corpus for precise matching semantics.
    fn tiny() -> Corpus {
        let mut symbols = SymbolTable::new();
        let mut pages = Vec::new();
        let mut add = |symbols: &mut SymbolTable, text: &str| {
            let terms: Vec<u32> = tokenize(text).iter().map(|w| symbols.intern(w)).collect();
            pages.push(Page {
                url: format!("www.p{}.test/", pages.len()),
                date: "1999-10-01".into(),
                terms,
                av_auth: 0.5,
                g_auth: 0.5,
            });
        };
        add(&mut symbols, "welcome to colorado four corners monument");
        add(&mut symbols, "colorado ski resorts and hotels");
        add(
            &mut symbols,
            "four corners area guide utah arizona new mexico",
        );
        add(&mut symbols, "corners of the world four continents"); // "four corners" NOT adjacent
        add(&mut symbols, "new mexico santa fe travel");
        let index = {
            let mut idx: std::collections::HashMap<u32, Vec<crate::corpus::Posting>> =
                Default::default();
            for (pid, page) in pages.iter().enumerate() {
                for (pos, &t) in page.terms.iter().enumerate() {
                    let ps = idx.entry(t).or_default();
                    match ps.last_mut() {
                        Some(p) if p.page == pid as u32 => p.positions.push(pos as u32),
                        _ => ps.push(crate::corpus::Posting {
                            page: pid as u32,
                            positions: vec![pos as u32],
                        }),
                    }
                }
            }
            idx
        };
        Corpus {
            symbols,
            pages,
            index,
            near_window: 5,
        }
    }

    fn pages_of(matches: &[PageMatch]) -> Vec<u32> {
        let mut v: Vec<u32> = matches.iter().map(|m| m.page).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn parse_keywords_phrases_and_near() {
        let q = parse_query("Colorado near \"four corners\"", true);
        assert_eq!(q.connective, Connective::Near);
        assert_eq!(
            q.phrases,
            vec![
                vec!["colorado".to_string()],
                vec!["four".into(), "corners".into()]
            ]
        );

        let q = parse_query("\"new mexico\" computer", true);
        assert_eq!(q.connective, Connective::And);
        assert_eq!(q.phrases.len(), 2);

        // Without NEAR support, `near` is just a keyword.
        let q = parse_query("a near b", false);
        assert_eq!(q.connective, Connective::And);
        assert_eq!(q.phrases.len(), 3);

        // Unterminated quote: everything to the end is the phrase.
        let q = parse_query("\"four corners", true);
        assert_eq!(q.phrases, vec![vec!["four".to_string(), "corners".into()]]);

        // Empty expressions parse to zero phrases.
        assert!(parse_query("", true).phrases.is_empty());
        assert!(parse_query("\"\"", true).phrases.is_empty());
    }

    #[test]
    fn single_keyword_matches_all_containing_pages() {
        let c = tiny();
        let q = parse_query("colorado", true);
        assert_eq!(pages_of(&evaluate(&c, &q)), vec![0, 1]);
    }

    #[test]
    fn phrase_requires_adjacency() {
        let c = tiny();
        let q = parse_query("\"four corners\"", true);
        // Page 3 has both words but not adjacent.
        assert_eq!(pages_of(&evaluate(&c, &q)), vec![0, 2]);
        let q = parse_query("\"new mexico\"", true);
        assert_eq!(pages_of(&evaluate(&c, &q)), vec![2, 4]);
    }

    #[test]
    fn near_requires_proximity() {
        let c = tiny(); // window = 5
        let q = parse_query("colorado near \"four corners\"", true);
        // Page 0: colorado at 2, "four corners" at 3 → within 5. Page 2
        // lacks colorado; page 1 lacks the phrase.
        assert_eq!(pages_of(&evaluate(&c, &q)), vec![0]);
        // utah near "four corners": page 2 has utah at 4, phrase at 0 → 4 ≤ 5.
        let q = parse_query("utah near \"four corners\"", true);
        assert_eq!(pages_of(&evaluate(&c, &q)), vec![2]);
    }

    #[test]
    fn near_chain_of_three() {
        let c = tiny();
        let q = parse_query("utah near arizona near \"new mexico\"", true);
        assert_eq!(pages_of(&evaluate(&c, &q)), vec![2]);
    }

    #[test]
    fn and_ignores_distance() {
        let c = tiny();
        let q = parse_query("corners continents", true);
        assert_eq!(pages_of(&evaluate(&c, &q)), vec![3]);
    }

    #[test]
    fn unknown_word_matches_nothing() {
        let c = tiny();
        assert!(evaluate(&c, &parse_query("zanzibar", true)).is_empty());
        assert!(evaluate(&c, &parse_query("\"colorado zanzibar\"", true)).is_empty());
        assert!(evaluate(&c, &parse_query("", true)).is_empty());
    }

    #[test]
    fn occurrence_counts_sum_over_phrases() {
        let c = tiny();
        let q = parse_query("four corners", true); // two 1-word phrases, AND
        let m = evaluate(&c, &q);
        let page3 = m.iter().find(|m| m.page == 3).unwrap();
        // "four" ×2? page 3 = "corners of the world four continents": four ×1, corners ×1.
        assert_eq!(page3.occurrences, 2);
    }

    #[test]
    fn generated_corpus_four_corners_shape() {
        // The marquee Query 3 shape on a real generated corpus: the four
        // corner states dominate, with a dramatic dropoff to the rest.
        let c = Corpus::generate(&CorpusConfig::small());
        let count = |expr: &str| evaluate(&c, &parse_query(expr, true)).len();
        let co = count("colorado near \"four corners\"");
        let nm = count("\"new mexico\" near \"four corners\"");
        let az = count("arizona near \"four corners\"");
        let ut = count("utah near \"four corners\"");
        let ca = count("california near \"four corners\"");
        assert!(co > nm && nm > az && az > ut, "{co} {nm} {az} {ut}");
        assert!(ut > ca, "dropoff missing: ut={ut} ca={ca}");
    }
}
