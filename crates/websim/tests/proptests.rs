//! Property tests for the search substrate: the inverted-index evaluator
//! must agree with a brute-force reference matcher on random corpora and
//! random queries.

use proptest::prelude::*;
use std::collections::HashMap;
use wsq_websim::corpus::{Corpus, Page, Posting};
use wsq_websim::search::{evaluate, Connective, WebQuery};
use wsq_websim::symbols::SymbolTable;

/// Small vocabulary so collisions and co-occurrence are common.
const WORDS: &[&str] = &["alpha", "beta", "gamma", "delta", "echo", "fox"];

fn build_corpus(pages: &[Vec<usize>], window: u32) -> Corpus {
    let mut symbols = SymbolTable::new();
    let word_syms: Vec<u32> = WORDS.iter().map(|w| symbols.intern(w)).collect();
    let mut built = Vec::new();
    let mut index: HashMap<u32, Vec<Posting>> = HashMap::new();
    for (pid, words) in pages.iter().enumerate() {
        let terms: Vec<u32> = words.iter().map(|&w| word_syms[w % WORDS.len()]).collect();
        for (pos, &t) in terms.iter().enumerate() {
            let ps = index.entry(t).or_default();
            match ps.last_mut() {
                Some(p) if p.page == pid as u32 => p.positions.push(pos as u32),
                _ => ps.push(Posting {
                    page: pid as u32,
                    positions: vec![pos as u32],
                }),
            }
        }
        built.push(Page {
            url: format!("www.p{pid}.test/"),
            date: "1999-01-01".into(),
            terms,
            av_auth: 0.5,
            g_auth: 0.5,
        });
    }
    Corpus {
        symbols,
        pages: built,
        index,
        near_window: window,
    }
}

/// Brute-force reference: all start positions of `phrase` in `page`.
fn phrase_starts(page: &[usize], phrase: &[usize]) -> Vec<i64> {
    if phrase.is_empty() || phrase.len() > page.len() {
        return vec![];
    }
    (0..=page.len() - phrase.len())
        .filter(|&s| {
            phrase
                .iter()
                .enumerate()
                .all(|(k, &w)| page[s + k] % WORDS.len() == w % WORDS.len())
        })
        .map(|s| s as i64)
        .collect()
}

/// Brute-force query evaluation.
fn reference_matches(
    pages: &[Vec<usize>],
    phrases: &[Vec<usize>],
    connective: Connective,
    window: u32,
) -> Vec<u32> {
    let mut out = Vec::new();
    'pages: for (pid, page) in pages.iter().enumerate() {
        let occ: Vec<Vec<i64>> = phrases.iter().map(|p| phrase_starts(page, p)).collect();
        if occ.iter().any(|o| o.is_empty()) {
            continue;
        }
        if connective == Connective::Near && phrases.len() > 1 {
            for pair in occ.windows(2) {
                let close = pair[0]
                    .iter()
                    .any(|&a| pair[1].iter().any(|&b| (a - b).abs() <= window as i64));
                if !close {
                    continue 'pages;
                }
            }
        }
        out.push(pid as u32);
    }
    out
}

fn arb_pages() -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(0..WORDS.len(), 0..20), 1..20)
}

fn arb_phrases() -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(0..WORDS.len(), 1..3), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn index_evaluator_matches_brute_force(
        pages in arb_pages(),
        phrases in arb_phrases(),
        near in any::<bool>(),
        window in 1u32..6,
    ) {
        let corpus = build_corpus(&pages, window);
        let connective = if near { Connective::Near } else { Connective::And };
        let query = WebQuery {
            phrases: phrases
                .iter()
                .map(|p| p.iter().map(|&w| WORDS[w].to_string()).collect())
                .collect(),
            connective,
        };
        let mut got: Vec<u32> = evaluate(&corpus, &query).iter().map(|m| m.page).collect();
        got.sort_unstable();
        let expected = reference_matches(&pages, &phrases, connective, window);
        prop_assert_eq!(got, expected);
    }

    /// Occurrence counts agree with brute force under AND semantics.
    #[test]
    fn occurrence_counts_match_brute_force(
        pages in arb_pages(),
        phrase in prop::collection::vec(0..WORDS.len(), 1..3),
    ) {
        let corpus = build_corpus(&pages, 5);
        let query = WebQuery {
            phrases: vec![phrase.iter().map(|&w| WORDS[w].to_string()).collect()],
            connective: Connective::And,
        };
        for m in evaluate(&corpus, &query) {
            let expected = phrase_starts(&pages[m.page as usize], &phrase).len() as u32;
            prop_assert_eq!(m.occurrences, expected);
        }
    }
}
