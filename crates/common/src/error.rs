//! Workspace-wide error type.

use std::fmt;

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, WsqError>;

/// Unified error type for every WSQ/DSQ subsystem.
///
/// A single enum (rather than per-crate error types) keeps the iterator
/// plumbing simple: every `Executor::next` returns `Result<Option<Tuple>>`
/// regardless of whether the failure came from storage, planning, or an
/// external search call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WsqError {
    /// I/O failure in the storage layer (message carries the `std::io::Error`).
    Io(String),
    /// A page/record-level storage invariant was violated.
    Storage(String),
    /// Catalog problems: unknown/duplicate tables or columns.
    Catalog(String),
    /// Lexing or parsing failure, with a position hint.
    Parse(String),
    /// Semantic analysis / planning failure (unbound virtual inputs,
    /// ambiguous columns, type errors).
    Plan(String),
    /// Runtime execution failure.
    Exec(String),
    /// Failure reported by an external search service.
    Search(String),
    /// The request pump was shut down while calls were outstanding.
    PumpShutdown,
    /// Type mismatch when evaluating an expression.
    Type(String),
    /// Anything else.
    Other(String),
}

impl fmt::Display for WsqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WsqError::Io(m) => write!(f, "i/o error: {m}"),
            WsqError::Storage(m) => write!(f, "storage error: {m}"),
            WsqError::Catalog(m) => write!(f, "catalog error: {m}"),
            WsqError::Parse(m) => write!(f, "parse error: {m}"),
            WsqError::Plan(m) => write!(f, "planning error: {m}"),
            WsqError::Exec(m) => write!(f, "execution error: {m}"),
            WsqError::Search(m) => write!(f, "search error: {m}"),
            WsqError::PumpShutdown => write!(f, "request pump shut down"),
            WsqError::Type(m) => write!(f, "type error: {m}"),
            WsqError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for WsqError {}

impl From<std::io::Error> for WsqError {
    fn from(e: std::io::Error) -> Self {
        WsqError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_prefixed() {
        assert_eq!(
            WsqError::Parse("bad token".into()).to_string(),
            "parse error: bad token"
        );
        assert_eq!(
            WsqError::Plan("unbound T1".into()).to_string(),
            "planning error: unbound T1"
        );
        assert_eq!(WsqError::PumpShutdown.to_string(), "request pump shut down");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: WsqError = io.into();
        assert!(matches!(e, WsqError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }
}
