//! The value model: SQL data types, runtime values, and placeholders.

use crate::error::{Result, WsqError};
use std::cmp::Ordering;
use std::fmt;

/// Identifier of a pending external call registered with the request pump.
///
/// `CallId`s are minted by `ReqPump` (one per *deduplicated* outgoing
/// request) and embedded into tuples as [`Placeholder`]s by `AEVScan`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallId(pub u64);

impl fmt::Display for CallId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Which output column of a pending search call a placeholder stands for.
///
/// A `WebCount` call produces a single `Count`; a `WebPages` call produces a
/// `(Url, Rank, Date)` triple per result row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PendingCol {
    /// The `Count` column of `WebCount`.
    Count,
    /// The `URL` column of `WebPages`.
    Url,
    /// The `Rank` column of `WebPages`.
    Rank,
    /// The `Date` column of `WebPages`.
    Date,
}

/// A placeholder marking an attribute value that a pending external call
/// will supply (paper Section 4.1).
///
/// The placeholder plays two roles: it flags the containing tuple as
/// incomplete, and it identifies the pending `ReqPump` call (and which of
/// its output columns) that will fill in the true value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Placeholder {
    /// The pending call that will supply the value.
    pub call: CallId,
    /// Which output column of that call this placeholder stands for.
    pub col: PendingCol,
}

impl fmt::Display for Placeholder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}:{:?}⟩", self.call, self.col)
    }
}

/// SQL data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// Variable-length UTF-8 string. The declared length is advisory
    /// (Redbase-style `VARCHAR(n)`); values are not truncated.
    Varchar,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Float => write!(f, "FLOAT"),
            DataType::Varchar => write!(f, "VARCHAR"),
        }
    }
}

/// A runtime value flowing through the query engine.
///
/// [`Value::Pending`] never reaches storage or query results; it exists
/// only inside asynchronous query plans between an `AEVScan` and the
/// `ReqSync` that patches it.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Placeholder for a value a pending external call will supply.
    Pending(Placeholder),
}

impl Value {
    /// Runtime type of the value, if it has one (`Null` and `Pending` do not).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Varchar),
            Value::Null | Value::Pending(_) => None,
        }
    }

    /// True iff the value is a placeholder for a pending call.
    pub fn is_pending(&self) -> bool {
        matches!(self, Value::Pending(_))
    }

    /// True iff the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an integer, coercing floats with truncation.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(f) => Ok(*f as i64),
            other => Err(WsqError::Type(format!("expected INT, got {other}"))),
        }
    }

    /// Extract a float, coercing integers.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            other => Err(WsqError::Type(format!("expected FLOAT, got {other}"))),
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(WsqError::Type(format!("expected VARCHAR, got {other}"))),
        }
    }

    /// Three-valued-logic-free comparison used by predicates, sorting and
    /// grouping.
    ///
    /// Rules (documented engine semantics, tested below):
    /// * `Null` sorts before everything and equals only `Null`.
    /// * Numeric values compare numerically across `Int`/`Float`.
    /// * Strings compare lexicographically (byte order).
    /// * Cross-type (string vs number) comparisons order numbers first.
    /// * Comparing a `Pending` value is a logic error in the engine — the
    ///   percolation clash rules exist precisely to prevent it — so this
    ///   returns an error rather than panicking.
    pub fn compare(&self, other: &Value) -> Result<Ordering> {
        use Value::*;
        let rank = |v: &Value| match v {
            Null => 0u8,
            Int(_) | Float(_) => 1,
            Str(_) => 2,
            Pending(_) => 3,
        };
        match (self, other) {
            (Pending(p), _) | (_, Pending(p)) => Err(WsqError::Exec(format!(
                "comparison against unresolved placeholder {p} (clash-rule violation)"
            ))),
            (Null, Null) => Ok(Ordering::Equal),
            (Int(a), Int(b)) => Ok(a.cmp(b)),
            (Float(a), Float(b)) => Ok(a.partial_cmp(b).unwrap_or(Ordering::Equal)),
            (Int(a), Float(b)) => Ok((*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal)),
            (Float(a), Int(b)) => Ok(a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal)),
            (Str(a), Str(b)) => Ok(a.cmp(b)),
            _ => Ok(rank(self).cmp(&rank(other))),
        }
    }

    /// Equality under [`Value::compare`] semantics.
    pub fn sql_eq(&self, other: &Value) -> Result<bool> {
        Ok(self.compare(other)? == Ordering::Equal)
    }

    /// A stable key usable for hashing in group-by / distinct operators.
    ///
    /// Floats are keyed by their bit pattern; `Int` and `Float` holding the
    /// same mathematical value hash differently, which is acceptable because
    /// grouping keys come from columns of a single declared type.
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Int(i) => GroupKey::Int(*i),
            Value::Float(f) => GroupKey::Float(f.to_bits()),
            Value::Str(s) => GroupKey::Str(s.clone()),
            Value::Pending(p) => GroupKey::Pending(*p),
        }
    }
}

/// Hashable projection of a [`Value`] used as a grouping / distinct key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroupKey {
    /// NULL key.
    Null,
    /// Integer key.
    Int(i64),
    /// Float key (bit pattern).
    Float(u64),
    /// String key.
    Str(String),
    /// Placeholder key (only meaningful inside async plans).
    Pending(Placeholder),
}

impl fmt::Display for Value {
    /// Writes values the way query results print them.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{:.1}", x)
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Pending(p) => write!(f, "{p}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Pending(a), Value::Pending(b)) => a == b,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_extraction_and_coercion() {
        assert_eq!(Value::Int(7).as_int().unwrap(), 7);
        assert_eq!(Value::Float(7.9).as_int().unwrap(), 7);
        assert_eq!(Value::Int(7).as_float().unwrap(), 7.0);
        assert_eq!(Value::Str("x".into()).as_str().unwrap(), "x");
        assert!(Value::Str("x".into()).as_int().is_err());
        assert!(Value::Null.as_float().is_err());
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.0)).unwrap(),
            Ordering::Equal
        );
        assert_eq!(
            Value::Float(1.5).compare(&Value::Int(2)).unwrap(),
            Ordering::Less
        );
        assert!(Value::Int(2).sql_eq(&Value::Float(2.0)).unwrap());
    }

    #[test]
    fn null_sorts_first_and_strings_after_numbers() {
        assert_eq!(
            Value::Null.compare(&Value::Int(-100)).unwrap(),
            Ordering::Less
        );
        assert_eq!(
            Value::Int(999).compare(&Value::Str("a".into())).unwrap(),
            Ordering::Less
        );
        assert_eq!(Value::Null.compare(&Value::Null).unwrap(), Ordering::Equal);
    }

    #[test]
    fn comparing_pending_is_an_error() {
        let p = Value::Pending(Placeholder {
            call: CallId(3),
            col: PendingCol::Count,
        });
        let err = Value::Int(1).compare(&p).unwrap_err();
        assert!(matches!(err, WsqError::Exec(_)));
        assert!(err.to_string().contains("C3"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "NULL");
        let p = Value::Pending(Placeholder {
            call: CallId(9),
            col: PendingCol::Url,
        });
        assert_eq!(p.to_string(), "⟨C9:Url⟩");
    }

    #[test]
    fn group_keys_distinguish_types() {
        assert_ne!(Value::Int(1).group_key(), Value::Float(1.0).group_key());
        assert_eq!(
            Value::Str("a".into()).group_key(),
            Value::from("a").group_key()
        );
        assert_eq!(Value::Null.group_key(), GroupKey::Null);
    }

    #[test]
    fn nan_equals_nan_for_dedup_purposes() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
    }
}
