//! Tuples: ordered value vectors flowing through the iterator tree.

use crate::value::{CallId, Placeholder, Value};
use std::fmt;

/// A tuple of runtime values.
///
/// Tuples are positional; the corresponding [`crate::Schema`] travels with
/// the operator, not the tuple, keeping the per-tuple footprint small (a
/// point the performance guide emphasizes for row-at-a-time engines).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// The empty tuple (used as the seed for cross products of zero inputs).
    pub fn empty() -> Self {
        Tuple { values: vec![] }
    }

    /// Values, in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable access (used by `ReqSync` when patching placeholders).
    pub fn values_mut(&mut self) -> &mut [Value] {
        &mut self.values
    }

    /// Consume into the underlying vector.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff the tuple has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at `idx`.
    pub fn get(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Overwrite the value at `idx`.
    pub fn set(&mut self, idx: usize, v: Value) {
        self.values[idx] = v;
    }

    /// Concatenate two tuples (joins / cross products).
    pub fn join(&self, right: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + right.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&right.values);
        Tuple { values }
    }

    /// True iff any value is a pending placeholder.
    pub fn is_incomplete(&self) -> bool {
        self.values.iter().any(Value::is_pending)
    }

    /// All placeholders present in this tuple, with their offsets.
    pub fn placeholders(&self) -> Vec<(usize, Placeholder)> {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| match v {
                Value::Pending(p) => Some((i, *p)),
                _ => None,
            })
            .collect()
    }

    /// The distinct set of pending calls this tuple is waiting on.
    pub fn pending_calls(&self) -> Vec<CallId> {
        let mut calls: Vec<CallId> = self
            .values
            .iter()
            .filter_map(|v| match v {
                Value::Pending(p) => Some(p.call),
                _ => None,
            })
            .collect();
        calls.sort_unstable();
        calls.dedup();
        calls
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple { values }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::PendingCol;

    fn ph(id: u64, col: PendingCol) -> Value {
        Value::Pending(Placeholder {
            call: CallId(id),
            col,
        })
    }

    #[test]
    fn join_concatenates() {
        let a = Tuple::new(vec![Value::Int(1)]);
        let b = Tuple::new(vec![Value::from("x"), Value::Null]);
        let j = a.join(&b);
        assert_eq!(j.len(), 3);
        assert_eq!(j.get(1).as_str().unwrap(), "x");
    }

    #[test]
    fn placeholder_introspection() {
        let t = Tuple::new(vec![
            Value::Int(1),
            ph(7, PendingCol::Url),
            ph(7, PendingCol::Rank),
            ph(3, PendingCol::Count),
        ]);
        assert!(t.is_incomplete());
        let phs = t.placeholders();
        assert_eq!(phs.len(), 3);
        assert_eq!(phs[0].0, 1);
        // Distinct pending calls, sorted.
        assert_eq!(t.pending_calls(), vec![CallId(3), CallId(7)]);
    }

    #[test]
    fn complete_tuple_has_no_pending() {
        let t = Tuple::new(vec![Value::Int(1), Value::Null]);
        assert!(!t.is_incomplete());
        assert!(t.pending_calls().is_empty());
    }

    #[test]
    fn display() {
        let t = Tuple::new(vec![Value::from("Colorado"), Value::Int(1745)]);
        assert_eq!(t.to_string(), "<Colorado, 1745>");
    }

    #[test]
    fn patching_via_set() {
        let mut t = Tuple::new(vec![ph(1, PendingCol::Count)]);
        t.set(0, Value::Int(42));
        assert!(!t.is_incomplete());
        assert_eq!(t.get(0).as_int().unwrap(), 42);
    }
}
