//! Shared foundation types for the WSQ/DSQ workspace.
//!
//! This crate defines the value model ([`Value`], [`DataType`]), the tuple
//! and schema representations used throughout the query engine, the
//! *placeholder* machinery that asynchronous iteration relies on
//! ([`Placeholder`], [`CallId`], [`PendingCol`]), and the workspace-wide
//! error type [`WsqError`].
//!
//! Placeholders are the heart of the paper's Section 4.1: during
//! asynchronous iteration, an `AEVScan` returns tuples whose
//! externally-supplied attribute values are [`Value::Pending`] markers that
//! (a) flag the tuple as incomplete and (b) name the pending `ReqPump` call
//! that will eventually supply the real value.

pub mod error;
pub mod schema;
pub mod tuple;
pub mod value;

pub use error::{Result, WsqError};
pub use schema::{Column, Schema};
pub use tuple::Tuple;
pub use value::{CallId, DataType, GroupKey, PendingCol, Placeholder, Value};
