//! Schemas: ordered lists of (possibly qualified) typed columns.

use crate::error::{Result, WsqError};
use crate::value::DataType;
use std::fmt;

/// A single column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Table alias / relation name qualifying the column, if any.
    /// Scans produce qualified columns; projections may drop the qualifier.
    pub qualifier: Option<String>,
    /// Column name. Matching is case-insensitive.
    pub name: String,
    /// Declared data type.
    pub dtype: DataType,
}

impl Column {
    /// An unqualified column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            qualifier: None,
            name: name.into(),
            dtype,
        }
    }

    /// A qualified column (`qualifier.name`).
    pub fn qualified(
        qualifier: impl Into<String>,
        name: impl Into<String>,
        dtype: DataType,
    ) -> Self {
        Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
            dtype,
        }
    }

    /// Does this column match a reference `[qualifier.]name`?
    ///
    /// A reference without qualifier matches any column with that name; a
    /// qualified reference also requires the qualifier to match. All
    /// matching is ASCII-case-insensitive (SQL identifier semantics).
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .is_some_and(|mine| mine.eq_ignore_ascii_case(q)),
        }
    }

    /// Render as `qualifier.name` or bare `name`.
    pub fn display_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.display_name(), self.dtype)
    }
}

/// An ordered list of columns describing tuples produced by an operator or
/// stored in a table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// The empty schema.
    pub fn empty() -> Self {
        Schema { columns: vec![] }
    }

    /// Columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True iff the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column at `idx`.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Resolve a column reference to its offset.
    ///
    /// Errors on no match ("unknown column") and on multiple matches
    /// ("ambiguous column"), as SQL requires.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let mut found: Option<usize> = None;
        for (i, c) in self.columns.iter().enumerate() {
            if c.matches(qualifier, name) {
                if found.is_some() {
                    return Err(WsqError::Plan(format!(
                        "ambiguous column reference '{}'",
                        refname(qualifier, name)
                    )));
                }
                found = Some(i);
            }
        }
        found
            .ok_or_else(|| WsqError::Plan(format!("unknown column '{}'", refname(qualifier, name))))
    }

    /// Offset of a column reference, or `None` (no ambiguity check).
    pub fn try_resolve(&self, qualifier: Option<&str>, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.matches(qualifier, name))
    }

    /// Concatenate two schemas (used by joins / cross products).
    pub fn join(&self, right: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(right.columns.iter().cloned());
        Schema { columns }
    }

    /// Re-qualify all columns with a new table alias (used when a stored
    /// table is scanned under an alias).
    pub fn with_qualifier(&self, qualifier: &str) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column {
                    qualifier: Some(qualifier.to_string()),
                    name: c.name.clone(),
                    dtype: c.dtype,
                })
                .collect(),
        }
    }

    /// Iterate over `(offset, column)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Column)> {
        self.columns.iter().enumerate()
    }
}

fn refname(qualifier: Option<&str>, name: &str) -> String {
    match qualifier {
        Some(q) => format!("{q}.{name}"),
        None => name.to_string(),
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::qualified("States", "Name", DataType::Varchar),
            Column::qualified("States", "Population", DataType::Int),
            Column::qualified("WebCount", "Count", DataType::Int),
        ])
    }

    #[test]
    fn resolve_unqualified_and_qualified() {
        let s = sample();
        assert_eq!(s.resolve(None, "Population").unwrap(), 1);
        assert_eq!(s.resolve(Some("WebCount"), "Count").unwrap(), 2);
        assert_eq!(s.resolve(Some("states"), "NAME").unwrap(), 0); // case-insensitive
    }

    #[test]
    fn resolve_errors() {
        let s = sample();
        assert!(matches!(
            s.resolve(None, "Nope").unwrap_err(),
            WsqError::Plan(_)
        ));
        assert!(matches!(
            s.resolve(Some("Other"), "Name").unwrap_err(),
            WsqError::Plan(_)
        ));
    }

    #[test]
    fn ambiguity_detected() {
        let s = Schema::new(vec![
            Column::qualified("A", "x", DataType::Int),
            Column::qualified("B", "x", DataType::Int),
        ]);
        let err = s.resolve(None, "x").unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
        // Qualified references disambiguate.
        assert_eq!(s.resolve(Some("B"), "x").unwrap(), 1);
    }

    #[test]
    fn join_concatenates_in_order() {
        let left = Schema::new(vec![Column::new("a", DataType::Int)]);
        let right = Schema::new(vec![Column::new("b", DataType::Float)]);
        let j = left.join(&right);
        assert_eq!(j.len(), 2);
        assert_eq!(j.column(0).name, "a");
        assert_eq!(j.column(1).name, "b");
    }

    #[test]
    fn requalification() {
        let s = sample().with_qualifier("S");
        assert_eq!(s.resolve(Some("S"), "Name").unwrap(), 0);
        assert!(s.resolve(Some("States"), "Name").is_err());
    }

    #[test]
    fn display_roundtrip_style() {
        let s = Schema::new(vec![Column::qualified("T", "c", DataType::Int)]);
        assert_eq!(s.to_string(), "(T.c:INT)");
        assert_eq!(Schema::empty().to_string(), "()");
    }
}
