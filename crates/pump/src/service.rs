//! The external search-service abstraction.
//!
//! The query engine never talks to a search engine directly; it builds
//! [`SearchRequest`]s and hands them either to [`blocking_execute`] (the
//! synchronous `EVScan` path — the query processor stalls for the request's
//! full latency) or to [`crate::ReqPump`] (the asynchronous `AEVScan`
//! path).

use std::fmt;
use std::sync::Arc;
use std::time::Duration;
use wsq_common::Result;

/// What a request asks the engine for.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// The total number of matching pages (`WebCount`). Search engines
    /// return this immediately without delivering URLs (paper §3).
    Count,
    /// The top URLs for the expression (`WebPages`), limited to ranks
    /// `1..=max_rank` — the rank bound is effectively an engine input.
    Pages {
        /// Highest rank (inclusive) to retrieve.
        max_rank: u32,
    },
}

/// A fully-instantiated request to one search engine.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SearchRequest {
    /// Destination engine name (e.g. `"AV"`, `"Google"`). Also the key for
    /// per-destination concurrency limits.
    pub engine: String,
    /// The instantiated search expression (after `%i` substitution).
    pub expr: String,
    /// Count or ranked-pages request.
    pub kind: RequestKind,
}

impl fmt::Display for SearchRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            RequestKind::Count => write!(f, "{}:count({:?})", self.engine, self.expr),
            RequestKind::Pages { max_rank } => {
                write!(
                    f,
                    "{}:pages({:?}, rank<={max_rank})",
                    self.engine, self.expr
                )
            }
        }
    }
}

/// One ranked search hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageHit {
    /// Result URL.
    pub url: String,
    /// 1-based rank assigned by the engine.
    pub rank: u32,
    /// Page date as an ISO `YYYY-MM-DD` string.
    pub date: String,
}

/// A completed search result.
///
/// The pages payload is reference-counted: results flow from the service
/// through the pump's result store, the cache, and into every patched
/// tuple, and each hop used to deep-copy the hit vector. `Arc<[PageHit]>`
/// makes every clone on that path a pointer bump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchResult {
    /// Total page count for a [`RequestKind::Count`] request.
    Count(u64),
    /// Ranked hits for a [`RequestKind::Pages`] request, rank ascending.
    Pages(Arc<[PageHit]>),
}

impl SearchResult {
    /// Build a pages result from a hit vector.
    pub fn pages_from(hits: Vec<PageHit>) -> Self {
        SearchResult::Pages(hits.into())
    }

    /// The count, if this is a count result.
    pub fn count(&self) -> Option<u64> {
        match self {
            SearchResult::Count(c) => Some(*c),
            SearchResult::Pages(_) => None,
        }
    }

    /// The hits, if this is a pages result.
    pub fn pages(&self) -> Option<&[PageHit]> {
        match self {
            SearchResult::Pages(p) => Some(p),
            SearchResult::Count(_) => None,
        }
    }
}

/// A service's reply: the result plus how long the "network" takes.
///
/// The latency contract is uniform across dispatchers: `latency` is the
/// *additional* simulated wait before the result becomes visible. The
/// event-loop dispatcher delivers the reply `latency` after launch without
/// blocking a thread; the thread-pool dispatcher (and the synchronous
/// [`blocking_execute`]) sleep for it. A service wrapping a genuinely
/// blocking operation simply does its blocking work inside
/// [`SearchService::execute`] and returns `latency == 0`.
#[derive(Debug, Clone)]
pub struct ServiceReply {
    /// Result or failure.
    pub result: Result<SearchResult>,
    /// Simulated network latency still to elapse.
    pub latency: Duration,
}

impl ServiceReply {
    /// A successful instant reply (zero latency).
    pub fn instant(result: SearchResult) -> Self {
        ServiceReply {
            result: Ok(result),
            latency: Duration::ZERO,
        }
    }
}

/// An external search engine (or any other high-latency source).
pub trait SearchService: Send + Sync {
    /// Compute the reply for `req`. Must be cheap for event-loop dispatch;
    /// may block for thread-pool dispatch.
    fn execute(&self, req: &SearchRequest) -> ServiceReply;

    /// Compute replies for a whole submission window in one handoff,
    /// returning exactly one reply per request, in order.
    ///
    /// The default falls back to per-request [`SearchService::execute`],
    /// so decorators (cache/retry/flaky) compose unchanged: each request
    /// in the window still traverses the full decorator stack, and
    /// single-flight / retry / injection semantics are identical to N
    /// separate calls. Backends that can amortize a round trip (or a
    /// lock) across the window override this.
    fn execute_batch(&self, reqs: &[SearchRequest]) -> Vec<ServiceReply> {
        reqs.iter().map(|r| self.execute(r)).collect()
    }
}

/// Execute a request synchronously, stalling the caller for the full
/// simulated latency — exactly what a conventional sequential query
/// processor does on every `EVScan::get_next` (paper §4 intro).
pub fn blocking_execute(service: &dyn SearchService, req: &SearchRequest) -> Result<SearchResult> {
    let reply = service.execute(req);
    if !reply.latency.is_zero() {
        std::thread::sleep(reply.latency);
    }
    reply.result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    struct Fixed;
    impl SearchService for Fixed {
        fn execute(&self, req: &SearchRequest) -> ServiceReply {
            ServiceReply {
                result: Ok(SearchResult::Count(req.expr.len() as u64)),
                latency: Duration::from_millis(20),
            }
        }
    }

    #[test]
    fn blocking_execute_sleeps_the_latency() {
        let req = SearchRequest {
            engine: "AV".into(),
            expr: "Colorado".into(),
            kind: RequestKind::Count,
        };
        let t0 = Instant::now();
        let res = blocking_execute(&Fixed, &req).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(20));
        assert_eq!(res.count(), Some(8));
    }

    #[test]
    fn request_display() {
        let r = SearchRequest {
            engine: "Google".into(),
            expr: "four corners".into(),
            kind: RequestKind::Pages { max_rank: 5 },
        };
        assert_eq!(r.to_string(), "Google:pages(\"four corners\", rank<=5)");
    }

    #[test]
    fn result_accessors() {
        assert_eq!(SearchResult::Count(3).count(), Some(3));
        assert_eq!(SearchResult::Count(3).pages(), None);
        let p = SearchResult::pages_from(vec![]);
        assert_eq!(p.count(), None);
        assert_eq!(p.pages().unwrap().len(), 0);
    }
}
