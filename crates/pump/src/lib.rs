#![deny(missing_docs)]
//! **ReqPump** — the global module for managing asynchronous external calls
//! (paper Section 4.1).
//!
//! During asynchronous iteration, `AEVScan` operators *register* external
//! search calls here and immediately return placeholder tuples; `ReqSync`
//! operators *wait* for completions and patch the placeholders. ReqPump
//! plays the producer in the producer/consumer protocol: it launches
//! requests concurrently (respecting a global cap and per-destination
//! caps, queueing the excess), stores each response in `ReqPumpHash` keyed
//! by [`CallId`], and signals consumers as calls complete.
//!
//! Two dispatchers are provided:
//!
//! * [`DispatchMode::EventLoop`] — a single background thread drives *all*
//!   in-flight calls, the design the paper argues for (citing the Flash web
//!   server): services compute their response eagerly and declare a
//!   simulated network latency; the loop holds launched calls in a deadline
//!   heap and delivers each when its latency elapses. Hundreds of
//!   concurrent "network" calls cost one thread.
//! * [`DispatchMode::ThreadPool`] — a fixed pool of worker threads for
//!   services that genuinely block (the Web-crawler example uses this).
//!
//! ReqPump also *coalesces* identical in-flight requests (one network call,
//! many placeholders) — the countermeasure to the paper's Example 2, where
//! a cross-product would otherwise send `|R|` identical calls per tuple.

pub mod pump;
pub mod service;

pub use pump::{DispatchMode, PumpConfig, PumpStats, ReqPump};
pub use service::{
    blocking_execute, PageHit, RequestKind, SearchRequest, SearchResult, SearchService,
    ServiceReply,
};

pub use wsq_common::CallId;
